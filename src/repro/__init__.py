"""repro — reproduction of "Exploration of Approaches for In-Database ML".

Kläbe, Hagedorn, Sattler; EDBT 2023.  The package provides a columnar
vectorized SQL engine, a neural-network substrate, and five in-database
inference approaches built on top of them: Python UDFs, ML-runtime
C-API integration, ML-To-SQL, the native ModelJoin operator (CPU and
simulated GPU), plus the external-Python baseline.

Quickstart::

    import repro
    from repro.nn import Dense, Sequential
    from repro.core.registry import publish_model

    db = repro.connect()
    db.execute("CREATE TABLE iris (id INTEGER, f0 FLOAT, f1 FLOAT, "
               "f2 FLOAT, f3 FLOAT)")
    ...
    model = Sequential([Dense(8, "relu"), Dense(1, "sigmoid")],
                       input_width=4)
    publish_model(db, "clf", model)
    db.execute("SELECT id, prediction_0 FROM iris MODEL JOIN clf")
"""

from repro.core.attach import attach, connect
from repro.db import faults as _faults
from repro.db.engine import Database, Result

__version__ = "1.0.0"

__all__ = ["attach", "connect", "Database", "Result", "__version__"]

# Opt-in chaos hook: REPRO_FAULTS="seed=7,worker.task=prob:0.1" installs
# a fault injector at import time (no-op when the variable is unset).
_faults.install_from_env()
