"""Synthetic Iris-like dataset (paper Section 6.1).

"The dense layer experiment is based on the Iris dataset that is
replicated to mimic varying fact table sizes.  The dataset consists of
four feature columns that are used to predict a class attribute."

The original UCI file is not bundled; a deterministic generator
produces an equivalent dataset — 150 base rows, four features drawn
from three Gaussian class clusters whose means/spreads follow the real
Iris summary statistics.  The paper states inference runtime does not
depend on the actual values, only on arity and cardinality, so the
substitution is behaviour-preserving; accuracy-oriented examples train
and evaluate on this synthetic data end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.engine import Database
from repro.db.schema import Schema
from repro.db.types import SqlType

#: per-class feature means (sepal length/width, petal length/width)
_CLASS_MEANS = np.array(
    [
        [5.01, 3.43, 1.46, 0.25],  # setosa
        [5.94, 2.77, 4.26, 1.33],  # versicolor
        [6.59, 2.97, 5.55, 2.03],  # virginica
    ],
    dtype=np.float64,
)

_CLASS_STDS = np.array(
    [
        [0.35, 0.38, 0.17, 0.11],
        [0.52, 0.31, 0.47, 0.20],
        [0.64, 0.32, 0.55, 0.27],
    ],
    dtype=np.float64,
)

FEATURE_COLUMNS = ("sepal_length", "sepal_width", "petal_length", "petal_width")


@dataclass
class IrisDataset:
    """Features, integer class labels, and the replication helper."""

    features: np.ndarray  # (n, 4) float32
    labels: np.ndarray  # (n,) int64

    @classmethod
    def generate(
        cls, rows: int = 150, seed: int = 42
    ) -> "IrisDataset":
        """A fresh dataset of *rows* samples, classes balanced."""
        rng = np.random.default_rng(seed)
        labels = np.arange(rows, dtype=np.int64) % 3
        noise = rng.normal(size=(rows, 4))
        features = (
            _CLASS_MEANS[labels] + noise * _CLASS_STDS[labels]
        ).astype(np.float32)
        return cls(features=features, labels=labels)

    def replicated(self, target_rows: int) -> "IrisDataset":
        """Replicate the base rows to *target_rows* (paper Section 6.1)."""
        repeats = -(-target_rows // len(self.labels))  # ceil division
        features = np.tile(self.features, (repeats, 1))[:target_rows]
        labels = np.tile(self.labels, repeats)[:target_rows]
        return IrisDataset(features=features, labels=labels)

    def __len__(self) -> int:
        return len(self.labels)


def iris_schema() -> Schema:
    return Schema.of(
        ("id", SqlType.INTEGER),
        *((name, SqlType.FLOAT) for name in FEATURE_COLUMNS),
        ("species", SqlType.INTEGER),
    )


def load_iris_table(
    database: Database,
    rows: int,
    table_name: str = "iris",
    num_partitions: int = 1,
    seed: int = 42,
    replace: bool = False,
) -> IrisDataset:
    """Create and fill the replicated Iris fact table.

    The table is partitioned on the unique ``id`` and sorted by it —
    the setup Section 4.4 uses for parallel, pipelined ModelJoins.
    """
    dataset = IrisDataset.generate(seed=seed).replicated(rows)
    if replace and database.catalog.has_table(table_name):
        database.execute(f"DROP TABLE {table_name}")
    table = database.create_table(
        table_name,
        iris_schema(),
        num_partitions=num_partitions,
        partition_key="id",
        sort_key=("id",),
    )
    table.append_columns(
        id=np.arange(rows, dtype=np.int64),
        sepal_length=dataset.features[:, 0],
        sepal_width=dataset.features[:, 1],
        petal_length=dataset.features[:, 2],
        petal_width=dataset.features[:, 3],
        species=dataset.labels,
    )
    return dataset
