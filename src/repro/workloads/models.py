"""Model factory for the paper's parameter grid (Section 6.1).

"We use dense layer networks with all combinations of model_widths in
{32, 128, 512} and model_depths in {2, 4, 8}, i.e. a model of width 128
and depth 4 has 4 dense layers of width 128 and an output layer of
size 1. ...  For the LSTM layer experiment ... a single LSTM layer ...
followed by a single neuron output layer."

(The paper's sentence contains a typo — "width 128 and depth 4 has 4
dense layers of width 32"; we follow the obviously intended reading,
which also matches its parameter-count arithmetic: width 512 / depth 8
has ``4*512 + 7*512^2 + 512`` parameters, i.e. 8 hidden dense layers of
the stated width plus the single-output layer.)
"""

from __future__ import annotations

from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential

#: the paper's dense grid: (width, depth) combinations of Figure 8
DENSE_GRID = tuple(
    (width, depth) for width in (32, 128, 512) for depth in (2, 4, 8)
)

#: the paper's LSTM widths of Figure 9
LSTM_WIDTHS = (32, 128, 512)

#: the representative subset reported in Table 3
TABLE3_MODELS = (
    ("dense", 32, 4),
    ("dense", 128, 4),
    ("dense", 512, 4),
    ("lstm", 128, 1),
)


def make_dense_model(
    width: int,
    depth: int,
    input_width: int = 4,
    hidden_activation: str = "relu",
    output_activation: str = "sigmoid",
    seed: int = 0,
) -> Sequential:
    """A Figure-8 model: *depth* dense layers of *width*, 1 output."""
    if width < 1 or depth < 1:
        raise ValueError("width and depth must be positive")
    layers = [Dense(width, hidden_activation) for _ in range(depth)]
    layers.append(Dense(1, output_activation))
    return Sequential(layers, input_width=input_width, seed=seed)


def make_lstm_model(
    width: int,
    time_steps: int = 3,
    output_activation: str = "linear",
    seed: int = 0,
) -> Sequential:
    """A Figure-9 model: one LSTM layer plus a single-neuron output."""
    if width < 1 or time_steps < 1:
        raise ValueError("width and time_steps must be positive")
    return Sequential(
        [Lstm(width), Dense(1, output_activation)],
        input_width=time_steps,
        seed=seed,
    )


def parameter_count_formula(width: int, depth: int, inputs: int = 4) -> int:
    """The paper's closed form (Section 6.2.1) for dense models.

    For width 512, depth 8: ``4*512 + 7*512^2 + 512 ~= 1.8e6`` — note
    the formula counts weights only (biases excluded), as the paper's
    approximation does.
    """
    return inputs * width + (depth - 1) * width * width + width
