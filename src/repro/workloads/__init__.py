"""Workload generators for the paper's evaluation (Section 6.1)."""

from repro.workloads.iris import IrisDataset, load_iris_table
from repro.workloads.timeseries import (
    SinusSeries,
    load_windowed_series_table,
)
from repro.workloads.models import (
    DENSE_GRID,
    LSTM_WIDTHS,
    make_dense_model,
    make_lstm_model,
)

__all__ = [
    "IrisDataset",
    "load_iris_table",
    "SinusSeries",
    "load_windowed_series_table",
    "DENSE_GRID",
    "LSTM_WIDTHS",
    "make_dense_model",
    "make_lstm_model",
]
