"""Sinus time-series workload (paper Section 6.1).

"For the LSTM layer experiment we generated a time series based on a
sinus function and used 3 time steps for each forecast. ...  a
generated sinus function leads to the same runtime results as
real-world examples, but is easier understandable and reproducible."

Two loaders are provided: the raw ``(id, value)`` series plus the
Section 4 windowing self-join executed in SQL, and a pre-windowed fact
table (what the benchmarks use, since every approach consumes the same
windowed input).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoding import window_self_join_query
from repro.db.engine import Database
from repro.db.schema import Schema
from repro.db.types import SqlType


@dataclass
class SinusSeries:
    """A noisy sinus series and its windowed view."""

    values: np.ndarray  # (n,) float32
    time_steps: int

    @classmethod
    def generate(
        cls,
        rows: int,
        time_steps: int = 3,
        period: float = 50.0,
        noise: float = 0.05,
        seed: int = 7,
    ) -> "SinusSeries":
        rng = np.random.default_rng(seed)
        positions = np.arange(rows, dtype=np.float64)
        values = np.sin(2.0 * np.pi * positions / period)
        values = values + rng.normal(scale=noise, size=rows)
        return cls(values=values.astype(np.float32), time_steps=time_steps)

    def windows(self) -> tuple[np.ndarray, np.ndarray]:
        """(window ids, (m, time_steps) windows), oldest value first."""
        steps = self.time_steps
        count = len(self.values) - steps + 1
        if count <= 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, steps), dtype=np.float32),
            )
        stacked = np.column_stack(
            [self.values[offset : offset + count] for offset in range(steps)]
        )
        ids = np.arange(steps - 1, steps - 1 + count, dtype=np.int64)
        return ids, stacked

    def targets(self) -> np.ndarray:
        """Next-value forecast target per window (last windows dropped)."""
        ids, _ = self.windows()
        valid = ids + 1 < len(self.values)
        return self.values[ids[valid] + 1]


def load_series_table(
    database: Database,
    rows: int,
    table_name: str = "sinus",
    time_steps: int = 3,
    seed: int = 7,
    replace: bool = False,
) -> SinusSeries:
    """The raw (id, value) series table."""
    series = SinusSeries.generate(rows, time_steps=time_steps, seed=seed)
    if replace and database.catalog.has_table(table_name):
        database.execute(f"DROP TABLE {table_name}")
    table = database.create_table(
        table_name,
        Schema.of(("id", SqlType.INTEGER), ("value", SqlType.FLOAT)),
        sort_key=("id",),
    )
    table.append_columns(
        id=np.arange(rows, dtype=np.int64), value=series.values
    )
    return series


def load_windowed_series_table(
    database: Database,
    windows: int,
    table_name: str = "sinus_windows",
    time_steps: int = 3,
    num_partitions: int = 1,
    seed: int = 7,
    replace: bool = False,
) -> SinusSeries:
    """A pre-windowed fact table with *windows* rows: (id, x1..xn).

    ``x1`` is the oldest time step of each window, matching the LSTM
    input convention of the generated SQL and the native operator.
    """
    series = SinusSeries.generate(
        windows + time_steps - 1, time_steps=time_steps, seed=seed
    )
    ids, stacked = series.windows()
    if replace and database.catalog.has_table(table_name):
        database.execute(f"DROP TABLE {table_name}")
    columns = [("id", SqlType.INTEGER)] + [
        (f"x{step}", SqlType.FLOAT) for step in range(1, time_steps + 1)
    ]
    table = database.create_table(
        table_name,
        Schema.of(*columns),
        num_partitions=num_partitions,
        partition_key="id",
        sort_key=("id",),
    )
    data = {"id": ids}
    for step in range(time_steps):
        data[f"x{step + 1}"] = stacked[:, step]
    table.append_columns(**data)
    return series


def windowed_view_query(
    series_table: str, time_steps: int
) -> str:
    """The Section 4 windowing self-join over the raw series table."""
    return window_self_join_query(series_table, "id", "value", time_steps)
