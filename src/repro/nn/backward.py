"""Device-kernel backward pass for dense stacks (in-database training).

:func:`repro.nn.training.fit` trains with plain NumPy; this module
expresses the same minibatch-SGD math through the
:mod:`repro.device` kernel set (``gemm`` / ``multiply`` /
``activation``) over reusable arena views, so training shares the
accounting, tracing and cancellation machinery of the inference
kernels.  The engine's ``CREATE MODEL ... AS TRAIN`` operator
(:mod:`repro.db.train`) drives it with the real inference
``BufferArena``; :class:`WorkspaceArena` is a standalone stand-in with
the same ``take`` contract.

Dense-only, like :func:`~repro.nn.training.fit`: LSTM backpropagation
through time is out of scope (the paper trains nothing at all).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Dense
from repro.nn.model import Sequential


class WorkspaceArena:
    """Minimal named-buffer arena.

    Same ``take(tag, rows, cols)`` contract as the inference
    ``BufferArena``: one float32 buffer per tag, reused across calls,
    grown only when a request exceeds its capacity.
    """

    def __init__(self, capacity_rows: int = 1):
        self.capacity_rows = max(capacity_rows, 1)
        self._buffers: dict[str, np.ndarray] = {}

    def take(self, tag: str, rows: int, cols: int) -> np.ndarray:
        buffer = self._buffers.get(tag)
        if (
            buffer is None
            or buffer.shape[0] < rows
            or buffer.shape[1] != cols
        ):
            capacity = max(rows, self.capacity_rows)
            buffer = np.empty((capacity, cols), dtype=np.float32)
            self._buffers[tag] = buffer
        return buffer[:rows]


def mse_loss_and_grad(
    predicted: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient wrt the predictions."""
    error = predicted - targets
    loss = float(np.mean(error * error))
    grad = (np.float32(2.0) / np.float32(len(predicted))) * error
    return loss, grad


def bce_loss_and_grad(
    predicted: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Binary cross-entropy (clipped for stability) and its gradient.

    With a sigmoid output layer the ``p * (1 - p)`` denominator cancels
    against the activation derivative during backprop, giving the
    familiar ``(p - y) / n`` logit gradient.
    """
    eps = np.float32(1e-7)
    clipped = np.clip(predicted, eps, np.float32(1.0) - eps)
    loss = float(
        -np.mean(
            targets * np.log(clipped)
            + (np.float32(1.0) - targets) * np.log(np.float32(1.0) - clipped)
        )
    )
    grad = (clipped - targets) / (
        clipped * (np.float32(1.0) - clipped)
    ) / np.float32(len(predicted))
    return loss, grad.astype(np.float32, copy=False)


LOSS_FUNCTIONS = {
    "mse": mse_loss_and_grad,
    "bce": bce_loss_and_grad,
}


class DenseBackward:
    """Momentum-SGD stepper over device kernels and arena views.

    One instance owns the velocity state for one training run;
    :meth:`train_batch` runs forward + backward + update for a single
    minibatch and returns the batch loss.  All arithmetic is float32
    and fully deterministic given the batch sequence.
    """

    def __init__(
        self,
        model: Sequential,
        device,
        arena,
        learning_rate: float = 0.01,
        momentum: float = 0.9,
        loss: str = "mse",
    ):
        for layer in model.layers:
            if not isinstance(layer, Dense):
                raise ModelError(
                    "in-database training supports dense-only models"
                )
        loss_function = LOSS_FUNCTIONS.get(loss.lower())
        if loss_function is None:
            raise ModelError(
                f"unknown loss {loss!r}; "
                f"supported: {sorted(LOSS_FUNCTIONS)}"
            )
        self.model = model
        self.device = device
        self.arena = arena
        self.learning_rate = np.float32(learning_rate)
        self.momentum = np.float32(momentum)
        self.loss_name = loss.lower()
        self._loss = loss_function
        self._velocity = [
            (np.zeros_like(layer.kernel), np.zeros_like(layer.bias))
            for layer in model.layers
        ]

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        device = self.device
        arena = self.arena
        rows = len(x)
        # Forward, keeping every activated output for backprop.
        outputs = [x]
        current = x
        for index, layer in enumerate(self.model.layers):
            pre = arena.take(f"train:pre:{index}", rows, layer.units)
            device.gemm(current, layer.kernel, out=pre)
            device.add(pre, layer.bias, out=pre)
            activated = arena.take(f"train:act:{index}", rows, layer.units)
            device.activation(layer.activation.name, pre, out=activated)
            outputs.append(activated)
            current = activated
        loss, grad = self._loss(outputs[-1], y)
        # Backward: chain rule layer by layer, updating as we go.
        for position in range(len(self.model.layers) - 1, -1, -1):
            layer = self.model.layers[position]
            activated = outputs[position + 1]
            derivative = layer.activation.derivative(activated)
            grad_pre = arena.take(
                f"train:gpre:{position}", rows, layer.units
            )
            device.multiply(grad, derivative, out=grad_pre)
            layer_input = outputs[position]
            grad_kernel = device.gemm(
                device.transpose(layer_input), grad_pre
            )
            grad_bias = grad_pre.sum(axis=0)
            if position > 0:
                grad_next = arena.take(
                    f"train:gin:{position}", rows, layer.kernel.shape[0]
                )
                device.gemm(
                    grad_pre, device.transpose(layer.kernel), out=grad_next
                )
                grad = grad_next
            velocity_kernel, velocity_bias = self._velocity[position]
            velocity_kernel *= self.momentum
            velocity_kernel -= self.learning_rate * grad_kernel
            velocity_bias *= self.momentum
            velocity_bias -= self.learning_rate * grad_bias
            layer.kernel += velocity_kernel
            layer.bias += velocity_bias
        return loss
