"""The "ML runtime" with a C-API-flavoured interface.

This module stands in for the Tensorflow C-API of the paper's
approach (2): a runtime that

- manages models behind opaque integer *handles*,
- accepts and produces **row-major, C-contiguous float32 matrices**
  (the layout mismatch with a columnar engine is exactly what the
  Raven-like operator must pay for, paper Section 6.1),
- executes on a :class:`~repro.device.base.Device`, so the GPU variant
  accounts modeled device time.

The engine-facing integration lives in :mod:`repro.core.runtime_api`.
"""

from __future__ import annotations

import numpy as np

from repro.device.base import Device
from repro.device.host import HostDevice
from repro.errors import ModelError
from repro.nn.layers import Dense, Gru, Lstm
from repro.nn.model import Sequential


class TensorBuffer:
    """A 2-D row-major float32 buffer, the runtime's only tensor type."""

    def __init__(self, array: np.ndarray):
        array = np.asarray(array)
        if array.ndim != 2:
            raise ModelError(
                f"the runtime accepts 2-D tensors only, got {array.ndim}-D"
            )
        if array.dtype != np.float32:
            raise ModelError(
                f"the runtime accepts float32 tensors only, got {array.dtype}"
            )
        if not array.flags["C_CONTIGUOUS"]:
            raise ModelError(
                "the runtime requires row-major (C-contiguous) tensors; "
                "convert columnar data first"
            )
        self.array = array

    @property
    def shape(self) -> tuple[int, int]:
        return self.array.shape

    @classmethod
    def from_rows(cls, array: np.ndarray) -> "TensorBuffer":
        """Copy arbitrary numeric input into a fresh conforming buffer."""
        return cls(
            np.ascontiguousarray(np.asarray(array, dtype=np.float32))
        )


class InferenceSession:
    """A loaded model ready to run (think ``TF_SessionRun``)."""

    def __init__(self, model: Sequential, device: Device | None = None):
        self.model = model
        self.device = device or HostDevice()
        # Weights live on the device for the session's lifetime — the
        # one-time upload mirrors loading a model onto the GPU.
        self._weights = []
        for layer in model.layers:
            if isinstance(layer, Dense):
                self._weights.append(
                    (
                        self.device.to_device(layer.kernel),
                        self.device.to_device(layer.bias[np.newaxis, :]),
                    )
                )
            elif isinstance(layer, (Lstm, Gru)):
                self._weights.append(
                    (
                        self.device.to_device(layer.kernel),
                        self.device.to_device(layer.recurrent_kernel),
                        self.device.to_device(layer.bias[np.newaxis, :]),
                    )
                )
            else:  # pragma: no cover - layer set is closed
                raise ModelError(
                    f"runtime cannot load layer type {layer.layer_type}"
                )

    def run(self, inputs: TensorBuffer) -> TensorBuffer:
        """Run inference for a batch of row-major inputs."""
        if inputs.shape[1] != self.model.input_width:
            raise ModelError(
                f"session expects input width {self.model.input_width}, "
                f"got {inputs.shape[1]}"
            )
        device = self.device
        current = device.to_device(inputs.array)
        for layer, weights in zip(self.model.layers, self._weights):
            if isinstance(layer, Dense):
                kernel, bias = weights
                pre = device.gemm(current, kernel, accumulate=bias)
                current = device.activation(layer.activation.name, pre)
            elif isinstance(layer, Gru):
                current = self._run_gru(layer, weights, current)
            else:
                current = self._run_lstm(layer, weights, current)
        result = device.to_host(current)
        return TensorBuffer(np.ascontiguousarray(result))

    def _run_lstm(self, layer: Lstm, weights, sequence: np.ndarray):
        """Keras LSTM recurrence on the device.

        *sequence* is (batch, time_steps * features); the paper's
        workload has one feature per step.
        """
        device = self.device
        kernel, recurrent_kernel, bias = weights
        features = layer.input_dim
        steps = sequence.shape[1] // features
        batch = sequence.shape[0]
        units = layer.units
        hidden = None
        cell = None
        for step in range(steps):
            x_t = np.ascontiguousarray(
                sequence[:, step * features : (step + 1) * features]
            )
            z = device.gemm(x_t, kernel, accumulate=bias)
            if hidden is not None:
                z = device.add(z, device.gemm(hidden, recurrent_kernel))
            gate_i = device.activation(
                layer.recurrent_activation.name, z[:, :units]
            )
            gate_f = device.activation(
                layer.recurrent_activation.name, z[:, units : 2 * units]
            )
            candidate = device.activation(
                layer.activation.name, z[:, 2 * units : 3 * units]
            )
            gate_o = device.activation(
                layer.recurrent_activation.name, z[:, 3 * units :]
            )
            fresh = device.multiply(gate_i, candidate)
            if cell is None:
                cell = fresh
            else:
                cell = device.add(device.multiply(gate_f, cell), fresh)
            hidden = device.multiply(
                gate_o, device.activation(layer.activation.name, cell)
            )
        if hidden is None:
            return device.zeros((batch, units))
        return hidden


    def _run_gru(self, layer: Gru, weights, sequence: np.ndarray):
        """GRU recurrence on the device (gate order z, r, h)."""
        device = self.device
        kernel, recurrent_kernel, bias = weights
        features = layer.input_dim
        steps = sequence.shape[1] // features
        units = layer.units
        hidden = device.zeros((sequence.shape[0], units))
        for step in range(steps):
            x_t = np.ascontiguousarray(
                sequence[:, step * features : (step + 1) * features]
            )
            x_proj = device.gemm(x_t, kernel, accumulate=bias)
            h_proj = device.gemm(hidden, recurrent_kernel)
            update = device.activation(
                layer.recurrent_activation.name,
                device.add(x_proj[:, :units], h_proj[:, :units]),
            )
            reset = device.activation(
                layer.recurrent_activation.name,
                device.add(
                    x_proj[:, units : 2 * units],
                    h_proj[:, units : 2 * units],
                ),
            )
            candidate = device.activation(
                layer.activation.name,
                device.add(
                    x_proj[:, 2 * units :],
                    device.multiply(reset, h_proj[:, 2 * units :]),
                ),
            )
            keep = device.multiply(update, hidden)
            inverse = device.add(
                device.multiply(update, np.float32(-1.0)),
                np.float32(1.0),
            )
            hidden = device.add(
                keep,
                device.multiply(
                    inverse,
                    candidate,
                ),
            )
        return hidden


class MlRuntime:
    """Handle-based model registry, like the C-API's session store."""

    def __init__(self, device: Device | None = None):
        self.device = device or HostDevice()
        self._sessions: dict[int, InferenceSession] = {}
        self._next_handle = 1

    def load_model(self, model: Sequential) -> int:
        handle = self._next_handle
        self._next_handle += 1
        self._sessions[handle] = InferenceSession(model, self.device)
        return handle

    def run(self, handle: int, inputs: TensorBuffer) -> TensorBuffer:
        session = self._sessions.get(handle)
        if session is None:
            raise ModelError(f"unknown model handle {handle}")
        return session.run(inputs)

    def unload(self, handle: int) -> None:
        self._sessions.pop(handle, None)
