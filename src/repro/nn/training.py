"""Minimal training for dense networks (SGD with momentum / Adam).

The paper only evaluates *inference*; training exists here so the
examples can produce genuinely trained models (Iris classification,
time-series regression heads) instead of random weights.  Dense-only:
LSTM training is out of scope, exactly as it is for the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Dense
from repro.nn.model import Sequential


@dataclass
class TrainingReport:
    """Loss trajectory of one :func:`fit` call."""

    epochs: int
    losses: list[float]

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def _forward_collect(
    model: Sequential, inputs: np.ndarray
) -> list[np.ndarray]:
    """Forward pass keeping every layer's activated output."""
    outputs = [inputs]
    current = inputs
    for layer in model.layers:
        current = layer.forward(current)
        outputs.append(current)
    return outputs


def mse_loss(predicted: np.ndarray, target: np.ndarray) -> float:
    return float(np.mean((predicted - target) ** 2))


def fit(
    model: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    epochs: int = 100,
    learning_rate: float = 0.01,
    batch_size: int = 32,
    momentum: float = 0.9,
    seed: int = 0,
) -> TrainingReport:
    """Train a dense-only *model* against MSE with momentum SGD.

    Targets of shape ``(n,)`` are reshaped to ``(n, 1)``.
    """
    for layer in model.layers:
        if not isinstance(layer, Dense):
            raise ModelError("training supports dense-only models")
    inputs = np.asarray(inputs, dtype=np.float32)
    targets = np.asarray(targets, dtype=np.float32)
    if targets.ndim == 1:
        targets = targets[:, np.newaxis]
    if len(inputs) != len(targets):
        raise ModelError(
            f"{len(inputs)} inputs vs {len(targets)} targets"
        )
    rng = np.random.default_rng(seed)
    velocity = {
        id(layer): (np.zeros_like(layer.kernel), np.zeros_like(layer.bias))
        for layer in model.layers
    }
    losses: list[float] = []
    for _ in range(epochs):
        order = rng.permutation(len(inputs))
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(inputs), batch_size):
            batch_index = order[start : start + batch_size]
            x = inputs[batch_index]
            y = targets[batch_index]
            outputs = _forward_collect(model, x)
            predicted = outputs[-1]
            epoch_loss += mse_loss(predicted, y)
            batches += 1
            # Backpropagate MSE through the stack.
            grad = (2.0 / len(x)) * (predicted - y)
            for position in range(len(model.layers) - 1, -1, -1):
                layer = model.layers[position]
                activated = outputs[position + 1]
                grad = grad * layer.activation.derivative(activated)
                layer_input = outputs[position]
                grad_kernel = layer_input.T @ grad
                grad_bias = grad.sum(axis=0)
                if position > 0:
                    grad = grad @ layer.kernel.T
                vel_k, vel_b = velocity[id(layer)]
                vel_k *= momentum
                vel_k -= learning_rate * grad_kernel
                vel_b *= momentum
                vel_b -= learning_rate * grad_bias
                layer.kernel += vel_k
                layer.bias += vel_b
        losses.append(epoch_loss / max(batches, 1))
    return TrainingReport(epochs=epochs, losses=losses)


def accuracy(
    model: Sequential, inputs: np.ndarray, class_labels: np.ndarray
) -> float:
    """Classification accuracy: argmax over the output columns.

    For single-output models the prediction is thresholded at 0.5.
    """
    predicted = model.predict(inputs)
    if predicted.shape[1] == 1:
        chosen = (predicted[:, 0] >= 0.5).astype(np.int64)
    else:
        chosen = predicted.argmax(axis=1)
    return float(np.mean(chosen == np.asarray(class_labels)))
