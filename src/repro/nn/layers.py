"""Dense and LSTM layers with Keras inference semantics.

Weight layouts match Keras exactly, because both the relational model
representation (paper Section 4.1) and the native operator's build
phase (Section 5.2) are defined in terms of them:

- Dense: kernel ``W`` of shape ``(input_dim, units)``, bias ``(units,)``;
  forward is ``activation(x @ W + b)``.
- LSTM: kernel ``W`` of shape ``(input_dim, 4*units)``, recurrent
  kernel ``U`` of shape ``(units, 4*units)``, bias ``(4*units,)`` with
  the gate order ``[i, f, c, o]``; the recurrence is the one in the
  paper's Figure 2 / Listing 5.

All arithmetic is float32 (the paper stores 4-byte floats).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelGraphError
from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import glorot_uniform, orthogonal, zeros


class Layer:
    """Base class of all layers."""

    layer_type = "abstract"

    def __init__(self, units: int, activation: str):
        if units < 1:
            raise ModelGraphError("a layer needs at least one unit")
        self.units = units
        self.activation: Activation = get_activation(activation)
        self.input_dim: int | None = None
        self.built = False

    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        """Allocate and initialize the layer's weights."""
        raise NotImplementedError

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run inference for a batch of inputs."""
        raise NotImplementedError

    @property
    def output_dim(self) -> int:
        return self.units

    def parameter_count(self) -> int:
        raise NotImplementedError

    def _require_built(self) -> None:
        if not self.built:
            raise ModelGraphError(
                f"{type(self).__name__} used before build()"
            )


class Dense(Layer):
    """Fully connected layer: ``activation(x @ kernel + bias)``."""

    layer_type = "dense"

    def __init__(self, units: int, activation: str = "linear"):
        super().__init__(units, activation)
        self.kernel: np.ndarray | None = None
        self.bias: np.ndarray | None = None

    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        self.input_dim = input_dim
        self.kernel = glorot_uniform(
            rng, input_dim, self.units, (input_dim, self.units)
        )
        self.bias = zeros((self.units,))
        self.built = True

    def set_weights(self, kernel: np.ndarray, bias: np.ndarray) -> None:
        kernel = np.asarray(kernel, dtype=np.float32)
        bias = np.asarray(bias, dtype=np.float32)
        if kernel.ndim != 2 or bias.shape != (kernel.shape[1],):
            raise ModelGraphError(
                f"inconsistent dense weights: kernel {kernel.shape}, "
                f"bias {bias.shape}"
            )
        if kernel.shape[1] != self.units:
            raise ModelGraphError(
                f"kernel has {kernel.shape[1]} output units, "
                f"layer expects {self.units}"
            )
        self.kernel = kernel
        self.bias = bias
        self.input_dim = kernel.shape[0]
        self.built = True

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._require_built()
        if inputs.ndim != 2 or inputs.shape[1] != self.input_dim:
            raise ModelGraphError(
                f"dense layer expects (batch, {self.input_dim}) input, "
                f"got {inputs.shape}"
            )
        pre = inputs.astype(np.float32, copy=False) @ self.kernel + self.bias
        return self.activation(pre)

    def parameter_count(self) -> int:
        self._require_built()
        return self.kernel.size + self.bias.size


class Lstm(Layer):
    """LSTM layer (Keras semantics, ``return_sequences=False``).

    ``activation`` (default tanh) is applied to the candidate cell
    state and the output; ``recurrent_activation`` (default sigmoid) to
    the input/forget/output gates — see the paper's Figure 2.
    """

    layer_type = "lstm"

    def __init__(
        self,
        units: int,
        activation: str = "tanh",
        recurrent_activation: str = "sigmoid",
    ):
        super().__init__(units, activation)
        self.recurrent_activation: Activation = get_activation(
            recurrent_activation
        )
        self.kernel: np.ndarray | None = None  # (input_dim, 4*units)
        self.recurrent_kernel: np.ndarray | None = None  # (units, 4*units)
        self.bias: np.ndarray | None = None  # (4*units,)

    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        self.input_dim = input_dim
        self.kernel = glorot_uniform(
            rng, input_dim, self.units, (input_dim, 4 * self.units)
        )
        self.recurrent_kernel = np.concatenate(
            [orthogonal(rng, (self.units, self.units)) for _ in range(4)],
            axis=1,
        )
        # Keras initializes the forget-gate bias to 1 (unit_forget_bias).
        bias = zeros((4 * self.units,))
        bias[self.units : 2 * self.units] = 1.0
        self.bias = bias
        self.built = True

    def set_weights(
        self,
        kernel: np.ndarray,
        recurrent_kernel: np.ndarray,
        bias: np.ndarray,
    ) -> None:
        kernel = np.asarray(kernel, dtype=np.float32)
        recurrent_kernel = np.asarray(recurrent_kernel, dtype=np.float32)
        bias = np.asarray(bias, dtype=np.float32)
        if kernel.ndim != 2 or kernel.shape[1] != 4 * self.units:
            raise ModelGraphError(
                f"LSTM kernel must be (input_dim, {4 * self.units}), "
                f"got {kernel.shape}"
            )
        if recurrent_kernel.shape != (self.units, 4 * self.units):
            raise ModelGraphError(
                f"LSTM recurrent kernel must be "
                f"({self.units}, {4 * self.units}), "
                f"got {recurrent_kernel.shape}"
            )
        if bias.shape != (4 * self.units,):
            raise ModelGraphError(
                f"LSTM bias must be ({4 * self.units},), got {bias.shape}"
            )
        self.kernel = kernel
        self.recurrent_kernel = recurrent_kernel
        self.bias = bias
        self.input_dim = kernel.shape[0]
        self.built = True

    def gate_slices(self) -> dict[str, slice]:
        """Column slices of the packed weight matrices per gate."""
        units = self.units
        return {
            "i": slice(0, units),
            "f": slice(units, 2 * units),
            "c": slice(2 * units, 3 * units),
            "o": slice(3 * units, 4 * units),
        }

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run the recurrence over ``(batch, time_steps, input_dim)``.

        A 2-D input ``(batch, time_steps)`` is interpreted as a scalar
        time series (``input_dim == 1``), the layout the paper's time-
        series workload uses.
        """
        self._require_built()
        if inputs.ndim == 2 and self.input_dim == 1:
            inputs = inputs[:, :, np.newaxis]
        if inputs.ndim != 3 or inputs.shape[2] != self.input_dim:
            raise ModelGraphError(
                f"LSTM expects (batch, steps, {self.input_dim}) input, "
                f"got {inputs.shape}"
            )
        inputs = inputs.astype(np.float32, copy=False)
        batch, steps, _ = inputs.shape
        units = self.units
        hidden = np.zeros((batch, units), dtype=np.float32)
        cell = np.zeros((batch, units), dtype=np.float32)
        for step in range(steps):
            z = (
                inputs[:, step, :] @ self.kernel
                + hidden @ self.recurrent_kernel
                + self.bias
            )
            gate_i = self.recurrent_activation(z[:, :units])
            gate_f = self.recurrent_activation(z[:, units : 2 * units])
            candidate = self.activation(z[:, 2 * units : 3 * units])
            gate_o = self.recurrent_activation(z[:, 3 * units :])
            cell = gate_f * cell + gate_i * candidate
            hidden = gate_o * self.activation(cell)
        return hidden

    def parameter_count(self) -> int:
        self._require_built()
        return (
            self.kernel.size
            + self.recurrent_kernel.size
            + self.bias.size
        )


class Gru(Layer):
    """GRU layer (classic formulation, ``reset_after=False``).

    The paper's Section 2 names GRUs alongside LSTMs as the recurrent
    architectures relevant to database workloads.  The repro ships GRU
    support in the framework and the runtime-API integration path —
    but deliberately *not* in the relational representation or the
    native operator, which makes Table 2's generalizability trade-off
    concrete: the runtime-backed approaches pick the new layer type up
    for free, the reimplementation-based ones need new code.

    Weight layout: kernel ``(input_dim, 3*units)``, recurrent kernel
    ``(units, 3*units)``, bias ``(3*units,)`` with gate order
    ``[z, r, h]`` (update, reset, candidate):

    .. code-block:: text

        z = sigmoid(x W_z + h U_z + b_z)
        r = sigmoid(x W_r + h U_r + b_r)
        h~ = tanh(x W_h + (r * h) U_h + b_h)
        h' = z * h + (1 - z) * h~
    """

    layer_type = "gru"

    def __init__(
        self,
        units: int,
        activation: str = "tanh",
        recurrent_activation: str = "sigmoid",
    ):
        super().__init__(units, activation)
        self.recurrent_activation: Activation = get_activation(
            recurrent_activation
        )
        self.kernel: np.ndarray | None = None  # (input_dim, 3*units)
        self.recurrent_kernel: np.ndarray | None = None  # (units, 3*units)
        self.bias: np.ndarray | None = None  # (3*units,)

    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        self.input_dim = input_dim
        self.kernel = glorot_uniform(
            rng, input_dim, self.units, (input_dim, 3 * self.units)
        )
        self.recurrent_kernel = np.concatenate(
            [orthogonal(rng, (self.units, self.units)) for _ in range(3)],
            axis=1,
        )
        self.bias = zeros((3 * self.units,))
        self.built = True

    def set_weights(
        self,
        kernel: np.ndarray,
        recurrent_kernel: np.ndarray,
        bias: np.ndarray,
    ) -> None:
        kernel = np.asarray(kernel, dtype=np.float32)
        recurrent_kernel = np.asarray(recurrent_kernel, dtype=np.float32)
        bias = np.asarray(bias, dtype=np.float32)
        if kernel.ndim != 2 or kernel.shape[1] != 3 * self.units:
            raise ModelGraphError(
                f"GRU kernel must be (input_dim, {3 * self.units}), "
                f"got {kernel.shape}"
            )
        if recurrent_kernel.shape != (self.units, 3 * self.units):
            raise ModelGraphError(
                f"GRU recurrent kernel must be "
                f"({self.units}, {3 * self.units}), "
                f"got {recurrent_kernel.shape}"
            )
        if bias.shape != (3 * self.units,):
            raise ModelGraphError(
                f"GRU bias must be ({3 * self.units},), got {bias.shape}"
            )
        self.kernel = kernel
        self.recurrent_kernel = recurrent_kernel
        self.bias = bias
        self.input_dim = kernel.shape[0]
        self.built = True

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run the recurrence over ``(batch, time_steps, input_dim)``."""
        self._require_built()
        if inputs.ndim == 2 and self.input_dim == 1:
            inputs = inputs[:, :, np.newaxis]
        if inputs.ndim != 3 or inputs.shape[2] != self.input_dim:
            raise ModelGraphError(
                f"GRU expects (batch, steps, {self.input_dim}) input, "
                f"got {inputs.shape}"
            )
        inputs = inputs.astype(np.float32, copy=False)
        batch, steps, _ = inputs.shape
        units = self.units
        hidden = np.zeros((batch, units), dtype=np.float32)
        for step in range(steps):
            x_t = inputs[:, step, :]
            x_proj = x_t @ self.kernel + self.bias
            h_proj = hidden @ self.recurrent_kernel
            update = self.recurrent_activation(
                x_proj[:, :units] + h_proj[:, :units]
            )
            reset = self.recurrent_activation(
                x_proj[:, units : 2 * units]
                + h_proj[:, units : 2 * units]
            )
            candidate = self.activation(
                x_proj[:, 2 * units :] + reset * h_proj[:, 2 * units :]
            )
            hidden = update * hidden + (1.0 - update) * candidate
        return hidden

    def parameter_count(self) -> int:
        self._require_built()
        return (
            self.kernel.size
            + self.recurrent_kernel.size
            + self.bias.size
        )
