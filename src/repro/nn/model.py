"""Sequential model container.

A :class:`Sequential` is a stack of layers with a known input shape;
:meth:`Sequential.predict` is the ground truth all five in-database
approaches are validated against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelGraphError
from repro.nn.layers import Dense, Gru, Layer, Lstm


class Sequential:
    """A feed-forward stack of layers.

    For a model whose first layer is an LSTM, ``input_width`` is the
    number of *time steps* and ``features_per_step`` the per-step input
    dimension (1 for the paper's scalar time series); for dense models
    ``input_width`` is simply the number of input columns.
    """

    def __init__(
        self,
        layers: list[Layer],
        input_width: int,
        features_per_step: int = 1,
        seed: int = 0,
    ):
        if not layers:
            raise ModelGraphError("a model needs at least one layer")
        if input_width < 1:
            raise ModelGraphError("input width must be positive")
        for layer in layers[1:]:
            if isinstance(layer, (Lstm, Gru)):
                raise ModelGraphError(
                    "recurrent layers are only supported as the first "
                    "layer (the configuration the paper evaluates)"
                )
        self.layers = list(layers)
        self.input_width = input_width
        self.features_per_step = features_per_step
        rng = np.random.default_rng(seed)
        current_dim = (
            features_per_step
            if isinstance(layers[0], (Lstm, Gru))
            else input_width
        )
        for layer in self.layers:
            if not layer.built:
                layer.build(current_dim, rng)
            elif layer.input_dim != current_dim:
                raise ModelGraphError(
                    f"layer expects input dim {layer.input_dim}, "
                    f"previous layer produces {current_dim}"
                )
            current_dim = layer.output_dim

    @property
    def has_lstm(self) -> bool:
        return isinstance(self.layers[0], Lstm)

    @property
    def has_recurrent_first(self) -> bool:
        """Whether the first layer is recurrent (LSTM or GRU)."""
        return isinstance(self.layers[0], (Lstm, Gru))

    @property
    def time_steps(self) -> int:
        """Time steps a recurrent-first model consumes (else 1)."""
        return self.input_width if self.has_recurrent_first else 1

    @property
    def output_width(self) -> int:
        return self.layers[-1].output_dim

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Run inference; input is ``(batch, input_width)`` float-like.

        Returns ``(batch, output_width)`` float32.  For LSTM-first
        models the columns of the input are the time steps — the same
        contract as the relational fact table (paper Section 4).
        """
        inputs = np.asarray(inputs, dtype=np.float32)
        if inputs.ndim == 1:
            inputs = inputs[np.newaxis, :]
        if inputs.ndim != 2 or inputs.shape[1] != self.input_width:
            raise ModelGraphError(
                f"model expects (batch, {self.input_width}) input, "
                f"got {inputs.shape}"
            )
        current = inputs
        for index, layer in enumerate(self.layers):
            if index == 0 and isinstance(layer, (Lstm, Gru)):
                current = layer.forward(
                    current.reshape(
                        len(current), self.time_steps, self.features_per_step
                    )
                )
            else:
                current = layer.forward(current)
        return current

    def parameter_count(self) -> int:
        return sum(layer.parameter_count() for layer in self.layers)

    def summary(self) -> str:
        """A Keras-style textual summary."""
        lines = [
            f"Sequential(input_width={self.input_width}, "
            f"params={self.parameter_count()})"
        ]
        for index, layer in enumerate(self.layers):
            lines.append(
                f"  [{index}] {layer.layer_type}"
                f"(units={layer.units}, "
                f"activation={layer.activation.name}, "
                f"params={layer.parameter_count()})"
            )
        return "\n".join(lines)

    def dense_layers(self) -> list[Dense]:
        return [layer for layer in self.layers if isinstance(layer, Dense)]
