"""Neural-network substrate — the Keras/Tensorflow stand-in.

The paper runs inference of feed-forward (dense) and LSTM networks with
Keras semantics.  This package provides:

- :mod:`repro.nn.layers` / :mod:`repro.nn.model` — Dense and LSTM layers
  with the exact Keras inference recurrence, float32 arithmetic,
- :mod:`repro.nn.runtime` — an "ML runtime" exposing a C-API-flavoured
  session interface (row-major tensors, explicit buffers) used by the
  Raven-like integration approach,
- :mod:`repro.nn.training` — a small SGD/Adam trainer for dense networks
  so the examples can train real models,
- :mod:`repro.nn.serialization` — JSON save/load.
"""

from repro.nn.activations import Activation, get_activation
from repro.nn.layers import Dense, Layer, Lstm
from repro.nn.model import Sequential

__all__ = [
    "Activation",
    "get_activation",
    "Layer",
    "Dense",
    "Lstm",
    "Sequential",
]
