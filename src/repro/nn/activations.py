"""Activation functions (paper Section 4.3.5: linear, ReLU, sigmoid, tanh).

Each activation carries its forward function and its derivative (used
by the trainer).  Forward functions preserve the input dtype, so a
float32 pipeline stays float32 — matching the 4-byte-float arithmetic
of the paper's engine.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelGraphError


@dataclass(frozen=True)
class Activation:
    """A named activation with forward and derivative functions."""

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    #: derivative expressed in terms of the *activated output* y
    derivative: Callable[[np.ndarray], np.ndarray]
    #: optional allocation-free forward writing into a caller buffer;
    #: must be bit-exact with :attr:`forward`
    inplace: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return self.forward(values)

    def apply(self, values: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Forward pass, into *out* when given (``out is values`` is fine)."""
        if out is None:
            return self.forward(values)
        if self.inplace is not None:
            return self.inplace(values, out)
        np.copyto(out, self.forward(values))
        return out


def _linear(values: np.ndarray) -> np.ndarray:
    return values


def _relu(values: np.ndarray) -> np.ndarray:
    return np.maximum(values, np.zeros(1, dtype=values.dtype))


def _sigmoid(values: np.ndarray) -> np.ndarray:
    clipped = np.clip(values, -80.0, 80.0)
    return 1.0 / (1.0 + np.exp(-clipped))


def _tanh(values: np.ndarray) -> np.ndarray:
    return np.tanh(values)


def _linear_out(values: np.ndarray, out: np.ndarray) -> np.ndarray:
    if out is not values:
        np.copyto(out, values)
    return out


def _relu_out(values: np.ndarray, out: np.ndarray) -> np.ndarray:
    return np.maximum(values, np.zeros(1, dtype=values.dtype), out=out)


def _sigmoid_out(values: np.ndarray, out: np.ndarray) -> np.ndarray:
    # The same operation sequence as :func:`_sigmoid`, expressed as
    # in-place ufunc calls so no intermediate is allocated.
    np.clip(values, -80.0, 80.0, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)
    return out


def _tanh_out(values: np.ndarray, out: np.ndarray) -> np.ndarray:
    return np.tanh(values, out=out)


_ACTIVATIONS: dict[str, Activation] = {
    "linear": Activation(
        "linear", _linear, lambda y: np.ones_like(y), _linear_out
    ),
    "relu": Activation(
        "relu", _relu, lambda y: (y > 0).astype(y.dtype), _relu_out
    ),
    "sigmoid": Activation(
        "sigmoid", _sigmoid, lambda y: y * (1.0 - y), _sigmoid_out
    ),
    "tanh": Activation("tanh", _tanh, lambda y: 1.0 - y * y, _tanh_out),
}


def get_activation(name: str) -> Activation:
    """Look up an activation by name (case-insensitive)."""
    activation = _ACTIVATIONS.get(name.lower())
    if activation is None:
        raise ModelGraphError(
            f"unknown activation {name!r}; "
            f"supported: {sorted(_ACTIVATIONS)}"
        )
    return activation


def supported_activations() -> tuple[str, ...]:
    return tuple(sorted(_ACTIVATIONS))
