"""Activation functions (paper Section 4.3.5: linear, ReLU, sigmoid, tanh).

Each activation carries its forward function and its derivative (used
by the trainer).  Forward functions preserve the input dtype, so a
float32 pipeline stays float32 — matching the 4-byte-float arithmetic
of the paper's engine.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelGraphError


@dataclass(frozen=True)
class Activation:
    """A named activation with forward and derivative functions."""

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    #: derivative expressed in terms of the *activated output* y
    derivative: Callable[[np.ndarray], np.ndarray]

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return self.forward(values)


def _linear(values: np.ndarray) -> np.ndarray:
    return values


def _relu(values: np.ndarray) -> np.ndarray:
    return np.maximum(values, np.zeros(1, dtype=values.dtype))


def _sigmoid(values: np.ndarray) -> np.ndarray:
    clipped = np.clip(values, -80.0, 80.0)
    return 1.0 / (1.0 + np.exp(-clipped))


def _tanh(values: np.ndarray) -> np.ndarray:
    return np.tanh(values)


_ACTIVATIONS: dict[str, Activation] = {
    "linear": Activation("linear", _linear, lambda y: np.ones_like(y)),
    "relu": Activation(
        "relu", _relu, lambda y: (y > 0).astype(y.dtype)
    ),
    "sigmoid": Activation("sigmoid", _sigmoid, lambda y: y * (1.0 - y)),
    "tanh": Activation("tanh", _tanh, lambda y: 1.0 - y * y),
}


def get_activation(name: str) -> Activation:
    """Look up an activation by name (case-insensitive)."""
    activation = _ACTIVATIONS.get(name.lower())
    if activation is None:
        raise ModelGraphError(
            f"unknown activation {name!r}; "
            f"supported: {sorted(_ACTIVATIONS)}"
        )
    return activation


def supported_activations() -> tuple[str, ...]:
    return tuple(sorted(_ACTIVATIONS))
