"""Model save/load as JSON.

A portable interchange format in the spirit of PMML (referenced by the
paper's related work): architecture plus weights, no pickle.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Dense, Gru, Layer, Lstm
from repro.nn.model import Sequential


def model_to_dict(model: Sequential) -> dict:
    """Serializable description of *model* (architecture + weights)."""
    layers = []
    for layer in model.layers:
        if isinstance(layer, Dense):
            layers.append(
                {
                    "type": "dense",
                    "units": layer.units,
                    "activation": layer.activation.name,
                    "kernel": layer.kernel.tolist(),
                    "bias": layer.bias.tolist(),
                }
            )
        elif isinstance(layer, (Lstm, Gru)):
            layers.append(
                {
                    "type": layer.layer_type,
                    "units": layer.units,
                    "activation": layer.activation.name,
                    "recurrent_activation": layer.recurrent_activation.name,
                    "kernel": layer.kernel.tolist(),
                    "recurrent_kernel": layer.recurrent_kernel.tolist(),
                    "bias": layer.bias.tolist(),
                }
            )
        else:  # pragma: no cover - closed layer set
            raise ModelError(f"cannot serialize layer {layer.layer_type}")
    return {
        "format": "repro-model",
        "version": 1,
        "input_width": model.input_width,
        "features_per_step": model.features_per_step,
        "layers": layers,
    }


def model_from_dict(payload: dict) -> Sequential:
    """Rebuild a model from :func:`model_to_dict` output."""
    if payload.get("format") != "repro-model":
        raise ModelError("not a repro model document")
    if payload.get("version") != 1:
        raise ModelError(f"unsupported model version {payload.get('version')}")
    layers: list[Layer] = []
    for entry in payload["layers"]:
        if entry["type"] == "dense":
            layer = Dense(entry["units"], entry["activation"])
            layer.set_weights(
                np.asarray(entry["kernel"], dtype=np.float32),
                np.asarray(entry["bias"], dtype=np.float32),
            )
        elif entry["type"] in ("lstm", "gru"):
            recurrent_class = Lstm if entry["type"] == "lstm" else Gru
            layer = recurrent_class(
                entry["units"],
                entry["activation"],
                entry["recurrent_activation"],
            )
            layer.set_weights(
                np.asarray(entry["kernel"], dtype=np.float32),
                np.asarray(entry["recurrent_kernel"], dtype=np.float32),
                np.asarray(entry["bias"], dtype=np.float32),
            )
        else:
            raise ModelError(f"unknown layer type {entry['type']!r}")
        layers.append(layer)
    return Sequential(
        layers,
        input_width=payload["input_width"],
        features_per_step=payload.get("features_per_step", 1),
    )


def save_model(model: Sequential, path: str | Path) -> None:
    """Write *model* to *path* as JSON."""
    Path(path).write_text(json.dumps(model_to_dict(model)))


def load_model(path: str | Path) -> Sequential:
    """Load a model previously written by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))
