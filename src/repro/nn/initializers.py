"""Deterministic weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so a
model built twice from the same seed is bit-identical — the equivalence
tests across the five inference approaches depend on this.
"""

from __future__ import annotations

import numpy as np


def glorot_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int, shape: tuple[int, ...]
) -> np.ndarray:
    """Glorot/Xavier uniform — Keras's default kernel initializer."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def orthogonal(
    rng: np.random.Generator, shape: tuple[int, int]
) -> np.ndarray:
    """Orthogonal init — Keras's default recurrent-kernel initializer."""
    rows, columns = shape
    size = max(rows, columns)
    matrix = rng.normal(size=(size, size))
    q, r = np.linalg.qr(matrix)
    q = q * np.sign(np.diag(r))
    return q[:rows, :columns].astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)
