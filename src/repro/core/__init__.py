"""The paper's contribution: five ways to run model inference in-DBMS.

- :mod:`repro.core.ml_to_sql` — relational model representation + SQL
  generation (paper Section 4),
- :mod:`repro.core.modeljoin` — the native ModelJoin operator, CPU and
  simulated-GPU variants (Section 5),
- :mod:`repro.core.runtime_api` — Raven-like integration of an ML
  runtime over its C-API (approach 2),
- :mod:`repro.core.udf_integration` — vectorized Python UDF inference
  (approach 1),
- :mod:`repro.core.client` — the baseline: ship data to an external
  Python process over (simulated) ODBC and infer there,
- :mod:`repro.core.cost` — the inference cost model sketched as future
  work in Section 7,
- :mod:`repro.core.trees` / :mod:`repro.core.encoding` — decision-tree
  to SQL translation and SQL feature encodings, the adjacent techniques
  the paper points to.

Importing this package registers the MODEL JOIN operator factory, so
use :func:`repro.core.attach` (or the top-level :func:`repro.connect`)
to get a database with the full feature set.
"""

from repro.core.attach import attach

__all__ = ["attach"]
