"""Feature encodings in plain SQL (paper Section 4, first paragraph).

"We waive the topic of data encoding, as basic approaches like
Min-Max-Encoding or One-Hot-Encoding can be implemented in SQL in a
straight-forward way" — this module is that straightforward way, so the
examples can run realistic preprocessing inside the engine.  It also
implements the time-series windowing self-join of Section 4: turning a
plain (timestamp, value) series into one row per forecast window by
self-joining the table ``n - 1`` times.
"""

from __future__ import annotations

from repro.db.engine import Database
from repro.errors import DatabaseError


def min_max_expression(
    column: str, minimum: float, maximum: float
) -> str:
    """SQL scaling *column* into [0, 1] given its min and max."""
    span = maximum - minimum
    if span == 0:
        return "0.0"
    return f"(({column} - {minimum!r}) / {span!r})"


def min_max_encode_query(
    database: Database,
    table: str,
    id_column: str,
    columns: list[str],
) -> str:
    """SELECT with all *columns* min-max scaled (stats read via SQL)."""
    selects = [id_column]
    for column in columns:
        # Global min/max via SQL (the engine has no global aggregation,
        # so aggregate over a constant key).
        stats = database.execute(
            f"SELECT one, MIN({column}) AS lo, MAX({column}) AS hi FROM "
            f"(SELECT 1 AS one, {column} FROM {table}) AS t GROUP BY one"
        )
        lo = stats.column("lo")[0]
        hi = stats.column("hi")[0]
        selects.append(
            f"{min_max_expression(column, float(lo), float(hi))} "
            f"AS {column}_scaled"
        )
    return f"SELECT {', '.join(selects)} FROM {table}"


def one_hot_expressions(
    column: str, categories: list[int | str]
) -> list[str]:
    """One indicator expression per category value."""
    expressions = []
    for value in categories:
        literal = f"'{value}'" if isinstance(value, str) else repr(value)
        safe = str(value).replace("-", "m").replace(".", "_")
        expressions.append(
            f"CASE WHEN {column} = {literal} THEN 1.0 ELSE 0.0 END "
            f"AS {column}_is_{safe}"
        )
    return expressions


def window_self_join_query(
    series_table: str,
    id_column: str,
    value_column: str,
    time_steps: int,
    window_table_alias: str = "w",
) -> str:
    """The Section 4 windowing self-join for LSTM inputs.

    "Starting from a simple time series, this can be achieved by
    self-joining the table n-1 times ... with a join predicate that
    lets tuples match with their predecessor in the series."  Produces
    one row per window: ``(id, x1, ..., xn)`` where ``x1`` is the
    oldest value; ``id`` is the identifier of the *last* element of the
    window, so predictions line up with forecast targets.
    """
    if time_steps < 1:
        raise DatabaseError("a window needs at least one time step")
    aliases = [f"s{step}" for step in range(time_steps)]
    selects = [f"{aliases[-1]}.{id_column} AS {id_column}"]
    selects.extend(
        f"{alias}.{value_column} AS x{position + 1}"
        for position, alias in enumerate(aliases)
    )
    froms = [f"{series_table} AS {alias}" for alias in aliases]
    conditions = [
        f"{aliases[i + 1]}.{id_column} = {aliases[i]}.{id_column} + 1"
        for i in range(time_steps - 1)
    ]
    where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
    del window_table_alias
    return f"SELECT {', '.join(selects)} FROM {', '.join(froms)}{where}"
