"""Columnar <-> row-major layout conversion.

"Using the C-API, data does not need to be moved, but converted to the
expected input format of the Tensorflow API.  This requires moving data
from a columnar format into a row-major matrix, and results back to
columnar layout." (paper Section 6.1)

The runtime's :class:`~repro.nn.runtime.TensorBuffer` *enforces*
C-contiguous row-major float32 input, so these conversions are real
copies, not free casts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelJoinError
from repro.nn.runtime import TensorBuffer


def columnar_to_row_major(columns: list[np.ndarray]) -> TensorBuffer:
    """Interleave column vectors into the runtime's row-major layout."""
    if not columns:
        raise ModelJoinError("conversion needs at least one column")
    rows = len(columns[0])
    matrix = np.empty((rows, len(columns)), dtype=np.float32)
    for index, column in enumerate(columns):
        if len(column) != rows:
            raise ModelJoinError("ragged input columns")
        matrix[:, index] = column.astype(np.float32, copy=False)
    return TensorBuffer(matrix)


def row_major_to_columnar(buffer: TensorBuffer) -> list[np.ndarray]:
    """De-interleave a runtime result back into column vectors."""
    matrix = buffer.array
    return [
        np.ascontiguousarray(matrix[:, index])
        for index in range(matrix.shape[1])
    ]
