"""Direct execution of the runtime-API integration (TF_CAPI variants)."""

from __future__ import annotations

import numpy as np

from repro.core.runtime_api.operator import RuntimeApiOperator
from repro.db.engine import Database
from repro.db.operators import ExecutionContext, TableScan
from repro.db.parallel import run_plans
from repro.db.profiler import QueryProfile, finalize_profile
from repro.db.resilience import CancellationToken
from repro.db.vector import VectorBatch
from repro.device.base import Device, DeviceWindow
from repro.device.host import HostDevice
from repro.nn.model import Sequential
from repro.nn.runtime import MlRuntime


class RuntimeApiModelJoin:
    """Runs inference through the embedded ML runtime (paper approach 2).

    Each partition pipeline gets its own runtime session, mirroring the
    per-thread private plans of the engine; the runtime itself (and the
    device) is shared.
    """

    def __init__(
        self,
        database: Database,
        model: Sequential,
        device: Device | None = None,
    ):
        self.database = database
        self.model = model
        self.device = device or HostDevice()
        self.runtime = MlRuntime(self.device)
        self.last_profile: QueryProfile | None = None
        self.last_seconds: float = 0.0

    def execute(
        self,
        fact_table: str,
        input_columns: list[str],
        parallel: bool = False,
        timeout_seconds: float | None = None,
    ) -> tuple[list[VectorBatch], ExecutionContext]:
        table = self.database.table(fact_table)
        parallelism = (
            self.database.parallelism
            if parallel and self.database.parallelism > 1
            else 1
        )
        context: ExecutionContext = self.database._context(
            parallelism=parallelism
        )
        if timeout_seconds is not None:
            context.cancellation = CancellationToken.with_timeout(
                timeout_seconds
            )
        tracer = context.tracer

        def build(partition_index: int) -> RuntimeApiOperator:
            scan_partition = (
                partition_index if parallelism > 1 else None
            )
            if scan_partition is not None and table.num_partitions == 1:
                scan_partition = None
            scan = TableScan(
                context, table, partition_index=scan_partition
            )
            return RuntimeApiOperator(
                context,
                scan,
                self.model,
                input_columns=input_columns,
                runtime=self.runtime,
            )

        pool = self.database.worker_pool if parallelism > 1 else None
        with DeviceWindow(self.device) as window:
            with tracer.span(
                "query",
                category="query",
                args={
                    "kind": "runtime-api",
                    "parallel": parallelism > 1,
                },
            ):
                context.trace_parent = tracer.current_span_id()
                plans = [build(index) for index in range(parallelism)]
                _, batches = run_plans(
                    plans,
                    pool=pool,
                    morsel_driven=True,
                    plan_builder=build,
                    retries=self.database.task_retries,
                )
        self.last_seconds = window.seconds
        profile = QueryProfile(
            wall_seconds=window.wall_seconds,
            memory=context.memory,
            stopwatch=context.stopwatch,
            counters=context.counters,
        )
        profile.rows_returned = sum(len(batch) for batch in batches)
        finalize_profile(profile, self.database.metrics)
        self.last_profile = profile
        return batches, context

    def predict(
        self,
        fact_table: str,
        id_column: str,
        input_columns: list[str],
        parallel: bool = False,
        timeout_seconds: float | None = None,
    ) -> np.ndarray:
        batches, _ = self.execute(
            fact_table,
            input_columns,
            parallel=parallel,
            timeout_seconds=timeout_seconds,
        )
        ids = np.concatenate([batch.column(id_column) for batch in batches])
        order = np.argsort(ids, kind="stable")
        outputs = []
        for index in range(self.model.output_width):
            column = np.concatenate(
                [batch.column(f"prediction_{index}") for batch in batches]
            )
            outputs.append(column[order])
        return np.column_stack(outputs)
