"""Raven-like integration of an ML runtime over its native API.

Approach (2) of the paper: the engine embeds the ML runtime (here
:class:`repro.nn.runtime.MlRuntime`, standing in for the Tensorflow
C-API) and converts between the engine's columnar vectors and the
runtime's row-major tensors on every call (Section 6.1).
"""

from repro.core.runtime_api.conversion import (
    columnar_to_row_major,
    row_major_to_columnar,
)
from repro.core.runtime_api.operator import RuntimeApiOperator

__all__ = [
    "columnar_to_row_major",
    "row_major_to_columnar",
    "RuntimeApiOperator",
]
