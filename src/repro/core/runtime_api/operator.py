"""The runtime-API inference operator (TF_CAPI of the evaluation).

A regular unary operator: per input vector it converts the prediction
columns to the runtime's row-major layout, invokes the runtime session
and converts the result back.  The model itself is loaded into the
runtime once (weights move to the device at load time), so unlike the
native ModelJoin there is no relational build phase — the model comes
from the framework object, which is exactly why this approach stays
generic across model types (paper Section 6.3 / Table 2).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.runtime_api.conversion import (
    columnar_to_row_major,
    row_major_to_columnar,
)
from repro.db.operators.base import (
    ExecutionContext,
    PhysicalOperator,
    UnaryOperator,
)
from repro.db.schema import Column, Schema
from repro.db.types import SqlType
from repro.db.vector import VectorBatch
from repro.device.base import Device
from repro.errors import ModelJoinError
from repro.nn.model import Sequential
from repro.nn.runtime import MlRuntime


class RuntimeApiOperator(UnaryOperator):
    """child (input flow) -> child columns + runtime predictions."""

    # per-vector inference with no cross-pipeline coupling: safe to
    # feed from a shared morsel queue
    morsel_streaming = True

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        model: Sequential,
        input_columns: list[str],
        output_prefix: str = "prediction",
        device: Device | None = None,
        runtime: MlRuntime | None = None,
    ):
        if len(input_columns) != model.input_width:
            raise ModelJoinError(
                f"model expects {model.input_width} input columns, "
                f"got {len(input_columns)}"
            )
        for name in input_columns:
            child.schema.position_of(name)
        prediction_columns = tuple(
            Column(f"{output_prefix}_{index}", SqlType.FLOAT)
            for index in range(model.output_width)
        )
        super().__init__(
            context, Schema(child.schema.columns + prediction_columns), child
        )
        self.model = model
        self.input_columns = list(input_columns)
        self.runtime = runtime or MlRuntime(device)
        self._handle: int | None = None
        self._accounted_bytes = 0

    @property
    def ordering(self) -> tuple[str, ...]:
        return self.child.ordering

    def open(self) -> None:
        super().open()
        self.runtime.device.set_tracer(self.context.tracer)
        with self.context.stopwatch.measure("runtime-load"):
            with self.context.tracer.span(
                "runtime-load",
                category="phase",
                parent_id=self._span_id,
            ):
                self._handle = self.runtime.load_model(self.model)
        # The runtime holds the framework graph plus the device copy of
        # the weights, and some fixed session state — the "slightly
        # higher fixed memory" the paper observes for TF(C-API) in
        # Table 3 relative to the native operator.
        session_fixed_bytes = 256 * 1024
        self._accounted_bytes = (
            2 * 4 * self.model.parameter_count() + session_fixed_bytes
        )
        self.context.memory.allocate(self._accounted_bytes, "runtime-model")

    def _produce(self) -> Iterator[VectorBatch]:
        tracer = self.context.tracer
        prediction_schema = Schema(
            self.schema.columns[len(self.child.schema) :]
        )
        for batch in self.child.next_batches():
            if len(batch) == 0:
                continue
            if tracer.enabled:
                with tracer.span(
                    "runtime-infer",
                    category="phase",
                    parent_id=self._span_id,
                    args={"rows": len(batch)},
                ):
                    yield self._infer_batch(prediction_schema, batch)
            else:
                yield self._infer_batch(prediction_schema, batch)

    def _infer_batch(
        self, prediction_schema: Schema, batch: VectorBatch
    ) -> VectorBatch:
        stopwatch = self.context.stopwatch
        with stopwatch.measure("runtime-convert"):
            buffer = columnar_to_row_major(
                [batch.column(name) for name in self.input_columns]
            )
        transient = buffer.array.nbytes
        self.context.memory.allocate(transient, "runtime-vector")
        try:
            with stopwatch.measure("runtime-infer"):
                result = self.runtime.run(self._handle, buffer)
            with stopwatch.measure("runtime-convert"):
                columns = row_major_to_columnar(result)
        finally:
            self.context.memory.release(transient, "runtime-vector")
        predictions = VectorBatch(prediction_schema, columns)
        return batch.concat_columns(predictions)

    def close(self) -> None:
        if self._handle is not None:
            self.runtime.unload(self._handle)
            self._handle = None
        if self._accounted_bytes:
            self.context.memory.release(
                self._accounted_bytes, "runtime-model"
            )
            self._accounted_bytes = 0
        super().close()

    def describe(self) -> str:
        return (
            f"RuntimeApi(device={self.runtime.device.name}, "
            f"inputs=[{', '.join(self.input_columns)}])"
        )
