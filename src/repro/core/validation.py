"""Model-table sanity checks (paper Section 5.5).

"Making the DBMS aware that a table is a model additionally enables
custom query optimizations, sanity checks and also potential model
lifetime cycle management."

:func:`verify_model_table` cross-checks a stored model table against
its registered catalog metadata: schema shape, node-id ranges, edge
counts per layer, dangling references, and weight finiteness.  The
native ModelJoin's build phase assumes these properties; running the
check surfaces corruption *before* a query silently builds a wrong
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ml_to_sql.representation import (
    LayerBlock,
    WEIGHT_COLUMNS,
    blocks_from_dims,
)
from repro.db.catalog import ModelMetadata
from repro.db.engine import Database


@dataclass
class ValidationReport:
    """Outcome of one model-table verification."""

    model_name: str
    table_name: str
    issues: list[str] = field(default_factory=list)
    edges_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, issue: str) -> None:
        self.issues.append(issue)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        status = "OK" if self.ok else f"{len(self.issues)} issue(s)"
        lines = [
            f"model {self.model_name!r} in table {self.table_name!r}: "
            f"{status} ({self.edges_checked} edges)"
        ]
        lines.extend(f"  - {issue}" for issue in self.issues)
        return "\n".join(lines)


def _expected_edges(blocks: list[LayerBlock]) -> dict[str, int]:
    """Expected edge count per forward block (keyed by first node)."""
    expected: dict[str, int] = {}
    previous: LayerBlock | None = None
    for block in blocks:
        if block.kind == "input":
            expected[str(block.first_node)] = block.units
        elif block.kind == "lstm_state":
            expected[str(block.first_node)] = block.units * block.units
        elif block.kind == "dense":
            if previous is None:
                raise ValueError("dense block without predecessor")
            expected[str(block.first_node)] = previous.units * block.units
        previous = block
    return expected


def verify_model_table(
    database: Database, model_name: str
) -> ValidationReport:
    """Check the stored model table against its catalog metadata."""
    metadata: ModelMetadata = database.catalog.model(model_name)
    table = database.table(metadata.table_name)
    report = ValidationReport(model_name, metadata.table_name)

    # 1. Schema shape: the optimized 14-column layout.
    expected_columns = ("node_in", "node") + WEIGHT_COLUMNS
    if tuple(name.lower() for name in table.schema.names) != expected_columns:
        report.add(
            f"schema mismatch: expected {expected_columns}, "
            f"found {table.schema.names}"
        )
        return report

    blocks = blocks_from_dims(
        metadata.input_width,
        [
            (layer.layer_type, layer.units, layer.activation)
            for layer in metadata.layers
        ],
    )
    total_nodes = blocks[-1].last_node + 1
    expected = _expected_edges(blocks)

    node_in_chunks: list[np.ndarray] = []
    node_chunks: list[np.ndarray] = []
    for batch in table.scan():
        report.edges_checked += len(batch)
        node_in_chunks.append(batch.column("node_in"))
        node_chunks.append(batch.column("node"))
        for name in WEIGHT_COLUMNS:
            weights = batch.column(name)
            if not np.isfinite(weights).all():
                report.add(f"non-finite weights in column {name}")
    if not node_chunks:
        report.add("model table is empty")
        return report
    node_in = np.concatenate(node_in_chunks)
    node = np.concatenate(node_chunks)

    # 2. Node-id ranges.
    if node.min() < 0 or node.max() >= total_nodes:
        report.add(
            f"target node ids outside [0, {total_nodes}): "
            f"[{node.min()}, {node.max()}]"
        )
    if node_in.min() < -1 or node_in.max() >= total_nodes:
        report.add(
            f"source node ids outside [-1, {total_nodes}): "
            f"[{node_in.min()}, {node_in.max()}]"
        )

    # 3. Edge counts and source ranges per block.
    previous: LayerBlock | None = None
    for block in blocks:
        mask = (node >= block.first_node) & (node <= block.last_node)
        count = int(mask.sum())
        want = expected[str(block.first_node)]
        label = f"{block.kind}@{block.first_node}"
        if count != want:
            report.add(
                f"{label}: expected {want} edges, found {count}"
            )
        sources = node_in[mask]
        if block.kind == "input":
            if count and not (sources == -1).all():
                report.add(
                    f"{label}: input edges must originate from the "
                    "artificial node (-1)"
                )
        elif block.kind == "lstm_state":
            bad = (sources < block.first_node) | (
                sources > block.last_node
            )
            if bad.any():
                report.add(
                    f"{label}: {int(bad.sum())} recurrent edges leave "
                    "the state block"
                )
        elif block.kind == "dense" and previous is not None:
            bad = (sources < previous.first_node) | (
                sources > previous.last_node
            )
            if count and bad.any():
                report.add(
                    f"{label}: {int(bad.sum())} edges do not originate "
                    "from the previous layer"
                )
        previous = block

    # 4. Duplicate edges.
    packed = node_in.astype(np.int64) * (total_nodes + 2) + node
    unique = np.unique(packed)
    if len(unique) != len(packed):
        report.add(
            f"{len(packed) - len(unique)} duplicate (node_in, node) edges"
        )
    return report
