"""Relational model representation (paper Sections 4.1, 4.3, 4.4).

A model becomes rows of a single *model table*.  Every row is one edge
of the (internal) model graph of Figure 4, carrying a 12-element weight
vector: kernel weights ``(W_i, W_f, W_c, W_o)``, recurrent-kernel
weights ``(U_i, U_f, U_c, U_o)`` and bias weights ``(b_i, b_f, b_c,
b_o)``.  Dense layers only populate ``W_i``/``b_i``; LSTM layers
populate all twelve across their two sublayers.

Two node addressing schemes are supported:

- **classic** (Section 4.1): a node is the pair ``(Layer, Node)``; an
  edge is ``(Layer_in, Node_in, Layer, Node)`` — 16 columns total.
- **optimized** (Section 4.4): a single unique node id assigned by
  traversing the graph; joins become one-column joins plus an offset,
  and the per-layer filter becomes a range predicate on ``Node``
  (prunable through the SMA zone maps) — 14 columns total.

Graph construction follows Section 4.3:

- an artificial input layer with a single node (id/-layer ``-1``),
- for dense-first models, an identity *input layer* with one node per
  input column, connected from the artificial node with ``W_i = 1``
  (Listing 3's input function selects the matching column per node),
- for each LSTM layer, one block of *state nodes* with a full set of
  recurrent edges (``U`` weights); the diagonal self-edges additionally
  carry the kernel weights ``W`` and biases ``b``.  Weight matrices are
  stored exactly once even though the computation unrolls over the time
  steps (Section 4.3.3).  This merged-diagonal layout is a documented
  refinement of the paper's kernel/recurrent-sublayer formulation: it
  preserves the representation's contract (edge rows with 12-weight
  vectors, stored once) while letting every generated time step
  reference the previous step's subquery exactly once — the paper's
  "backward edge" formulation would re-execute the nested prefix twice
  per step in any engine without common-subexpression reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.schema import Schema
from repro.db.types import SqlType
from repro.errors import UnsupportedModelError
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential

#: the 12 weight columns of the model table, in paper order
WEIGHT_COLUMNS = (
    "w_i",
    "w_f",
    "w_c",
    "w_o",
    "u_i",
    "u_f",
    "u_c",
    "u_o",
    "b_i",
    "b_f",
    "b_c",
    "b_o",
)


@dataclass(frozen=True)
class MlToSqlOptions:
    """Generation options (the Section 4.4 optimizations are defaults).

    ``optimized_node_ids`` selects the unique-node-id scheme;
    ``native_activation_functions`` emits the engine's SIGMOID/TANH/RELU
    instead of portable arithmetic/CASE SQL; ``sort_tables`` declares
    sort keys on the model/fact tables so the engine can use the
    streaming (order-based) aggregation of Section 4.4.
    """

    optimized_node_ids: bool = True
    native_activation_functions: bool = True
    sort_tables: bool = True
    model_table_partitions: int = 1

    def __post_init__(self) -> None:
        if self.model_table_partitions < 1:
            raise UnsupportedModelError("model table needs >= 1 partition")


@dataclass(frozen=True)
class LayerBlock:
    """One block of contiguous node ids in the relational graph."""

    kind: str  # "input" | "dense" | "lstm_kernel" | "lstm_recurrent"
    layer_index: int  # the model-table Layer value (classic scheme)
    first_node: int  # first global node id (optimized scheme)
    units: int
    activation: str = "linear"
    recurrent_activation: str = "sigmoid"

    @property
    def last_node(self) -> int:
        return self.first_node + self.units - 1


@dataclass
class RelationalModel:
    """A model converted to relational rows plus its layout metadata."""

    options: MlToSqlOptions
    blocks: list[LayerBlock]
    #: rows matching :func:`model_table_schema` for ``options``
    rows: list[tuple]
    input_width: int
    output_width: int
    time_steps: int
    has_lstm: bool
    table_name: str | None = None
    source: Sequential | None = field(default=None, repr=False)

    @property
    def edge_count(self) -> int:
        return len(self.rows)

    def block(self, kind: str, occurrence: int = 0) -> LayerBlock:
        matches = [block for block in self.blocks if block.kind == kind]
        return matches[occurrence]

    def forward_blocks(self) -> list[LayerBlock]:
        """The blocks the generated query walks, in execution order."""
        return [block for block in self.blocks if block.kind != "input"]


def model_table_schema(options: MlToSqlOptions) -> Schema:
    """Schema of the model table for the chosen addressing scheme."""
    if options.optimized_node_ids:
        keys = [("node_in", SqlType.INTEGER), ("node", SqlType.INTEGER)]
    else:
        keys = [
            ("layer_in", SqlType.INTEGER),
            ("node_in", SqlType.INTEGER),
            ("layer", SqlType.INTEGER),
            ("node", SqlType.INTEGER),
        ]
    weights = [(name, SqlType.FLOAT) for name in WEIGHT_COLUMNS]
    return Schema.of(*(keys + weights))


def _edge_row(
    options: MlToSqlOptions,
    layer_in: int,
    node_in: int,
    layer: int,
    node: int,
    weights: dict[str, float],
) -> tuple:
    vector = [float(weights.get(name, 0.0)) for name in WEIGHT_COLUMNS]
    if options.optimized_node_ids:
        return (node_in, node, *vector)
    return (layer_in, node_in, layer, node, *vector)


def build_relational_model(
    model: Sequential, options: MlToSqlOptions | None = None
) -> RelationalModel:
    """Convert *model* into relational rows (Section 4.3).

    Supports the architectures of the paper's evaluation: dense-only
    stacks, and an LSTM first layer (scalar time series) followed by
    dense layers.
    """
    options = options or MlToSqlOptions()
    if model.has_lstm and model.features_per_step != 1:
        raise UnsupportedModelError(
            "ML-To-SQL supports scalar time series only "
            "(one input column per time step, as in the paper)"
        )
    blocks: list[LayerBlock] = []
    rows: list[tuple] = []
    next_node = 0
    layer_index = 0

    if model.has_lstm:
        previous = None  # LSTM connects straight to the artificial input
    else:
        # Identity input layer: node i receives input column i with
        # weight 1 from the artificial input node (Listing 3).
        input_block = LayerBlock(
            "input", layer_index, next_node, model.input_width
        )
        blocks.append(input_block)
        for node in range(model.input_width):
            rows.append(
                _edge_row(
                    options,
                    layer_in=-1,
                    node_in=-1,
                    layer=layer_index,
                    node=input_block.first_node + node,
                    weights={"w_i": 1.0},
                )
            )
        next_node += model.input_width
        layer_index += 1
        previous = input_block

    for layer in model.layers:
        if isinstance(layer, Lstm):
            # One block of w state nodes with w*w recurrent edges; the
            # diagonal self-edges additionally carry the kernel weights
            # and the biases.  Both weight matrices are stored exactly
            # once (Section 4.3.3); the merged-diagonal layout lets the
            # generated query compute kernel and recurrence in a single
            # pass per time step (see templates.py for the algebra).
            state_block = LayerBlock(
                "lstm_state",
                layer_index,
                next_node,
                layer.units,
                activation=layer.activation.name,
                recurrent_activation=layer.recurrent_activation.name,
            )
            next_node += layer.units
            blocks.append(state_block)
            gates = layer.gate_slices()
            for source in range(layer.units):
                for target in range(layer.units):
                    weights = {
                        f"u_{gate}": layer.recurrent_kernel[
                            source, gates[gate]
                        ][target]
                        for gate in ("i", "f", "c", "o")
                    }
                    if source == target:
                        weights.update(
                            {
                                f"w_{gate}": layer.kernel[0, gates[gate]][
                                    target
                                ]
                                for gate in ("i", "f", "c", "o")
                            }
                        )
                        weights.update(
                            {
                                f"b_{gate}": layer.bias[gates[gate]][target]
                                for gate in ("i", "f", "c", "o")
                            }
                        )
                    rows.append(
                        _edge_row(
                            options,
                            layer_in=state_block.layer_index,
                            node_in=state_block.first_node + source,
                            layer=state_block.layer_index,
                            node=state_block.first_node + target,
                            weights=weights,
                        )
                    )
            layer_index += 1
            previous = state_block
        elif isinstance(layer, Dense):
            block = LayerBlock(
                "dense",
                layer_index,
                next_node,
                layer.units,
                activation=layer.activation.name,
            )
            next_node += layer.units
            blocks.append(block)
            if previous is None:
                raise UnsupportedModelError(
                    "dense layer without a predecessor block"
                )
            for source in range(previous.units):
                for target in range(layer.units):
                    rows.append(
                        _edge_row(
                            options,
                            layer_in=previous.layer_index,
                            node_in=previous.first_node + source,
                            layer=block.layer_index,
                            node=block.first_node + target,
                            weights={
                                "w_i": layer.kernel[source, target],
                                "b_i": layer.bias[target],
                            },
                        )
                    )
            layer_index += 1
            previous = block
        else:  # pragma: no cover - closed layer set
            raise UnsupportedModelError(
                f"unsupported layer type {layer.layer_type}"
            )

    return RelationalModel(
        options=options,
        blocks=blocks,
        rows=rows,
        input_width=model.input_width,
        output_width=model.output_width,
        time_steps=model.time_steps,
        has_lstm=model.has_lstm,
        source=model,
    )


def blocks_from_dims(
    input_width: int,
    layer_dims: list[tuple[str, int, str]],
) -> list[LayerBlock]:
    """Node-id layout from layer metadata alone (no weights needed).

    *layer_dims* is a list of ``(layer_type, units, activation)``.  The
    native operator's build phase uses this to map model-table rows to
    weight-matrix cells; it must assign the same ids as
    :func:`build_relational_model` (asserted by tests).
    """
    blocks: list[LayerBlock] = []
    next_node = 0
    layer_index = 0
    first_is_lstm = bool(layer_dims) and layer_dims[0][0] == "lstm"
    if not first_is_lstm:
        blocks.append(LayerBlock("input", layer_index, next_node, input_width))
        next_node += input_width
        layer_index += 1
    for layer_type, units, activation in layer_dims:
        if layer_type == "lstm":
            blocks.append(
                LayerBlock(
                    "lstm_state", layer_index, next_node, units, activation
                )
            )
        elif layer_type == "dense":
            blocks.append(
                LayerBlock("dense", layer_index, next_node, units, activation)
            )
        else:
            raise UnsupportedModelError(f"unknown layer type {layer_type!r}")
        next_node += units
        layer_index += 1
    return blocks
