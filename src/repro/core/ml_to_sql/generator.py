"""Nested-query generation for the ModelJoin (paper Listing 1).

:class:`SqlGenerator` composes the templates of
:mod:`repro.core.ml_to_sql.templates` into one inference query::

    Output(Activate(Layer_forward( ... Input(R, model) ... )))

and :class:`MlToSqlModelJoin` is the user-facing convenience that loads
the model table, generates the query and runs it.
"""

from __future__ import annotations

import numpy as np

from repro.core.ml_to_sql import templates
from repro.core.ml_to_sql.loader import load_model_table
from repro.core.ml_to_sql.representation import (
    MlToSqlOptions,
    RelationalModel,
    build_relational_model,
)
from repro.db.engine import Database, Result
from repro.errors import UnsupportedModelError
from repro.nn.model import Sequential


def dense_join_work(rows: int, width: int, depth: int, inputs: int) -> int:
    """Join-output volume of the generated dense inference query.

    Each layer materializes ``rows * fan_in * fan_out`` intermediate
    tuples; this is the dominant cost of the ML-To-SQL approach and
    what the bench harness uses to skip cells that would exceed its
    work budget.
    """
    total = rows * inputs  # input function
    previous = inputs
    for _ in range(depth):
        total += rows * previous * width
        previous = width
    total += rows * previous * 1
    return total


def lstm_join_work(rows: int, width: int, steps: int) -> int:
    """Join-output volume of the generated LSTM inference query."""
    return rows * width * width * max(steps - 1, 1) + rows * width


class SqlGenerator:
    """Generates the inference SQL for one (model, fact table) pair."""

    def __init__(
        self,
        relational: RelationalModel,
        fact_table: str,
        id_column: str,
        input_columns: list[str],
        payload_columns: list[str] | None = None,
        prediction_prefix: str = "prediction",
    ):
        if relational.table_name is None:
            raise UnsupportedModelError(
                "the relational model has not been loaded into a table; "
                "call load_model_table first"
            )
        expected = (
            relational.time_steps
            if relational.has_lstm
            else relational.input_width
        )
        if len(input_columns) != expected:
            raise UnsupportedModelError(
                f"model expects {expected} input columns, "
                f"got {len(input_columns)}"
            )
        if relational.has_lstm and not relational.options.optimized_node_ids:
            raise UnsupportedModelError(
                "LSTM generation requires the optimized node-id scheme"
            )
        self.relational = relational
        self.options = relational.options
        self.fact_table = fact_table
        self.id_column = id_column
        self.input_columns = list(input_columns)
        self.payload_columns = list(payload_columns or [])
        self.prediction_prefix = prediction_prefix

    # ------------------------------------------------------------------
    # query generation
    # ------------------------------------------------------------------
    def inference_query(self, order_by_id: bool = False) -> str:
        """The full nested ModelJoin query."""
        if self.relational.has_lstm:
            query = self._lstm_prefix()
            remaining = [
                block
                for block in self.relational.blocks
                if block.kind == "dense"
            ]
        else:
            query = self._dense_input()
            remaining = [
                block
                for block in self.relational.blocks
                if block.kind == "dense"
            ]
        for block in remaining:
            query = self._dense_layer(query, block)
        query = self._output(query)
        if order_by_id:
            query += f" ORDER BY {self.id_column}"
        return query

    def building_blocks(self) -> list[tuple[str, str]]:
        """(name, SQL) of each nesting level, for inspection/debugging."""
        blocks: list[tuple[str, str]] = []
        if self.relational.has_lstm:
            query = self._lstm_prefix()
            blocks.append(("lstm", query))
        else:
            query = self._dense_input()
            blocks.append(("input", query))
        for block in self.relational.blocks:
            if block.kind != "dense":
                continue
            query = self._dense_layer(query, block)
            blocks.append((f"dense@{block.first_node}", query))
        blocks.append(("output", self._output(query)))
        return blocks

    def _dense_input(self) -> str:
        input_block = self.relational.block("input")
        if self.options.optimized_node_ids:
            return templates.dense_input_optimized(
                self.fact_table,
                self.id_column,
                self.input_columns,
                self.relational.table_name,
                input_block.first_node,
            )
        return templates.dense_input_classic(
            self.fact_table,
            self.id_column,
            self.input_columns,
            self.relational.table_name,
            input_block.layer_index,
        )

    def _dense_layer(self, previous_query: str, block) -> str:
        if self.options.optimized_node_ids:
            forward = templates.dense_forward_optimized(
                previous_query,
                self.relational.table_name,
                block.first_node,
                block.last_node,
            )
        else:
            forward = templates.dense_forward_classic(
                previous_query,
                self.relational.table_name,
                block.layer_index,
            )
        return templates.activate(
            forward,
            block.activation,
            self.options.native_activation_functions,
            carry_layer=not self.options.optimized_node_ids,
        )

    def _lstm_prefix(self) -> str:
        block = self.relational.block("lstm_state")
        steps = self.relational.time_steps
        # Carried columns: the not-yet-consumed time steps (named after
        # their 1-based step index so nesting levels stay readable).
        carried_names = [f"x{step}" for step in range(2, steps + 1)]
        query = templates.lstm_first_step(
            self.fact_table,
            self.id_column,
            self.input_columns[0],
            carried_names,
            self.input_columns[1:],
            self.relational.table_name,
            block.first_node,
            block.last_node,
            block.activation,
            block.recurrent_activation,
            self.options.native_activation_functions,
        )
        for step in range(2, steps + 1):
            remaining = [f"x{later}" for later in range(step + 1, steps + 1)]
            query = templates.lstm_step(
                query,
                f"x{step}",
                remaining,
                self.relational.table_name,
                block.first_node,
                block.last_node,
                block.activation,
                block.recurrent_activation,
                self.options.native_activation_functions,
            )
        return templates.lstm_to_dense_bridge(query)

    def _output(self, previous_query: str) -> str:
        output_block = self.relational.forward_blocks()[-1]
        if self.options.optimized_node_ids:
            nodes = list(
                range(output_block.first_node, output_block.last_node + 1)
            )
        else:
            nodes = list(range(output_block.units))
        return templates.output_join(
            previous_query,
            self.fact_table,
            self.id_column,
            self.payload_columns,
            nodes,
            self.prediction_prefix,
        )


class MlToSqlModelJoin:
    """End-to-end ML-To-SQL runner: load model table, generate, execute.

    This is the framework's "simple API" (paper Section 4): given a
    trained model and a database connection, it creates the model table
    and performs inference with one generated SQL query.
    """

    def __init__(
        self,
        database: Database,
        model: Sequential,
        options: MlToSqlOptions | None = None,
        model_table: str = "model_table",
    ):
        self.database = database
        self.model = model
        self.options = options or MlToSqlOptions()
        self.relational = build_relational_model(model, self.options)
        load_model_table(
            database, model_table, self.relational, replace=True
        )

    def generator(
        self,
        fact_table: str,
        id_column: str,
        input_columns: list[str],
        payload_columns: list[str] | None = None,
    ) -> SqlGenerator:
        return SqlGenerator(
            self.relational,
            fact_table,
            id_column,
            input_columns,
            payload_columns,
        )

    def predict(
        self,
        fact_table: str,
        id_column: str,
        input_columns: list[str],
        parallel: bool = False,
    ) -> np.ndarray:
        """Inference results ordered by the fact table's unique ID."""
        result = self.execute(
            fact_table, id_column, input_columns, parallel=parallel
        )
        order = np.argsort(result.column(id_column), kind="stable")
        columns = [
            result.column(f"prediction_{index}")[order]
            for index in range(self.relational.output_width)
        ]
        return np.column_stack(columns)

    def execute(
        self,
        fact_table: str,
        id_column: str,
        input_columns: list[str],
        payload_columns: list[str] | None = None,
        parallel: bool = False,
    ) -> Result:
        query = self.generator(
            fact_table, id_column, input_columns, payload_columns
        ).inference_query()
        return self.database.execute(query, parallel=parallel)
