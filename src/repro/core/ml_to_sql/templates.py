"""SQL templates for the ML-To-SQL building blocks (paper Table 1).

Every template returns SQL text; the generator nests them into the one
big inference query of Listing 1::

    ModelJoin := Output(Activate(Layer_forward(... Input(R, model) ...)))

Activation functions can be emitted either through the engine's native
``SIGMOID``/``TANH``/``RELU`` functions, or as *portable* standard SQL
(arithmetic + CASE) that runs on any SQL-compliant system — the
portability the paper claims for this approach.
"""

from __future__ import annotations

from repro.errors import UnsupportedModelError


def activation_sql(
    activation: str, column: str, native_functions: bool
) -> str:
    """SQL expression applying *activation* to *column* (§4.3.5)."""
    if activation == "linear":
        return column
    if native_functions:
        native = {"relu": "RELU", "sigmoid": "SIGMOID", "tanh": "TANH"}
        if activation in native:
            return f"{native[activation]}({column})"
    if activation == "relu":
        return f"CASE WHEN {column} > 0 THEN {column} ELSE 0.0 END"
    if activation == "sigmoid":
        return f"1.0 / (1.0 + EXP(-({column})))"
    if activation == "tanh":
        return (
            f"(EXP(2.0 * ({column})) - 1.0) / (EXP(2.0 * ({column})) + 1.0)"
        )
    raise UnsupportedModelError(
        f"no SQL template for activation {activation!r}"
    )


def node_range_predicate(alias: str, low: int, high: int) -> str:
    """Range predicate on the node id (prunable via zone maps, §4.4)."""
    return f"{alias}.node >= {low} AND {alias}.node <= {high}"


# ----------------------------------------------------------------------
# input functions (paper §4.3.1, Listings 2 and 3)
# ----------------------------------------------------------------------
def dense_input_optimized(
    fact_table: str,
    id_column: str,
    input_columns: list[str],
    model_table: str,
    first_node: int,
) -> str:
    """Listing 3 with unique node ids: cross join + CASE column switch."""
    renames = ", ".join(
        f"d.{column} AS c{index}"
        for index, column in enumerate(input_columns)
    )
    branches = " ".join(
        f"WHEN node = {first_node + index} THEN c{index}"
        for index in range(len(input_columns))
    )
    high = first_node + len(input_columns) - 1
    return (
        f"SELECT id, node, CASE {branches} END AS output_activated "
        f"FROM (SELECT d.{id_column} AS id, {renames}, m.node AS node "
        f"FROM {fact_table} AS d, {model_table} AS m "
        f"WHERE m.node_in = -1 AND "
        f"{node_range_predicate('m', first_node, high)}) AS t"
    )


def dense_input_classic(
    fact_table: str,
    id_column: str,
    input_columns: list[str],
    model_table: str,
    input_layer: int,
) -> str:
    """Listing 3 verbatim: (Layer, Node) addressing."""
    renames = ", ".join(
        f"d.{column} AS c{index}"
        for index, column in enumerate(input_columns)
    )
    branches = " ".join(
        f"WHEN node = {index} THEN c{index}"
        for index in range(len(input_columns))
    )
    return (
        f"SELECT id, layer, node, CASE {branches} END AS output_activated "
        f"FROM (SELECT d.{id_column} AS id, {renames}, "
        f"m.layer AS layer, m.node AS node "
        f"FROM {fact_table} AS d, {model_table} AS m "
        f"WHERE m.layer_in = -1 AND m.layer = {input_layer}) AS t"
    )


# ----------------------------------------------------------------------
# dense layer forward (paper §4.3.2, Listing 4)
# ----------------------------------------------------------------------
def dense_forward_optimized(
    previous_query: str,
    model_table: str,
    first_node: int,
    last_node: int,
) -> str:
    """Listing 4 with the §4.4 optimizations: one-column join plus a
    node-range filter instead of the (Layer, Node) pair."""
    return (
        "SELECT id, node, s + bias AS output FROM ("
        "SELECT t.id AS id, m.node AS node, "
        "SUM(t.output_activated * m.w_i) AS s, m.b_i AS bias "
        f"FROM ({previous_query}) AS t, {model_table} AS m "
        f"WHERE t.node = m.node_in AND "
        f"{node_range_predicate('m', first_node, last_node)} "
        "GROUP BY t.id, m.node, m.b_i) AS q"
    )


def dense_forward_classic(
    previous_query: str, model_table: str, layer: int
) -> str:
    """Listing 4 verbatim: pair join plus a Layer filter."""
    return (
        "SELECT id, layer, node, s + bias AS output FROM ("
        "SELECT t.id AS id, m.layer AS layer, m.node AS node, "
        "SUM(t.output_activated * m.w_i) AS s, m.b_i AS bias "
        f"FROM ({previous_query}) AS t, {model_table} AS m "
        "WHERE t.node = m.node_in AND t.layer = m.layer_in "
        f"AND m.layer = {layer} "
        "GROUP BY t.id, m.layer, m.node, m.b_i) AS q"
    )


def activate(
    previous_query: str,
    activation: str,
    native_functions: bool,
    carry_layer: bool,
) -> str:
    """Activation function: projection over the layer-forward output."""
    expression = activation_sql(activation, "output", native_functions)
    layer_column = "layer, " if carry_layer else ""
    return (
        f"SELECT id, {layer_column}node, "
        f"{expression} AS output_activated "
        f"FROM ({previous_query}) AS a"
    )


# ----------------------------------------------------------------------
# LSTM steps (paper §4.3.3)
# ----------------------------------------------------------------------
#
# The model table stores the LSTM as ONE block of w state nodes with
# w*w recurrent edges (node_in -> node carrying U weights); the w
# diagonal self-edges (node_in == node) additionally carry the kernel
# weights W and the biases b — both matrices are stored exactly once,
# as required by §4.3.3.  Each time step is then a *single* pass over
# the previous step's result:
#
#   z_g(id, node) = SUM( h_prev * U_g
#                        + CASE WHEN self-edge THEN x_t * W_g + b_g END )
#   c_prev(id, node) = SUM( CASE WHEN self-edge THEN c END )
#
# grouped by (id, node).  This refines the paper's two-sublayer
# formulation, whose "backward edges" would make the generated nested
# query reference the previous step twice (doubling work per step);
# the relational representation and the per-step algebra (join the
# state with the model edges, aggregate per node, gate arithmetic) are
# unchanged.

_GATES = ("i", "f", "c", "o")


def _carry_select(carried: list[str], prefix: str) -> str:
    if not carried:
        return ""
    return ", " + ", ".join(f"{prefix}{name} AS {name}" for name in carried)


def lstm_first_step(
    fact_table: str,
    id_column: str,
    step_column: str,
    carried_columns: list[str],
    carried_sources: list[str],
    model_table: str,
    first_node: int,
    last_node: int,
    activation: str,
    recurrent_activation: str,
    native_functions: bool,
) -> str:
    """Time step 1: kernel-only (no recurrence, empty cell state)."""
    act = lambda column: activation_sql(  # noqa: E731 - local shorthand
        activation, column, native_functions
    )
    ract = lambda column: activation_sql(  # noqa: E731
        recurrent_activation, column, native_functions
    )
    carries_inner = "".join(
        f", d.{source} AS {name}"
        for source, name in zip(carried_sources, carried_columns)
    )
    carries_outer = _carry_select(carried_columns, "g.")
    x = f"d.{step_column}"
    return (
        f"SELECT g.id AS id, g.node AS node, "
        f"g.o * {act('g.c')} AS h, g.c AS c{carries_outer} FROM ("
        f"SELECT d.{id_column} AS id, m.node AS node, "
        f"{ract(f'{x} * m.w_i + m.b_i')} * "
        f"{act(f'{x} * m.w_c + m.b_c')} AS c, "
        f"{ract(f'{x} * m.w_o + m.b_o')} AS o"
        f"{carries_inner} "
        f"FROM {fact_table} AS d, {model_table} AS m "
        f"WHERE m.node_in = m.node AND "
        f"{node_range_predicate('m', first_node, last_node)}"
        f") AS g"
    )


def lstm_step(
    previous_query: str,
    step_column: str,
    carried_columns: list[str],
    model_table: str,
    first_node: int,
    last_node: int,
    activation: str,
    recurrent_activation: str,
    native_functions: bool,
) -> str:
    """Time step t >= 2: recurrence + kernel in one aggregation pass."""
    act = lambda column: activation_sql(  # noqa: E731
        activation, column, native_functions
    )
    ract = lambda column: activation_sql(  # noqa: E731
        recurrent_activation, column, native_functions
    )
    self_edge = "m.node_in = m.node"
    gate_sums = ", ".join(
        f"SUM(p.h * m.u_{gate} + CASE WHEN {self_edge} "
        f"THEN p.{step_column} * m.w_{gate} + m.b_{gate} "
        f"ELSE 0.0 END) AS z_{gate}"
        for gate in _GATES
    )
    carry_aggregates = "".join(
        f", MAX(p.{name}) AS {name}" for name in carried_columns
    )
    carries_z = _carry_select(carried_columns, "z.")
    carries_g = _carry_select(carried_columns, "g.")
    return (
        f"SELECT g.id AS id, g.node AS node, "
        f"g.o * {act('g.c')} AS h, g.c AS c{carries_g} FROM ("
        f"SELECT z.id AS id, z.node AS node, "
        f"{ract('z.z_f')} * z.c_prev + "
        f"{ract('z.z_i')} * {act('z.z_c')} AS c, "
        f"{ract('z.z_o')} AS o{carries_z} FROM ("
        f"SELECT p.id AS id, m.node AS node, {gate_sums}, "
        f"SUM(CASE WHEN {self_edge} THEN p.c ELSE 0.0 END) AS c_prev"
        f"{carry_aggregates} "
        f"FROM ({previous_query}) AS p, {model_table} AS m "
        f"WHERE p.node = m.node_in AND "
        f"{node_range_predicate('m', first_node, last_node)} "
        f"GROUP BY p.id, m.node"
        f") AS z"
        f") AS g"
    )


def lstm_to_dense_bridge(previous_query: str) -> str:
    """Expose the final hidden state under the dense-path column name."""
    return (
        "SELECT id, node, h AS output_activated "
        f"FROM ({previous_query}) AS b"
    )


# ----------------------------------------------------------------------
# output function (paper §4.3.4): the "late projection" join
# ----------------------------------------------------------------------
def output_join(
    previous_query: str,
    fact_table: str,
    id_column: str,
    payload_columns: list[str],
    output_nodes: list[int],
    prediction_prefix: str,
    node_column_available: bool = True,
) -> str:
    """Join predictions back to the fact tuples on the unique ID.

    One join per output node, each filtered on the Node column — for
    the single-output models of the paper's evaluation this collapses
    to one join and a rename (§4.3.4).
    """
    payload = ", ".join(
        [f"f.{id_column} AS {id_column}"]
        + [f"f.{column} AS {column}" for column in payload_columns]
    )
    if len(output_nodes) == 1:
        return (
            f"SELECT {payload}, r.output_activated AS "
            f"{prediction_prefix}_0 "
            f"FROM {fact_table} AS f, ({previous_query}) AS r "
            f"WHERE f.{id_column} = r.id"
        )
    selects = [payload]
    froms = [f"{fact_table} AS f"]
    conditions = []
    for index, node in enumerate(output_nodes):
        alias = f"r{index}"
        selects.append(
            f"{alias}.output_activated AS {prediction_prefix}_{index}"
        )
        froms.append(f"({previous_query}) AS {alias}")
        conditions.append(f"f.{id_column} = {alias}.id")
        if node_column_available:
            conditions.append(f"{alias}.node = {node}")
    return (
        f"SELECT {', '.join(selects)} FROM {', '.join(froms)} "
        f"WHERE {' AND '.join(conditions)}"
    )
