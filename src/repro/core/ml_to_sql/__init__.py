"""ML-To-SQL: relational model representation and SQL generation.

The framework of paper Section 4: a trained model is loaded into a
single 16-column relational table (one row per edge of the network
graph), and inference over a fact table is expressed as one nested SQL
query built from four generic building blocks — input, layer-forward,
activation and output functions (Table 1, Listing 1).
"""

from repro.core.ml_to_sql.representation import (
    MlToSqlOptions,
    RelationalModel,
    build_relational_model,
    model_table_schema,
)
from repro.core.ml_to_sql.loader import (
    insert_statements,
    load_model_table,
)
from repro.core.ml_to_sql.generator import SqlGenerator

__all__ = [
    "MlToSqlOptions",
    "RelationalModel",
    "build_relational_model",
    "model_table_schema",
    "insert_statements",
    "load_model_table",
    "SqlGenerator",
]
