"""Loading a model into its relational table.

The framework "generates SQL code to automatically load a Python model
object into the relational table representation" (Section 4.1):
:func:`insert_statements` yields exactly those ``CREATE TABLE`` /
``INSERT`` statements.  :func:`load_model_table` is the fast path that
creates the table through the engine API and bulk-appends the rows —
both paths produce identical tables (tested).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.ml_to_sql.representation import (
    MlToSqlOptions,
    RelationalModel,
    build_relational_model,
    model_table_schema,
)
from repro.db.engine import Database
from repro.db.types import SqlType
from repro.nn.model import Sequential


def _create_table_sql(
    relational: RelationalModel, table_name: str
) -> str:
    schema = model_table_schema(relational.options)
    columns = ", ".join(
        f"{column.name} {'INTEGER' if column.sql_type is SqlType.INTEGER else 'FLOAT'}"
        for column in schema
    )
    suffix = ""
    if relational.options.sort_tables:
        suffix = " SORTED BY (node)"
    if relational.options.model_table_partitions > 1:
        suffix += (
            f" PARTITIONS {relational.options.model_table_partitions}"
        )
    return f"CREATE TABLE {table_name} ({columns}){suffix}"


def _format_value(value: object) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def insert_statements(
    relational: RelationalModel,
    table_name: str,
    rows_per_statement: int = 256,
) -> Iterator[str]:
    """Yield the DDL + INSERT statements that load the model table."""
    yield _create_table_sql(relational, table_name)
    rows = _sorted_rows(relational)
    for start in range(0, len(rows), rows_per_statement):
        chunk = rows[start : start + rows_per_statement]
        values = ", ".join(
            "(" + ", ".join(_format_value(value) for value in row) + ")"
            for row in chunk
        )
        yield f"INSERT INTO {table_name} VALUES {values}"


def _sorted_rows(relational: RelationalModel) -> list[tuple]:
    """Rows in (node, node_in) order, so node-range pruning is tight."""
    schema = model_table_schema(relational.options)
    node_position = schema.position_of("node")
    node_in_position = schema.position_of("node_in")
    return sorted(
        relational.rows,
        key=lambda row: (row[node_position], row[node_in_position]),
    )


def load_model_table(
    database: Database,
    table_name: str,
    model: Sequential | RelationalModel,
    options: MlToSqlOptions | None = None,
    use_insert_statements: bool = False,
    replace: bool = False,
) -> RelationalModel:
    """Create and fill the model table; returns the layout handle.

    ``use_insert_statements=True`` goes through the generated SQL text
    (the portable path a real deployment would use); the default bulk
    path loads through the table API and is much faster.
    """
    if isinstance(model, RelationalModel):
        relational = model
    else:
        relational = build_relational_model(model, options)
    if replace and database.catalog.has_table(table_name):
        database.execute(f"DROP TABLE {table_name}")
    if use_insert_statements:
        for statement in insert_statements(relational, table_name):
            database.execute(statement)
    else:
        database.execute(_create_table_sql(relational, table_name))
        database.table(table_name).append_rows(_sorted_rows(relational))
    relational.table_name = table_name
    return relational
