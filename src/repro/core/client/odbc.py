"""Simulated ODBC data transfer.

The paper's TF(Python) baseline moves data from the database to the
Python client over ODBC.  On a loopback connection the dominating cost
is per-row serialization, so this simulation *really* serializes: each
result row is packed with :mod:`struct` into a wire buffer and unpacked
again on the "client" side — an honest per-value CPU cost, not a sleep.
An optional bandwidth model additionally accounts (without sleeping)
the seconds a remote link of the given speed would add; the reported
baseline times include it only when a bandwidth is configured.

Transfers are the one part of the stack that crosses a (simulated)
process boundary, so they carry their own resilience: each fetch or
upload is retried with jittered exponential backoff on transient
failures (connection resets, injected ``odbc.fetch`` faults), bounded
by ``max_retries`` and an optional wall-clock ``timeout_seconds``.
"""

from __future__ import annotations

import random
import struct
import time
from dataclasses import dataclass, field

import numpy as np

from repro.db import faults
from repro.db.engine import Database
from repro.db.resilience import backoff_seconds
from repro.db.schema import Schema
from repro.db.types import SqlType
from repro.errors import ExecutionError, InjectedFaultError, QueryTimeoutError

#: exception types a transfer attempt may recover from by retrying
TRANSIENT_ERRORS = (InjectedFaultError, ConnectionError, TimeoutError)


@dataclass
class TransferStats:
    """Accounting of one ODBC fetch."""

    rows: int = 0
    bytes_on_wire: int = 0
    serialize_seconds: float = 0.0
    modeled_wire_seconds: float = 0.0
    attempts: int = 1
    retries: int = 0


_PACK_CODES = {
    SqlType.INTEGER: "q",
    SqlType.FLOAT: "f",
    SqlType.DOUBLE: "d",
    SqlType.BOOLEAN: "?",
}


@dataclass
class OdbcConnection:
    """A client-side connection that fetches query results by value.

    ``bandwidth_bytes_per_second=None`` models a loopback connection
    (the paper's setup: client and server on the same machine); a
    finite bandwidth accounts the extra wire time a remote client
    would see — "moving large datasets from a database server to a
    separate machine ... would further decrease the performance of the
    Tensorflow variant" (Section 6.2.1).

    ``timeout_seconds`` bounds one logical transfer including all its
    retry attempts; when it expires mid-retry the transfer raises
    :class:`~repro.errors.QueryTimeoutError` instead of retrying again.
    """

    database: Database
    bandwidth_bytes_per_second: float | None = None
    last_stats: TransferStats = field(default_factory=TransferStats)
    timeout_seconds: float | None = None
    max_retries: int = 3
    retry_backoff_seconds: float = 0.01

    # ------------------------------------------------------------------
    # retry orchestration
    # ------------------------------------------------------------------
    def _run_with_retries(self, attempt):
        """Run one transfer attempt function until it succeeds.

        Transient failures (injected faults, connection resets, socket
        timeouts) are retried up to ``max_retries`` times with jittered
        exponential backoff; the attempt count lands in the returned
        :class:`TransferStats`.  A non-transient error propagates
        unchanged on the first attempt.
        """
        deadline = (
            time.perf_counter() + self.timeout_seconds
            if self.timeout_seconds is not None
            else None
        )
        attempts = 0
        while True:
            attempts += 1
            try:
                if faults.ACTIVE is not None:
                    faults.ACTIVE.fire("odbc.fetch")
                stats = attempt()
                break
            except TRANSIENT_ERRORS as error:
                if attempts > self.max_retries:
                    raise
                if deadline is not None and time.perf_counter() >= deadline:
                    raise QueryTimeoutError(
                        f"ODBC transfer exceeded {self.timeout_seconds}s "
                        f"after {attempts} attempt(s)"
                    ) from error
                pause = backoff_seconds(
                    attempts, base=self.retry_backoff_seconds
                )
                # Full jitter: desynchronizes concurrent clients that
                # failed at the same instant.
                time.sleep(random.uniform(0, pause))
        stats.attempts = attempts
        stats.retries = attempts - 1
        self.last_stats = stats
        return stats

    def fetch_arrays(self, sql: str) -> dict[str, np.ndarray]:
        """Run *sql* server-side and fetch the result to the client.

        Returns client-side NumPy arrays per column, after a real
        pack/unpack round trip per row.  Transient transfer failures
        are retried (see :meth:`_run_with_retries`).
        """
        out: dict = {}
        self._run_with_retries(lambda: self._fetch_once(sql, out))
        return out["arrays"]

    def _fetch_once(self, sql: str, out: dict) -> TransferStats:
        result = self.database.execute(sql)
        schema = result.schema
        row_format = "<" + "".join(
            _PACK_CODES.get(column.sql_type, "")
            for column in schema
        )
        if len(row_format) - 1 != len(schema):
            raise ExecutionError(
                "ODBC simulation supports numeric/boolean columns only"
            )
        packer = struct.Struct(row_format)
        started = time.perf_counter()
        # Server side: serialize each row onto the wire.
        wire = bytearray()
        rows = 0
        for batch in result.batches:
            for row in batch.to_rows():
                wire += packer.pack(*row)
                rows += 1
        # Client side: parse the wire format back into typed columns.
        columns: list[list] = [[] for _ in schema]
        for values in struct.iter_unpack(row_format, bytes(wire)):
            for slot, value in enumerate(values):
                columns[slot].append(value)
        serialize_seconds = time.perf_counter() - started
        out["arrays"] = self._to_arrays(schema, columns)
        stats = TransferStats(
            rows=rows,
            bytes_on_wire=len(wire),
            serialize_seconds=serialize_seconds,
        )
        if self.bandwidth_bytes_per_second:
            stats.modeled_wire_seconds = (
                len(wire) / self.bandwidth_bytes_per_second
            )
        return stats

    @staticmethod
    def _to_arrays(
        schema: Schema, columns: list[list]
    ) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {}
        for column, values in zip(schema, columns):
            arrays[column.name] = np.asarray(
                values, dtype=column.sql_type.numpy_dtype
            )
        return arrays

    def upload_arrays(
        self, table_name: str, arrays: dict[str, np.ndarray]
    ) -> TransferStats:
        """Ship client-side arrays back into a server table (row-wise).

        Retried like :meth:`fetch_arrays`; the row append happens last
        in an attempt, so a retried attempt never double-inserts.
        """
        return self._run_with_retries(
            lambda: self._upload_once(table_name, arrays)
        )

    def _upload_once(
        self, table_name: str, arrays: dict[str, np.ndarray]
    ) -> TransferStats:
        table = self.database.table(table_name)
        row_format = "<" + "".join(
            _PACK_CODES[column.sql_type] for column in table.schema
        )
        packer = struct.Struct(row_format)
        names = list(table.schema.names)
        started = time.perf_counter()
        wire = bytearray()
        rows = list(zip(*(arrays[name].tolist() for name in names)))
        for row in rows:
            wire += packer.pack(*row)
        unpacked = list(struct.iter_unpack(row_format, bytes(wire)))
        table.append_rows(unpacked)
        stats = TransferStats(
            rows=len(unpacked),
            bytes_on_wire=len(wire),
            serialize_seconds=time.perf_counter() - started,
        )
        if self.bandwidth_bytes_per_second:
            stats.modeled_wire_seconds = (
                len(wire) / self.bandwidth_bytes_per_second
            )
        return stats
