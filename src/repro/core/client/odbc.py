"""Simulated ODBC data transfer.

The paper's TF(Python) baseline moves data from the database to the
Python client over ODBC.  On a loopback connection the dominating cost
is per-row serialization, so this simulation *really* serializes: each
result row is packed with :mod:`struct` into a wire buffer and unpacked
again on the "client" side — an honest per-value CPU cost, not a sleep.
An optional bandwidth model additionally accounts (without sleeping)
the seconds a remote link of the given speed would add; the reported
baseline times include it only when a bandwidth is configured.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.db.engine import Database
from repro.db.schema import Schema
from repro.db.types import SqlType
from repro.errors import ExecutionError


@dataclass
class TransferStats:
    """Accounting of one ODBC fetch."""

    rows: int = 0
    bytes_on_wire: int = 0
    serialize_seconds: float = 0.0
    modeled_wire_seconds: float = 0.0


_PACK_CODES = {
    SqlType.INTEGER: "q",
    SqlType.FLOAT: "f",
    SqlType.DOUBLE: "d",
    SqlType.BOOLEAN: "?",
}


@dataclass
class OdbcConnection:
    """A client-side connection that fetches query results by value.

    ``bandwidth_bytes_per_second=None`` models a loopback connection
    (the paper's setup: client and server on the same machine); a
    finite bandwidth accounts the extra wire time a remote client
    would see — "moving large datasets from a database server to a
    separate machine ... would further decrease the performance of the
    Tensorflow variant" (Section 6.2.1).
    """

    database: Database
    bandwidth_bytes_per_second: float | None = None
    last_stats: TransferStats = field(default_factory=TransferStats)

    def fetch_arrays(self, sql: str) -> dict[str, np.ndarray]:
        """Run *sql* server-side and fetch the result to the client.

        Returns client-side NumPy arrays per column, after a real
        pack/unpack round trip per row.
        """
        import time

        result = self.database.execute(sql)
        schema = result.schema
        row_format = "<" + "".join(
            _PACK_CODES.get(column.sql_type, "")
            for column in schema
        )
        if len(row_format) - 1 != len(schema):
            raise ExecutionError(
                "ODBC simulation supports numeric/boolean columns only"
            )
        packer = struct.Struct(row_format)
        started = time.perf_counter()
        # Server side: serialize each row onto the wire.
        wire = bytearray()
        rows = 0
        for batch in result.batches:
            for row in batch.to_rows():
                wire += packer.pack(*row)
                rows += 1
        # Client side: parse the wire format back into typed columns.
        columns: list[list] = [[] for _ in schema]
        for values in struct.iter_unpack(row_format, bytes(wire)):
            for slot, value in enumerate(values):
                columns[slot].append(value)
        serialize_seconds = time.perf_counter() - started
        arrays = self._to_arrays(schema, columns)
        stats = TransferStats(
            rows=rows,
            bytes_on_wire=len(wire),
            serialize_seconds=serialize_seconds,
        )
        if self.bandwidth_bytes_per_second:
            stats.modeled_wire_seconds = (
                len(wire) / self.bandwidth_bytes_per_second
            )
        self.last_stats = stats
        return arrays

    @staticmethod
    def _to_arrays(
        schema: Schema, columns: list[list]
    ) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {}
        for column, values in zip(schema, columns):
            arrays[column.name] = np.asarray(
                values, dtype=column.sql_type.numpy_dtype
            )
        return arrays

    def upload_arrays(
        self, table_name: str, arrays: dict[str, np.ndarray]
    ) -> TransferStats:
        """Ship client-side arrays back into a server table (row-wise)."""
        import time

        table = self.database.table(table_name)
        row_format = "<" + "".join(
            _PACK_CODES[column.sql_type] for column in table.schema
        )
        packer = struct.Struct(row_format)
        names = list(table.schema.names)
        started = time.perf_counter()
        wire = bytearray()
        rows = list(zip(*(arrays[name].tolist() for name in names)))
        for row in rows:
            wire += packer.pack(*row)
        unpacked = list(struct.iter_unpack(row_format, bytes(wire)))
        table.append_rows(unpacked)
        stats = TransferStats(
            rows=len(unpacked),
            bytes_on_wire=len(wire),
            serialize_seconds=time.perf_counter() - started,
        )
        if self.bandwidth_bytes_per_second:
            stats.modeled_wire_seconds = (
                len(wire) / self.bandwidth_bytes_per_second
            )
        self.last_stats = stats
        return stats
