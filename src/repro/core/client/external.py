"""External-Python inference baseline (TF(Python) / TF(GPU)).

Fetches the fact table over the simulated ODBC link and runs inference
in the "client" Python environment, using the ML runtime directly —
on the host CPU or on the simulated GPU.  Measurements include data
movement and classification runtime, exactly as in the paper's setup
(Section 6.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.client.odbc import OdbcConnection, TransferStats
from repro.db.engine import Database
from repro.device.base import Device, DeviceWindow
from repro.nn.model import Sequential
from repro.nn.runtime import InferenceSession, TensorBuffer


@dataclass
class ExternalRunReport:
    """Timing breakdown of one external inference run."""

    predictions: np.ndarray
    transfer: TransferStats
    fetch_seconds: float
    inference_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.fetch_seconds
            + self.inference_seconds
            + self.transfer.modeled_wire_seconds
        )


class ExternalInference:
    """The move-data-out baseline."""

    def __init__(
        self,
        database: Database,
        model: Sequential,
        device: Device | None = None,
        bandwidth_bytes_per_second: float | None = None,
    ):
        self.connection = OdbcConnection(
            database, bandwidth_bytes_per_second
        )
        self.model = model
        self.device = device
        self.session = InferenceSession(model, device)

    def run(
        self,
        fact_table: str,
        id_column: str,
        input_columns: list[str],
        batch_size: int = 1024,
    ) -> ExternalRunReport:
        """Fetch the data, classify it client-side, report timings.

        Inference runs in client batches (the framework's batch size),
        like ``model.predict(..., batch_size=...)`` would.
        """
        columns = ", ".join([id_column] + list(input_columns))
        started = time.perf_counter()
        arrays = self.connection.fetch_arrays(
            f"SELECT {columns} FROM {fact_table}"
        )
        fetch_seconds = time.perf_counter() - started
        matrix = np.column_stack(
            [
                arrays[name].astype(np.float32)
                for name in input_columns
            ]
        )
        outputs = []
        window_device = self.device or self.session.device
        with DeviceWindow(window_device) as window:
            for start in range(0, len(matrix), batch_size):
                chunk = np.ascontiguousarray(
                    matrix[start : start + batch_size]
                )
                outputs.append(self.session.run(TensorBuffer(chunk)).array)
        inference_seconds = window.seconds
        predictions = (
            np.concatenate(outputs)
            if outputs
            else np.empty((0, self.model.output_width), np.float32)
        )
        order = np.argsort(arrays[id_column], kind="stable")
        return ExternalRunReport(
            predictions=predictions[order],
            transfer=self.connection.last_stats,
            fetch_seconds=fetch_seconds,
            inference_seconds=inference_seconds,
        )
