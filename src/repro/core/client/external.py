"""External-Python inference baseline (TF(Python) / TF(GPU)).

Fetches the fact table over the simulated ODBC link and runs inference
in the "client" Python environment, using the ML runtime directly —
on the host CPU or on the simulated GPU.  Measurements include data
movement and classification runtime, exactly as in the paper's setup
(Section 6.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.client.odbc import OdbcConnection, TransferStats
from repro.db.engine import Database
from repro.device.base import Device, DeviceWindow
from repro.errors import InjectedFaultError, QueryTimeoutError
from repro.nn.model import Sequential
from repro.nn.runtime import InferenceSession, TensorBuffer


@dataclass
class ExternalRunReport:
    """Timing breakdown of one external inference run."""

    predictions: np.ndarray
    transfer: TransferStats
    fetch_seconds: float
    inference_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.fetch_seconds
            + self.inference_seconds
            + self.transfer.modeled_wire_seconds
        )


class ExternalInference:
    """The move-data-out baseline."""

    def __init__(
        self,
        database: Database,
        model: Sequential,
        device: Device | None = None,
        bandwidth_bytes_per_second: float | None = None,
    ):
        self.connection = OdbcConnection(
            database, bandwidth_bytes_per_second
        )
        self.model = model
        self.device = device
        self.session = InferenceSession(model, device)
        #: True when the last run fell back to an in-engine fetch after
        #: the ODBC transfer failed all its retries
        self.degraded = False

    def _fetch(self, sql: str, column_names: list[str]):
        """Fetch over ODBC; degrade to an in-engine fetch on failure.

        The ODBC layer already retries transient failures with backoff;
        if the link is still down after that, the baseline degrades to
        reading the columns straight out of the engine (no wire
        round-trip) rather than failing the run — the transfer-variant
        leg of the fallback chain.
        """
        try:
            arrays = self.connection.fetch_arrays(sql)
            self.degraded = False
            return arrays
        except (InjectedFaultError, QueryTimeoutError):
            database = self.connection.database
            result = database.execute(sql)
            self.degraded = True
            self.connection.last_stats = TransferStats(
                rows=result.row_count,
                attempts=self.connection.max_retries + 1,
                retries=self.connection.max_retries,
            )
            metrics = database.metrics
            metrics.counter("fallback.engaged").increment()
            metrics.counter("fallback.transfer").increment()
            database.tracer.instant(
                "fallback",
                category="fallback",
                args={"kind": "transfer", "note": "odbc->in-engine fetch"},
            )
            return {name: result.column(name) for name in column_names}

    def run(
        self,
        fact_table: str,
        id_column: str,
        input_columns: list[str],
        batch_size: int = 1024,
    ) -> ExternalRunReport:
        """Fetch the data, classify it client-side, report timings.

        Inference runs in client batches (the framework's batch size),
        like ``model.predict(..., batch_size=...)`` would.
        """
        column_names = [id_column] + list(input_columns)
        columns = ", ".join(column_names)
        started = time.perf_counter()
        arrays = self._fetch(
            f"SELECT {columns} FROM {fact_table}", column_names
        )
        fetch_seconds = time.perf_counter() - started
        matrix = np.column_stack(
            [
                arrays[name].astype(np.float32)
                for name in input_columns
            ]
        )
        outputs = []
        window_device = self.device or self.session.device
        with DeviceWindow(window_device) as window:
            for start in range(0, len(matrix), batch_size):
                chunk = np.ascontiguousarray(
                    matrix[start : start + batch_size]
                )
                outputs.append(self.session.run(TensorBuffer(chunk)).array)
        inference_seconds = window.seconds
        predictions = (
            np.concatenate(outputs)
            if outputs
            else np.empty((0, self.model.output_width), np.float32)
        )
        order = np.argsort(arrays[id_column], kind="stable")
        return ExternalRunReport(
            predictions=predictions[order],
            transfer=self.connection.last_stats,
            fetch_seconds=fetch_seconds,
            inference_seconds=inference_seconds,
        )
