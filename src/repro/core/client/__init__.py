"""The baseline: pull data out of the DBMS and infer in Python.

Approach (0) of the evaluation — TF(Python): data leaves the database
over a (simulated) ODBC connection, inference happens in an external
Python environment, and the per-row marshalling of the transfer is what
dominates (paper Section 6.2.1).
"""

from repro.core.client.odbc import OdbcConnection, TransferStats
from repro.core.client.external import ExternalInference

__all__ = ["OdbcConnection", "TransferStats", "ExternalInference"]
