"""Variant-level fallback chain for in-database inference.

The paper evaluates several interchangeable inference approaches
(native ModelJoin on CPU or GPU, ML-To-SQL, runtime API, external
Python).  Because they compute the same function, a failing variant can
be *substituted* instead of failing the query — the robustness
counterpart of the paper's performance comparison.

:class:`ResilientModelJoin` runs the preferred variant and degrades
along the optimizer's ranked variant list when it fails:

1. native ModelJoin on the preferred device (skipped up front when the
   device's circuit breaker is open from earlier failures);
2. the remaining usable variants — native host CPU (when the preferred
   device is a GPU; bit-exact, same NumPy kernels), runtime API and
   ML-To-SQL — ordered cheapest-first by the database's cost-based
   variant selector (see :mod:`repro.core.cost.selector`); without a
   selector the legacy fixed order applies.

Query deadlines are honored across the chain: a
:class:`~repro.errors.QueryTimeoutError` aborts immediately (trying a
slower variant cannot beat a deadline the fast one already missed).
When every variant fails, :class:`~repro.errors.FallbackExhaustedError`
is raised with the last variant's error as its cause.
"""

from __future__ import annotations

import numpy as np

from repro.core.modeljoin.runner import NativeModelJoin
from repro.db.engine import Database
from repro.db.resilience import breaker_for
from repro.device.base import Device
from repro.device.host import HostDevice
from repro.errors import FallbackExhaustedError, QueryTimeoutError
from repro.nn.model import Sequential


class ResilientModelJoin:
    """Inference with automatic variant fallback.

    Parameters: *model_name* is the registered native model; *model*
    (the trained :class:`Sequential`) additionally enables the
    ML-To-SQL leg of the chain, which regenerates its model table from
    the network itself.  ``engaged`` records the fallback steps of the
    last :meth:`predict` call.

    Compiled-kernel failures are handled one layer below this chain:
    when a generated pipeline kernel raises, the engine catches
    :class:`~repro.errors.CompiledKernelError`, records a failure on
    its compile circuit breaker, and transparently re-executes the
    statement interpreted (``use_compiled_kernels=False``) — so the
    legs here never see a compiled-path error, only genuine variant
    failures.
    """

    def __init__(
        self,
        database: Database,
        model_name: str,
        model: Sequential | None = None,
        device: Device | None = None,
        enable_mltosql: bool = True,
        enable_runtime_api: bool = True,
        replicate_bias: bool = True,
    ):
        self.database = database
        self.model_name = model_name
        self.model = model
        self.device = device or HostDevice()
        self.enable_mltosql = enable_mltosql
        self.enable_runtime_api = enable_runtime_api
        self.replicate_bias = replicate_bias
        self.engaged: list[str] = []
        self._mltosql = None

    # ------------------------------------------------------------------
    # chain construction
    # ------------------------------------------------------------------
    def _variants(self, tuples: int | None = None):
        """(name, runner) pairs in degradation order for this call.

        The preferred device stays first (it is what the caller asked
        for); every *fallback* leg behind it is ordered by the
        database's cost-based variant selector — the optimizer's
        ranked variant list doubles as the degradation chain.
        """
        chain = []
        breaker = breaker_for(self.device)
        if not (self.device.is_gpu and breaker.is_open):
            chain.append((f"native-{self.device.name}", self.device))
        else:
            self._note(
                "circuit-breaker",
                f"skipping {self.device.name}: breaker open",
            )
        fallbacks: dict[str, tuple[str, object]] = {}
        if self.device.is_gpu:
            fallbacks["native-cpu"] = ("native-cpu", HostDevice())
        if self.enable_runtime_api and self.model is not None:
            fallbacks["runtime-api"] = ("runtime-api", "runtime-api")
        if self.enable_mltosql and self.model is not None:
            fallbacks["ml-to-sql"] = ("ml-to-sql", None)
        chain.extend(
            fallbacks[name]
            for name in self._fallback_order(list(fallbacks), tuples)
        )
        return chain

    def _fallback_order(
        self, names: list[str], tuples: int | None
    ) -> list[str]:
        selector = getattr(self.database, "variant_selector", None)
        if selector is None or not names:
            return names
        try:
            metadata = self.database.catalog.model(self.model_name)
            ranked = [
                estimate.variant
                for estimate in selector.rank(metadata, tuples or 1)
            ]
        except Exception:
            return names
        ordered = [name for name in ranked if name in names]
        ordered.extend(name for name in names if name not in ordered)
        return ordered

    def _mltosql_runner(self):
        if self._mltosql is None:
            from repro.core.ml_to_sql.generator import MlToSqlModelJoin

            self._mltosql = MlToSqlModelJoin(
                self.database,
                self.model,
                model_table=f"{self.model_name}_fallback_mlsql",
            )
        return self._mltosql

    def _note(self, kind: str, note: str) -> None:
        self.engaged.append(note)
        metrics = self.database.metrics
        metrics.counter("fallback.engaged").increment()
        metrics.counter(f"fallback.{kind}").increment()
        self.database.tracer.instant(
            "fallback",
            category="fallback",
            args={"kind": kind, "note": note},
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def predict(
        self,
        fact_table: str,
        id_column: str,
        input_columns: list[str],
        parallel: bool = False,
        timeout_seconds: float | None = None,
    ) -> np.ndarray:
        """Predictions ordered by ID, surviving variant failures."""
        self.engaged = []
        try:
            tuples = self.database.table(fact_table).row_count
        except Exception:
            tuples = None
        chain = self._variants(tuples)
        if not chain:
            raise FallbackExhaustedError(
                f"no usable inference variant for model "
                f"'{self.model_name}' (circuit breaker open and no "
                "fallback enabled)"
            )
        last_error: BaseException | None = None
        for position, (name, device) in enumerate(chain):
            try:
                if device is None:
                    result = self._mltosql_runner().predict(
                        fact_table,
                        id_column,
                        input_columns,
                        parallel=parallel,
                    )
                elif device == "runtime-api":
                    from repro.core.runtime_api.runner import (
                        RuntimeApiModelJoin,
                    )

                    runner = RuntimeApiModelJoin(
                        self.database, self.model
                    )
                    result = runner.predict(
                        fact_table,
                        id_column,
                        input_columns=input_columns,
                        parallel=parallel,
                        timeout_seconds=timeout_seconds,
                    )
                else:
                    runner = NativeModelJoin(
                        self.database,
                        self.model_name,
                        device=device,
                        replicate_bias=self.replicate_bias,
                    )
                    result = runner.predict(
                        fact_table,
                        id_column,
                        input_columns=input_columns,
                        parallel=parallel,
                        timeout_seconds=timeout_seconds,
                    )
                if isinstance(device, Device) and device.is_gpu:
                    breaker_for(device).record_success()
                return result
            except QueryTimeoutError:
                # A slower variant cannot rescue a missed deadline.
                raise
            except Exception as error:
                last_error = error
                if isinstance(device, Device) and device.is_gpu:
                    breaker_for(device).record_failure()
                if position + 1 < len(chain):
                    next_name = chain[position + 1][0]
                    self._note("variant", f"{name}->{next_name}")
        raise FallbackExhaustedError(
            f"all {len(chain)} inference variant(s) failed for model "
            f"'{self.model_name}'; last: {type(last_error).__name__}: "
            f"{last_error}"
        ) from last_error
