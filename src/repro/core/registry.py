"""Publishing models into the database catalog (paper Section 5.5).

:func:`publish_model` loads a trained model into its relational model
table *and* registers the semantic metadata (layer dimensions, types,
activations) in the catalog, making the DBMS aware that the table is a
model.  After publishing, both the native operator API and the
``SELECT ... FROM t MODEL JOIN name`` syntax can use the model by name.
"""

from __future__ import annotations

from repro.core.ml_to_sql.loader import load_model_table
from repro.core.ml_to_sql.representation import (
    MlToSqlOptions,
    build_relational_model,
)
from repro.db.catalog import LayerMetadata, ModelMetadata
from repro.db.engine import Database
from repro.errors import UnsupportedModelError
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential


def model_metadata(
    model_name: str, table_name: str, model: Sequential
) -> ModelMetadata:
    """Catalog metadata describing *model* stored in *table_name*."""
    layers = []
    for layer in model.layers:
        if isinstance(layer, Lstm):
            layers.append(
                LayerMetadata(
                    "lstm",
                    layer.units,
                    layer.activation.name,
                    time_steps=model.time_steps,
                )
            )
        elif isinstance(layer, Dense):
            layers.append(
                LayerMetadata("dense", layer.units, layer.activation.name)
            )
        else:  # pragma: no cover - closed layer set
            raise UnsupportedModelError(
                f"cannot register layer type {layer.layer_type}"
            )
    return ModelMetadata(
        model_name=model_name,
        table_name=table_name,
        input_width=model.input_width,
        layers=tuple(layers),
    )


def publish_model(
    database: Database,
    model_name: str,
    model: Sequential,
    table_name: str | None = None,
    options: MlToSqlOptions | None = None,
    model_table_partitions: int | None = None,
    replace: bool = False,
) -> ModelMetadata:
    """Load the model table and register the model in the catalog.

    The native ModelJoin operator requires the optimized node-id
    scheme, which is the default.  With *model_table_partitions* > 1
    the parallel build phase splits the table across the execution
    threads (Section 5.2).
    """
    options = options or MlToSqlOptions()
    if not options.optimized_node_ids:
        raise UnsupportedModelError(
            "the native ModelJoin requires the optimized node-id scheme"
        )
    if model_table_partitions is not None:
        options = MlToSqlOptions(
            optimized_node_ids=options.optimized_node_ids,
            native_activation_functions=options.native_activation_functions,
            sort_tables=options.sort_tables,
            model_table_partitions=model_table_partitions,
        )
    table_name = table_name or f"{model_name}_table"
    relational = build_relational_model(model, options)
    load_model_table(database, table_name, relational, replace=replace)
    metadata = model_metadata(model_name, table_name, model)
    database.register_model(metadata, replace=replace)
    return metadata
