"""Direct execution of the native ModelJoin (bench + API convenience).

Builds the minimal physical plan — partition scan of the fact table
feeding the ModelJoin operator — one pipeline per partition, exactly
the shape the engine's parallel executor would produce for
``SELECT * FROM fact MODEL JOIN m``, without the SQL layer in the
measured path.
"""

from __future__ import annotations

import numpy as np

from repro.core.modeljoin.operator import ModelJoinOperator
from repro.db.catalog import ModelMetadata
from repro.db.engine import Database
from repro.db.operators import ExecutionContext, TableScan
from repro.db.parallel import run_plans
from repro.db.profiler import QueryProfile, finalize_profile
from repro.db.resilience import CancellationToken
from repro.db.vector import VectorBatch
from repro.device.base import Device, DeviceWindow
from repro.device.host import HostDevice


class NativeModelJoin:
    """Runs a registered model with the native operator."""

    def __init__(
        self,
        database: Database,
        model_name: str,
        device: Device | None = None,
        replicate_bias: bool = True,
    ):
        self.database = database
        self.metadata: ModelMetadata = database.catalog.model(model_name)
        #: with no explicit device the cost-based variant selector picks
        #: between the in-plan native variants per executed workload
        self._auto_device = device is None
        self.device = device or HostDevice()
        self.replicate_bias = replicate_bias
        self.last_profile: QueryProfile | None = None
        self.last_seconds: float = 0.0
        self.last_plans: list[ModelJoinOperator] = []

    def _device_from_selector(self, tuples: int) -> Device | None:
        """With no explicit device, let the database's cost-based
        variant selector pick between the in-plan native variants."""
        selector = getattr(self.database, "variant_selector", None)
        if selector is None:
            return None
        try:
            estimates = selector.rank(self.metadata, max(tuples, 1))
        except Exception:
            return None
        for estimate in estimates:
            if estimate.variant == "native-cpu":
                return HostDevice()
            if estimate.variant == "native-gpu":
                from repro.device.gpu import SimulatedGpu

                return SimulatedGpu()
        return None

    def execute(
        self,
        fact_table: str,
        input_columns: list[str] | None = None,
        parallel: bool = False,
        timeout_seconds: float | None = None,
    ) -> tuple[list[VectorBatch], ExecutionContext]:
        """Run the ModelJoin; returns output batches and the context."""
        table = self.database.table(fact_table)
        model_table = self.database.table(self.metadata.table_name)
        if self._auto_device:
            chosen = self._device_from_selector(table.row_count)
            if chosen is not None:
                self.device = chosen
        parallelism = (
            self.database.parallelism
            if parallel and self.database.parallelism > 1
            else 1
        )
        context: ExecutionContext = self.database._context(
            parallelism=parallelism
        )
        if timeout_seconds is not None:
            context.cancellation = CancellationToken.with_timeout(
                timeout_seconds
            )
        tracer = context.tracer

        def build(partition_index: int) -> ModelJoinOperator:
            scan_partition = (
                partition_index if parallelism > 1 else None
            )
            if scan_partition is not None and table.num_partitions == 1:
                scan_partition = None
            scan = TableScan(
                context, table, partition_index=scan_partition
            )
            return ModelJoinOperator(
                context,
                scan,
                self.metadata,
                model_table,
                input_columns=input_columns,
                device=self.device,
                partition_index=partition_index if parallelism > 1 else 0,
                replicate_bias=self.replicate_bias,
                model_cache=self.database.model_cache,
            )

        pool = self.database.worker_pool if parallelism > 1 else None
        with DeviceWindow(self.device) as window:
            with tracer.span(
                "query",
                category="query",
                args={
                    "kind": "native-modeljoin",
                    "model": self.metadata.model_name,
                    "parallel": parallelism > 1,
                },
            ):
                context.trace_parent = tracer.current_span_id()
                plans = [build(index) for index in range(parallelism)]
                self.last_plans = plans
                _, batches = run_plans(
                    plans,
                    pool=pool,
                    morsel_driven=True,
                    plan_builder=build,
                    retries=self.database.task_retries,
                )
        self.last_seconds = window.seconds
        profile = QueryProfile(
            wall_seconds=window.wall_seconds,
            memory=context.memory,
            stopwatch=context.stopwatch,
            counters=context.counters,
        )
        profile.rows_returned = sum(len(batch) for batch in batches)
        finalize_profile(profile, self.database.metrics)
        self.last_profile = profile
        return batches, context

    def predict(
        self,
        fact_table: str,
        id_column: str,
        input_columns: list[str] | None = None,
        parallel: bool = False,
        timeout_seconds: float | None = None,
    ) -> np.ndarray:
        """Predictions ordered by the fact table's unique ID."""
        batches, _ = self.execute(
            fact_table,
            input_columns=input_columns,
            parallel=parallel,
            timeout_seconds=timeout_seconds,
        )
        ids = np.concatenate([batch.column(id_column) for batch in batches])
        order = np.argsort(ids, kind="stable")
        outputs = []
        for index in range(self.metadata.output_width):
            column = np.concatenate(
                [batch.column(f"prediction_{index}") for batch in batches]
            )
            outputs.append(column[order])
        return np.column_stack(outputs)
