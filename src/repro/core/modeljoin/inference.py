"""Vectorized model inference (paper Section 5.4, Figure 7, Listing 5).

The inference phase receives a set of column vectors, packs them into a
``(rows, n)`` input matrix (each column copied exactly once), walks the
model layers through the BLAS-style device interface, and unpacks the
result matrix into output column vectors.

The bias-matrix replication optimization is honoured: when the builder
replicated each bias vector to ``(vector_size, units)``, the layer
forward starts from a copy of that matrix and lets ``sgemm`` accumulate
into it (``y := Ax + y``), turning many fine-grained bias additions
into one large copy (Section 5.4).
"""

from __future__ import annotations

import numpy as np

from repro.core.modeljoin.builder import (
    BuiltModel,
    DenseLayerWeights,
    LstmLayerWeights,
)
from repro.device.base import Device
from repro.errors import ModelJoinError


def pack_columns(columns: list[np.ndarray]) -> np.ndarray:
    """Copy input column vectors into a row-major (rows, n) matrix.

    Each column vector is touched exactly once (first step of Figure 7).
    """
    if not columns:
        raise ModelJoinError("inference needs at least one input column")
    rows = len(columns[0])
    matrix = np.empty((rows, len(columns)), dtype=np.float32)
    for index, column in enumerate(columns):
        matrix[:, index] = column.astype(np.float32, copy=False)
    return matrix


def unpack_columns(matrix: np.ndarray) -> list[np.ndarray]:
    """Break the result matrix back into column vectors (last step)."""
    return [
        np.ascontiguousarray(matrix[:, index])
        for index in range(matrix.shape[1])
    ]


class VectorizedInference:
    """Executes the layer-forward functions for one built model."""

    def __init__(self, built: BuiltModel, device: Device):
        self.built = built
        self.device = device

    def infer(self, input_matrix: np.ndarray) -> np.ndarray:
        """Run the model for a packed ``(rows, input_width)`` matrix.

        Returns the host-resident ``(rows, output_width)`` result.
        """
        if input_matrix.shape[1] != self.built.input_width:
            raise ModelJoinError(
                f"model expects {self.built.input_width} input columns, "
                f"got {input_matrix.shape[1]}"
            )
        device = self.device
        current = device.to_device(input_matrix)
        for layer in self.built.layers:
            if isinstance(layer, DenseLayerWeights):
                current = self._dense_forward(layer, current)
            else:
                current = self._lstm_forward(layer, current)
        return device.to_host(current)

    # ------------------------------------------------------------------
    # layer forward functions
    # ------------------------------------------------------------------
    def _bias_accumulator(
        self,
        bias: np.ndarray,
        bias_matrix: np.ndarray | None,
        rows: int,
    ) -> np.ndarray:
        """The ``y`` of ``y := Ax + y``: replicated bias rows."""
        if bias_matrix is not None:
            if rows > bias_matrix.shape[0]:
                raise ModelJoinError(
                    f"batch of {rows} rows exceeds the replicated bias "
                    f"matrix ({bias_matrix.shape[0]} rows); increase the "
                    "vector size the model was built for"
                )
            return bias_matrix[:rows]
        # Unreplicated fallback (the ablation case): broadcast add.
        return bias[np.newaxis, :]

    def _dense_forward(
        self, layer: DenseLayerWeights, current: np.ndarray
    ) -> np.ndarray:
        device = self.device
        accumulator = self._bias_accumulator(
            layer.bias, layer.bias_matrix, current.shape[0]
        )
        pre = device.gemm(current, layer.kernel, accumulate=accumulator)
        return device.activation(layer.activation, pre)

    def _lstm_forward(
        self, layer: LstmLayerWeights, sequence: np.ndarray
    ) -> np.ndarray:
        """Listing 5: the LSTM layer forward via BLAS primitives."""
        device = self.device
        rows = sequence.shape[0]
        features = layer.kernel.shape[0]
        steps = sequence.shape[1] // features
        if steps != layer.time_steps:
            raise ModelJoinError(
                f"LSTM built for {layer.time_steps} time steps, input "
                f"provides {steps}"
            )
        units = layer.units
        hidden: np.ndarray | None = None
        cell: np.ndarray | None = None
        for step in range(steps):
            x_t = np.ascontiguousarray(
                sequence[:, step * features : (step + 1) * features]
            )
            accumulator = self._bias_accumulator(
                layer.bias, layer.bias_matrix, rows
            )
            # z_x := x W + b (sger for the rank-1 scalar-series case).
            z = device.gemm(x_t, layer.kernel, accumulate=accumulator)
            if hidden is not None:
                # z_x := h U + z_x (sgemm accumulate).
                z = device.add(
                    z, device.gemm(hidden, layer.recurrent_kernel)
                )
            gate_i = device.activation(
                layer.recurrent_activation, z[:, :units]
            )
            gate_f = device.activation(
                layer.recurrent_activation, z[:, units : 2 * units]
            )
            candidate = device.activation(
                layer.activation, z[:, 2 * units : 3 * units]
            )
            gate_o = device.activation(
                layer.recurrent_activation, z[:, 3 * units :]
            )
            fresh = device.multiply(gate_i, candidate)  # vsMul
            if cell is None:
                cell = device.copy(fresh)
            else:
                cell = device.add(device.multiply(gate_f, cell), fresh)
            hidden = device.multiply(
                gate_o, device.activation(layer.activation, cell)
            )
        if hidden is None:
            raise ModelJoinError("LSTM with zero time steps")
        return hidden
