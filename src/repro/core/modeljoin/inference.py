"""Vectorized model inference (paper Section 5.4, Figure 7, Listing 5).

The inference phase receives a set of column vectors, packs them into a
``(rows, n)`` input matrix (each column copied exactly once), walks the
model layers through the BLAS-style device interface, and unpacks the
result matrix into output column vectors.

The bias-matrix replication optimization is honoured: when the builder
replicated each bias vector to ``(vector_size, units)``, the layer
forward starts from a copy of that matrix and lets ``sgemm`` accumulate
into it (``y := Ax + y``), turning many fine-grained bias additions
into one large copy (Section 5.4).

Because the operator runs the same forward for thousands of
execution vectors, per-vector heap churn is pure overhead: a
:class:`BufferArena` preallocates every workspace (packed input, layer
outputs, LSTM gate buffers) at the pipeline's vector size and the
forwards write into them through the device interface's ``out=``
contract.  The results are bit-exact with the allocating path — the
arena only changes *where* the numbers land, never how they are
computed.
"""

from __future__ import annotations

import numpy as np

from repro.core.modeljoin.builder import (
    BuiltModel,
    DenseLayerWeights,
    LstmLayerWeights,
)
from repro.db.profiler import ProfileCounters
from repro.device.base import Device
from repro.errors import ModelJoinError


def pack_columns(
    columns: list[np.ndarray], out: np.ndarray | None = None
) -> np.ndarray:
    """Copy input column vectors into a row-major (rows, n) matrix.

    Each column vector is touched exactly once (first step of Figure 7).
    With *out* the packing writes into the given preallocated matrix.
    """
    if not columns:
        raise ModelJoinError("inference needs at least one input column")
    rows = len(columns[0])
    if out is None:
        matrix = np.empty((rows, len(columns)), dtype=np.float32)
    else:
        if out.shape != (rows, len(columns)):
            raise ModelJoinError(
                f"pack buffer has shape {out.shape}, "
                f"need {(rows, len(columns))}"
            )
        matrix = out
    for index, column in enumerate(columns):
        matrix[:, index] = column.astype(np.float32, copy=False)
    return matrix


def unpack_columns(matrix: np.ndarray) -> list[np.ndarray]:
    """Break the result matrix back into column vectors (last step).

    Always copies: the matrix may be a reused arena buffer, and the
    yielded column vectors must survive the next inference call.
    """
    return [matrix[:, index].copy() for index in range(matrix.shape[1])]


def unpack_views(matrix: np.ndarray) -> list[np.ndarray]:
    """Strided column views into *matrix* — no copies (epilogue fusion).

    Counterpart of :func:`unpack_columns` used when a compiled consumer
    kernel is fused onto the ModelJoin's output: the kernel reads (and,
    for pass-through outputs, copies) the prediction columns before the
    next inference call reuses the arena buffer, so the intermediate
    per-column materialization disappears.  Callers must not hold these
    views across batches.
    """
    return [matrix[:, index] for index in range(matrix.shape[1])]


class BufferArena:
    """Named, preallocated float32 workspaces for one pipeline.

    ``take(tag, rows, cols)`` returns a ``(rows, cols)`` view of a
    buffer allocated once at ``max(rows, capacity_rows)`` rows; the
    same tag returns the same storage on every subsequent vector, so
    the steady state of the inference loop allocates nothing.  Not
    thread-safe by design — each partition pipeline owns its own arena.
    """

    def __init__(
        self,
        capacity_rows: int,
        counters: ProfileCounters | None = None,
    ):
        if capacity_rows < 1:
            raise ModelJoinError("arena capacity must be positive")
        self.capacity_rows = capacity_rows
        self.counters = counters
        self._buffers: dict[str, np.ndarray] = {}
        #: bytes of allocation avoided by handing out reused buffers
        self.reused_bytes = 0

    def take(self, tag: str, rows: int, cols: int) -> np.ndarray:
        buffer = self._buffers.get(tag)
        if (
            buffer is None
            or buffer.shape[0] < rows
            or buffer.shape[1] != cols
        ):
            capacity = max(rows, self.capacity_rows)
            buffer = np.empty((capacity, cols), dtype=np.float32)
            self._buffers[tag] = buffer
        else:
            saved = rows * cols * buffer.itemsize
            self.reused_bytes += saved
            if self.counters is not None:
                self.counters.increment("buffer-bytes-reused", saved)
        return buffer[:rows]

    def nominal_bytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values())


class VectorizedInference:
    """Executes the layer-forward functions for one built model.

    With *vector_size* set, a :class:`BufferArena` is installed and all
    forwards reuse preallocated workspaces; the returned result matrix
    is then a live buffer that the caller must copy out of (which
    :func:`unpack_columns` does) before the next :meth:`infer` call.
    Without it, every call allocates fresh arrays — the contract the
    pre-arena callers rely on.
    """

    def __init__(
        self,
        built: BuiltModel,
        device: Device,
        vector_size: int | None = None,
        counters: ProfileCounters | None = None,
    ):
        self.built = built
        self.device = device
        self.arena = (
            BufferArena(vector_size, counters)
            if vector_size is not None
            else None
        )

    def _take(self, tag: str, rows: int, cols: int) -> np.ndarray | None:
        if self.arena is None:
            return None
        return self.arena.take(tag, rows, cols)

    def infer(self, input_matrix: np.ndarray) -> np.ndarray:
        """Run the model for a packed ``(rows, input_width)`` matrix.

        Returns the host-resident ``(rows, output_width)`` result.
        """
        if input_matrix.shape[1] != self.built.input_width:
            raise ModelJoinError(
                f"model expects {self.built.input_width} input columns, "
                f"got {input_matrix.shape[1]}"
            )
        device = self.device
        current = device.to_device(input_matrix)
        for index, layer in enumerate(self.built.layers):
            prefix = f"layer{index}"
            if isinstance(layer, DenseLayerWeights):
                current = self._dense_forward(layer, current, prefix)
            else:
                current = self._lstm_forward(layer, current, prefix)
        return device.to_host(current)

    # ------------------------------------------------------------------
    # layer forward functions
    # ------------------------------------------------------------------
    def _bias_accumulator(
        self,
        bias: np.ndarray,
        bias_matrix: np.ndarray | None,
        rows: int,
    ) -> np.ndarray:
        """The ``y`` of ``y := Ax + y``: replicated bias rows."""
        if bias_matrix is not None:
            if rows > bias_matrix.shape[0]:
                raise ModelJoinError(
                    f"batch of {rows} rows exceeds the replicated bias "
                    f"matrix ({bias_matrix.shape[0]} rows); increase the "
                    "vector size the model was built for"
                )
            return bias_matrix[:rows]
        # Unreplicated fallback (the ablation case): broadcast add.
        return bias[np.newaxis, :]

    def _dense_forward(
        self,
        layer: DenseLayerWeights,
        current: np.ndarray,
        prefix: str = "dense",
    ) -> np.ndarray:
        device = self.device
        rows = current.shape[0]
        accumulator = self._bias_accumulator(
            layer.bias, layer.bias_matrix, rows
        )
        out = self._take(prefix, rows, layer.kernel.shape[1])
        pre = device.gemm(
            current, layer.kernel, accumulate=accumulator, out=out
        )
        # With an arena the activation runs in place over the gemm
        # output; without one it allocates, as it always has.
        return device.activation(
            layer.activation, pre, out=pre if out is not None else None
        )

    def _lstm_forward(
        self,
        layer: LstmLayerWeights,
        sequence: np.ndarray,
        prefix: str = "lstm",
    ) -> np.ndarray:
        """Listing 5: the LSTM layer forward via BLAS primitives."""
        device = self.device
        rows = sequence.shape[0]
        features = layer.kernel.shape[0]
        steps = sequence.shape[1] // features
        if steps != layer.time_steps:
            raise ModelJoinError(
                f"LSTM built for {layer.time_steps} time steps, input "
                f"provides {steps}"
            )
        units = layer.units
        gates = layer.kernel.shape[1]
        hidden: np.ndarray | None = None
        cell: np.ndarray | None = None
        for step in range(steps):
            window = sequence[:, step * features : (step + 1) * features]
            if self.arena is None:
                x_t = np.ascontiguousarray(window)
            else:
                x_t = self.arena.take(f"{prefix}-x", rows, features)
                np.copyto(x_t, window)
            accumulator = self._bias_accumulator(
                layer.bias, layer.bias_matrix, rows
            )
            # z_x := x W + b (sger for the rank-1 scalar-series case).
            z = device.gemm(
                x_t,
                layer.kernel,
                accumulate=accumulator,
                out=self._take(f"{prefix}-z", rows, gates),
            )
            if hidden is not None:
                # z_x := h U + z_x (sgemm accumulate).
                recurrent = device.gemm(
                    hidden,
                    layer.recurrent_kernel,
                    out=self._take(f"{prefix}-hz", rows, gates),
                )
                z = device.add(
                    z, recurrent, out=z if self.arena is not None else None
                )
            gate_i = device.activation(
                layer.recurrent_activation,
                z[:, :units],
                out=self._take(f"{prefix}-gi", rows, units),
            )
            gate_f = device.activation(
                layer.recurrent_activation,
                z[:, units : 2 * units],
                out=self._take(f"{prefix}-gf", rows, units),
            )
            candidate = device.activation(
                layer.activation,
                z[:, 2 * units : 3 * units],
                out=self._take(f"{prefix}-cand", rows, units),
            )
            gate_o = device.activation(
                layer.recurrent_activation,
                z[:, 3 * units :],
                out=self._take(f"{prefix}-go", rows, units),
            )
            fresh = device.multiply(  # vsMul
                gate_i,
                candidate,
                out=self._take(f"{prefix}-fresh", rows, units),
            )
            if cell is None:
                cell = device.copy(
                    fresh, out=self._take(f"{prefix}-cell", rows, units)
                )
            else:
                decayed = device.multiply(
                    gate_f,
                    cell,
                    out=self._take(f"{prefix}-decay", rows, units),
                )
                cell = device.add(
                    decayed,
                    fresh,
                    out=cell if self.arena is not None else None,
                )
            activated = device.activation(
                layer.activation,
                cell,
                out=self._take(f"{prefix}-ac", rows, units),
            )
            hidden = device.multiply(
                gate_o,
                activated,
                out=self._take(f"{prefix}-hidden", rows, units),
            )
        if hidden is None:
            raise ModelJoinError("LSTM with zero time steps")
        return hidden
