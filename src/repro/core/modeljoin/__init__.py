"""The native ModelJoin operator (paper Section 5).

A two-phase join operator integrated into the vectorized engine:

- **build phase** (:mod:`repro.core.modeljoin.builder`): all partition
  pipelines cooperatively parse the relational model table into shared
  weight matrices — distinct partitions touch distinct matrix cells, so
  the fill is synchronization-free; a single barrier separates build
  from inference (Figure 6),
- **inference phase** (:mod:`repro.core.modeljoin.inference`): per
  1024-tuple vector, input columns are packed into a matrix once, the
  layer-forward functions run through the BLAS-style device interface
  (Listing 5 for LSTM), and results are unpacked into output vectors
  (Figure 7).  Runs on the host CPU or on the simulated GPU.
"""

from repro.core.modeljoin.builder import BuiltModel, ModelBuilder
from repro.core.modeljoin.inference import VectorizedInference
from repro.core.modeljoin.operator import (
    ModelJoinOperator,
    modeljoin_operator_factory,
)

__all__ = [
    "BuiltModel",
    "ModelBuilder",
    "VectorizedInference",
    "ModelJoinOperator",
    "modeljoin_operator_factory",
]
