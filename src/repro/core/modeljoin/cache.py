"""Cross-query cache of finalized ModelJoin builds.

The paper's headline result amortizes the model build over a query's
many inference vectors; a *serving* workload (the same scoring query
arriving over and over) additionally wants the build amortized over
queries.  "Serving Deep Learning Model in Relational Databases"
(PAPERS.md) identifies exactly this model/state caching across
invocations as the gap between one-shot benchmarks and a serving-grade
stack.

The cache maps a :class:`CacheKey` to the finalized
:class:`~repro.core.modeljoin.builder.BuiltModel`.  The key carries
everything the build depends on:

* the model table's identity (``uid``) and data ``version`` — an
  INSERT bumps the version, so stale builds simply stop matching;
* the registered model name (re-registration under the same name is
  additionally invalidated eagerly through the catalog's invalidation
  listeners, as is DROP TABLE);
* the device name, the vector size (bias-matrix replication is sized
  by it) and the ``replicate_bias`` flag.

Entries are LRU-evicted once the configured byte cap is exceeded;
bytes are tracked by a :class:`~repro.db.profiler.MemoryAccountant`
under the ``model-cache`` category, so the resident footprint is
observable like every other engine allocation.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.modeljoin.builder import BuiltModel
from repro.db import faults
from repro.db.profiler import MemoryAccountant
from repro.db.table import Table

#: default cap on resident cached model bytes (weights + bias matrices)
DEFAULT_CAPACITY_BYTES = 256 * 1024 * 1024

MEMORY_CATEGORY = "model-cache"


def model_checksum(built: BuiltModel) -> int:
    """CRC32 over every weight array of a finalized build.

    Cheap relative to a rebuild (one linear pass over the bytes) and
    order-stable: layers in order, then each layer's array fields in
    declaration order.  Used to detect in-memory corruption of cached
    models — the "models as validatable data" idea of SQL4NN applied to
    the serving cache.
    """
    crc = 0
    # getattr: unit tests cache stub objects without layers (checksum 0
    # is stable for those, which is all integrity checking needs).
    for layer in getattr(built, "layers", ()):
        for value in vars(layer).values():
            if isinstance(value, np.ndarray):
                array = (
                    value
                    if value.flags.c_contiguous
                    else np.ascontiguousarray(value)
                )
                crc = zlib.crc32(array, crc)
    return crc


@dataclass(frozen=True)
class CacheKey:
    """Everything a finalized build depends on."""

    model_table: str
    table_uid: int
    table_version: int
    model_name: str
    device: str
    vector_size: int
    replicate_bias: bool

    @classmethod
    def for_build(
        cls,
        model_table: Table,
        model_name: str,
        device_name: str,
        vector_size: int,
        replicate_bias: bool,
    ) -> "CacheKey":
        return cls(
            model_table=model_table.name.lower(),
            table_uid=model_table.uid,
            table_version=model_table.version,
            model_name=model_name.lower(),
            device=device_name,
            vector_size=vector_size,
            replicate_bias=replicate_bias,
        )


class ModelCache:
    """Engine-lifetime LRU cache of finalized model builds.

    Thread-safe: partition pipelines of concurrent queries may look up
    and insert under contention.  The cache owns its own accountant
    because its contents outlive any single query's context.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.memory = MemoryAccountant()
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, BuiltModel] = OrderedDict()
        self._checksums: dict[CacheKey, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.corruptions = 0
        #: optional engine-lifetime MetricsRegistry (set by attach());
        #: quarantines then bump the ``cache.corruption`` counter
        self.metrics = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        return self.memory.current_bytes

    def get(self, key: CacheKey) -> BuiltModel | None:
        """The cached build for *key*, or None (counts hit/miss).

        Every hit is integrity-verified against the checksum stored at
        :meth:`put`; a mismatch *quarantines* the entry — it is evicted,
        counted (``corruptions`` statistic and the engine's
        ``cache.corruption`` metric) and reported as a miss, so the
        caller transparently rebuilds instead of serving corrupt
        weights.
        """
        with self._lock:
            built = self._entries.get(key)
            if built is None:
                self.misses += 1
                return None
            if faults.ACTIVE is not None and faults.ACTIVE.corrupts(
                "cache.load"
            ):
                _flip_bits(built)
            expected = self._checksums.get(key)
            if expected is not None and model_checksum(built) != expected:
                self._entries.pop(key)
                self._checksums.pop(key, None)
                self.memory.release(
                    built.nominal_bytes(), MEMORY_CATEGORY
                )
                self.corruptions += 1
                self.misses += 1
                if self.metrics is not None:
                    self.metrics.counter("cache.corruption").increment()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return built

    def put(self, key: CacheKey, built: BuiltModel) -> None:
        """Insert a finalized build, evicting LRU entries over the cap.

        A build larger than the whole cap is not retained at all.  The
        entry's integrity checksum is computed here, once, so every
        later :meth:`get` can verify it.
        """
        nbytes = built.nominal_bytes()
        if nbytes > self.capacity_bytes:
            return
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = built
            self._checksums[key] = model_checksum(built)
            self.memory.allocate(nbytes, MEMORY_CATEGORY)
            while (
                self.memory.current_bytes > self.capacity_bytes
                and len(self._entries) > 1
            ):
                victim_key, victim = self._entries.popitem(last=False)
                if victim_key == key:  # never evict what was just added
                    self._entries[victim_key] = victim
                    self._entries.move_to_end(victim_key, last=False)
                    break
                self._checksums.pop(victim_key, None)
                self.memory.release(
                    victim.nominal_bytes(), MEMORY_CATEGORY
                )
                self.evictions += 1

    def entries(self) -> list[tuple[CacheKey, BuiltModel]]:
        """Snapshot of (key, build) pairs, LRU first.

        Used by the storage layer's checkpoint to persist host-resident
        builds (see repro.core.modeljoin.persistence); iteration order
        preserves recency so a capped reload warms the hottest entries
        last (i.e. most-recently-used wins LRU eviction again).
        """
        with self._lock:
            return list(self._entries.items())

    def invalidate_table(self, table_name: str) -> int:
        """Drop every entry built from *table_name* (DROP/re-register).

        Returns the number of entries removed.  Version-keyed lookups
        would already miss; eager removal releases the bytes.
        """
        name = table_name.lower()
        with self._lock:
            stale = [
                key for key in self._entries if key.model_table == name
            ]
            for key in stale:
                built = self._entries.pop(key)
                self._checksums.pop(key, None)
                self.memory.release(
                    built.nominal_bytes(), MEMORY_CATEGORY
                )
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._checksums.clear()
            self.memory.reset()

    def statistics(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "resident_bytes": self.memory.current_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "corruptions": self.corruptions,
            }


def _flip_bits(built: BuiltModel) -> None:
    """Corrupt a cached build in place (the ``cache.load`` fault).

    Flips the bits of the first weight value found — enough for the
    checksum to catch, small enough to model a single-event upset.
    """
    for layer in getattr(built, "layers", ()):
        for value in vars(layer).values():
            if isinstance(value, np.ndarray) and value.size:
                flat = value.view(np.uint32).reshape(-1)
                flat[0] ^= 0xFFFFFFFF
                return
