"""Parallel model build phase (paper Section 5.2, Figure 6).

Weight matrices and bias vectors are allocated once, single-threaded,
into a memory location shared by all execution threads.  Each thread
then parses its partition of the relational model table and writes the
weights into the matrix cells addressed by the ``(Node_in, Node)``
pair.  Partitions are disjoint, so cell writes need no synchronization
(dense bias values are replicated on every incoming edge — concurrent
writers store the *same* value, which is benign); a single barrier
separates building from inference.

As the paper's GPU optimization prescribes, the build always fills
host memory and moves the finished model to the device *once* at
finalization, avoiding fine-grained transfers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.ml_to_sql.representation import LayerBlock, blocks_from_dims
from repro.db.catalog import LayerMetadata
from repro.db.vector import VectorBatch
from repro.device.base import Device
from repro.errors import ModelJoinError, WorkerCrashError

_GATES = ("i", "f", "c", "o")


@dataclass
class DenseLayerWeights:
    """Built weights of one dense layer."""

    kernel: np.ndarray  # (input_dim, units)
    bias: np.ndarray  # (units,)
    bias_matrix: np.ndarray | None  # (vector_size, units) if replicated
    activation: str
    units: int

    def nominal_bytes(self) -> int:
        total = self.kernel.nbytes + self.bias.nbytes
        if self.bias_matrix is not None:
            total += self.bias_matrix.nbytes
        return total


@dataclass
class LstmLayerWeights:
    """Built weights of one LSTM layer (gate order i, f, c, o)."""

    kernel: np.ndarray  # (features, 4*units)
    recurrent_kernel: np.ndarray  # (units, 4*units)
    bias: np.ndarray  # (4*units,)
    bias_matrix: np.ndarray | None  # (vector_size, 4*units) if replicated
    activation: str
    recurrent_activation: str
    units: int
    time_steps: int

    def nominal_bytes(self) -> int:
        total = (
            self.kernel.nbytes
            + self.recurrent_kernel.nbytes
            + self.bias.nbytes
        )
        if self.bias_matrix is not None:
            total += self.bias_matrix.nbytes
        return total


@dataclass
class BuiltModel:
    """The shared, fully built model ready for vectorized inference."""

    layers: list[DenseLayerWeights | LstmLayerWeights]
    input_width: int
    output_width: int
    time_steps: int
    on_device: bool = False

    def nominal_bytes(self) -> int:
        return sum(layer.nominal_bytes() for layer in self.layers)


class ModelBuilder:
    """Thread-cooperative builder for one ModelJoin execution.

    One instance is shared by all partition pipelines of a query (via
    the execution context's shared state).  Each pipeline calls
    :meth:`consume_batch` for the model-table rows of its partition and
    then :meth:`wait_and_finalize`, which runs the barrier and performs
    the one-time bias replication and device upload.
    """

    def __init__(
        self,
        input_width: int,
        layers: list[LayerMetadata],
        parties: int,
        vector_size: int,
        replicate_bias: bool = True,
    ):
        if not layers:
            raise ModelJoinError("a model needs at least one layer")
        self.input_width = input_width
        self.layer_metadata = list(layers)
        self.vector_size = vector_size
        self.replicate_bias = replicate_bias
        self.blocks: list[LayerBlock] = blocks_from_dims(
            input_width,
            [
                (meta.layer_type, meta.units, meta.activation)
                for meta in layers
            ],
        )
        self._barrier = threading.Barrier(parties)
        self._finalize_lock = threading.Lock()
        self._built: BuiltModel | None = None
        self._rows_consumed = 0
        self._count_lock = threading.Lock()
        self._host_layers = self._allocate_host_layers()

    # ------------------------------------------------------------------
    # allocation (single-threaded: done in the constructor)
    # ------------------------------------------------------------------
    def _allocate_host_layers(self):
        host_layers = []
        previous_units = self.input_width
        first = True
        for meta, block in zip(
            self.layer_metadata,
            [b for b in self.blocks if b.kind != "input"],
        ):
            if meta.layer_type == "lstm":
                if not first:
                    raise ModelJoinError(
                        "LSTM is only supported as the first layer"
                    )
                host_layers.append(
                    LstmLayerWeights(
                        kernel=np.zeros((1, 4 * meta.units), np.float32),
                        recurrent_kernel=np.zeros(
                            (meta.units, 4 * meta.units), np.float32
                        ),
                        bias=np.zeros(4 * meta.units, np.float32),
                        bias_matrix=None,
                        activation=meta.activation,
                        recurrent_activation="sigmoid",
                        units=meta.units,
                        time_steps=meta.time_steps,
                    )
                )
            else:
                host_layers.append(
                    DenseLayerWeights(
                        kernel=np.zeros(
                            (previous_units, meta.units), np.float32
                        ),
                        bias=np.zeros(meta.units, np.float32),
                        bias_matrix=None,
                        activation=meta.activation,
                        units=meta.units,
                    )
                )
            previous_units = meta.units
            first = False
        return host_layers

    # ------------------------------------------------------------------
    # parallel fill
    # ------------------------------------------------------------------
    def consume_batch(self, batch: VectorBatch) -> None:
        """Parse one vector of model-table rows into the matrices."""
        if len(batch) == 0:
            return
        node_in = batch.column("node_in")
        node = batch.column("node")
        with self._count_lock:
            self._rows_consumed += len(batch)
        forward_blocks = [b for b in self.blocks if b.kind != "input"]
        for block, weights in zip(forward_blocks, self._host_layers):
            mask = (node >= block.first_node) & (node <= block.last_node)
            if not mask.any():
                continue
            targets = (node[mask] - block.first_node).astype(np.int64)
            sources = node_in[mask].astype(np.int64)
            if isinstance(weights, LstmLayerWeights):
                self._fill_lstm(batch, mask, sources, targets, block, weights)
            else:
                self._fill_dense(batch, mask, sources, targets, block, weights)

    def _previous_block(self, block: LayerBlock) -> LayerBlock:
        position = self.blocks.index(block)
        if position == 0:
            raise ModelJoinError(f"block {block.kind} has no predecessor")
        return self.blocks[position - 1]

    def _fill_dense(
        self,
        batch: VectorBatch,
        mask: np.ndarray,
        sources: np.ndarray,
        targets: np.ndarray,
        block: LayerBlock,
        weights: DenseLayerWeights,
    ) -> None:
        previous = self._previous_block(block)
        local_sources = sources - previous.first_node
        if (local_sources < 0).any() or (
            local_sources >= weights.kernel.shape[0]
        ).any():
            raise ModelJoinError(
                f"model row references node_in outside the previous "
                f"layer for block at node {block.first_node}"
            )
        weights.kernel[local_sources, targets] = batch.column("w_i")[mask]
        weights.bias[targets] = batch.column("b_i")[mask]

    def _fill_lstm(
        self,
        batch: VectorBatch,
        mask: np.ndarray,
        sources: np.ndarray,
        targets: np.ndarray,
        block: LayerBlock,
        weights: LstmLayerWeights,
    ) -> None:
        local_sources = sources - block.first_node
        if (local_sources < 0).any() or (
            local_sources >= weights.units
        ).any():
            raise ModelJoinError(
                "LSTM model row references node_in outside the state block"
            )
        units = weights.units
        diagonal = local_sources == targets
        for position, gate in enumerate(_GATES):
            columns = position * units + targets
            weights.recurrent_kernel[local_sources, columns] = batch.column(
                f"u_{gate}"
            )[mask]
            if diagonal.any():
                diag_columns = position * units + targets[diagonal]
                weights.kernel[0, diag_columns] = batch.column(f"w_{gate}")[
                    mask
                ][diagonal]
                weights.bias[diag_columns] = batch.column(f"b_{gate}")[mask][
                    diagonal
                ]

    # ------------------------------------------------------------------
    # barrier + finalization
    # ------------------------------------------------------------------
    def wait_and_finalize(self, device: Device) -> BuiltModel:
        """Barrier, then one thread replicates biases and uploads.

        Every partition pipeline calls this once; all block until the
        model is ready, mirroring Figure 6's single synchronization
        point before the inference phase starts.

        Failure semantics: if a cooperating pipeline crashed before
        reaching the barrier it calls :meth:`abort`, which breaks the
        barrier — the pipelines already waiting then observe a
        :class:`WorkerCrashError` (retryable) instead of hanging
        forever.  A retried pipeline arriving after a successful build
        short-circuits past the (spent) barrier.
        """
        if self._built is not None:
            # A retried pipeline joining after the group already built:
            # the original barrier is spent, the model is ready.
            return self._built
        try:
            self._barrier.wait()
        except threading.BrokenBarrierError as error:
            raise WorkerCrashError(
                "model build aborted: a cooperating pipeline crashed "
                "before the build barrier"
            ) from error
        with self._finalize_lock:
            if self._built is None:
                self._built = self._finalize(device)
        return self._built

    def abort(self) -> None:
        """Break the build barrier so waiting pipelines fail fast.

        Called by a pipeline that crashed mid-build; without it the
        surviving pipelines would block on :meth:`wait_and_finalize`
        forever (the crashed party can never arrive).  Idempotent.
        """
        self._barrier.abort()

    def _finalize(self, device: Device) -> BuiltModel:
        layers = []
        for weights in self._host_layers:
            bias_matrix = None
            if self.replicate_bias:
                bias_matrix = np.repeat(
                    weights.bias[np.newaxis, :], self.vector_size, axis=0
                )
            if isinstance(weights, LstmLayerWeights):
                layers.append(
                    LstmLayerWeights(
                        kernel=device.to_device(weights.kernel),
                        recurrent_kernel=device.to_device(
                            weights.recurrent_kernel
                        ),
                        bias=device.to_device(weights.bias),
                        bias_matrix=(
                            device.to_device(bias_matrix)
                            if bias_matrix is not None
                            else None
                        ),
                        activation=weights.activation,
                        recurrent_activation=weights.recurrent_activation,
                        units=weights.units,
                        time_steps=weights.time_steps,
                    )
                )
            else:
                layers.append(
                    DenseLayerWeights(
                        kernel=device.to_device(weights.kernel),
                        bias=device.to_device(weights.bias),
                        bias_matrix=(
                            device.to_device(bias_matrix)
                            if bias_matrix is not None
                            else None
                        ),
                        activation=weights.activation,
                        units=weights.units,
                    )
                )
        first = self.layer_metadata[0]
        time_steps = first.time_steps if first.layer_type == "lstm" else 1
        return BuiltModel(
            layers=layers,
            input_width=self.input_width,
            output_width=self.layer_metadata[-1].units,
            time_steps=time_steps,
            on_device=device.is_gpu,
        )

    @property
    def rows_consumed(self) -> int:
        return self._rows_consumed
