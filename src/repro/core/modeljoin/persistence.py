"""Restart-warm model cache: persist finalized builds with the catalog.

The model cache (PR 1) amortizes ModelJoin builds across queries of one
process; this module amortizes them across *restarts*.  At checkpoint
time every host-resident finalized build is serialized next to the
database's data files (``models/`` under the storage root): the weight
arrays go into one ``.npz`` per entry, the cache keys and layer
metadata into an ``INDEX.json``.  Reopening the database loads the
entries straight back into the fresh cache — the persisted catalog
restores each table's ``uid``/``version`` (see
:mod:`repro.db.storage.store`), so the restored keys match and the
first ModelJoin query after a restart is a cache *hit*, not a rebuild.

Device-resident builds are never persisted (device buffers are process
state); the host build they were uploaded from is, and the device
upload is cheap relative to the relational build it replaces.

Both the per-entry files and the index are written via write-to-temp +
rename, so a crash mid-save leaves the previous consistent warm set.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.core.modeljoin.builder import (
    BuiltModel,
    DenseLayerWeights,
    LstmLayerWeights,
)
from repro.core.modeljoin.cache import CacheKey, ModelCache
from repro.db.storage.checkpoint import atomic_write_json

INDEX_NAME = "INDEX.json"


def _entry_file_name(key: CacheKey) -> str:
    digest = hashlib.sha1(
        json.dumps(
            dataclasses.asdict(key), sort_keys=True
        ).encode("utf-8")
    ).hexdigest()[:16]
    return f"model-{digest}.npz"


def _serialize_layers(built: BuiltModel):
    """(layer metadata list, named arrays) or None if unsupported."""
    metadata: list[dict] = []
    arrays: dict[str, np.ndarray] = {}
    for index, layer in enumerate(built.layers):
        prefix = f"l{index}_"
        if isinstance(layer, DenseLayerWeights):
            metadata.append(
                {
                    "kind": "dense",
                    "activation": layer.activation,
                    "units": layer.units,
                    "has_bias_matrix": layer.bias_matrix is not None,
                }
            )
            arrays[prefix + "kernel"] = layer.kernel
            arrays[prefix + "bias"] = layer.bias
            if layer.bias_matrix is not None:
                arrays[prefix + "bias_matrix"] = layer.bias_matrix
        elif isinstance(layer, LstmLayerWeights):
            metadata.append(
                {
                    "kind": "lstm",
                    "activation": layer.activation,
                    "recurrent_activation": layer.recurrent_activation,
                    "units": layer.units,
                    "time_steps": layer.time_steps,
                    "has_bias_matrix": layer.bias_matrix is not None,
                }
            )
            arrays[prefix + "kernel"] = layer.kernel
            arrays[prefix + "recurrent_kernel"] = layer.recurrent_kernel
            arrays[prefix + "bias"] = layer.bias
            if layer.bias_matrix is not None:
                arrays[prefix + "bias_matrix"] = layer.bias_matrix
        else:  # unknown layer type (test stubs): skip the entry
            return None
    return metadata, arrays


def _deserialize_layers(metadata: list[dict], data) -> list:
    layers = []
    for index, layer in enumerate(metadata):
        prefix = f"l{index}_"
        bias_matrix = (
            data[prefix + "bias_matrix"]
            if layer["has_bias_matrix"]
            else None
        )
        if layer["kind"] == "dense":
            layers.append(
                DenseLayerWeights(
                    kernel=data[prefix + "kernel"],
                    bias=data[prefix + "bias"],
                    bias_matrix=bias_matrix,
                    activation=layer["activation"],
                    units=int(layer["units"]),
                )
            )
        else:
            layers.append(
                LstmLayerWeights(
                    kernel=data[prefix + "kernel"],
                    recurrent_kernel=data[prefix + "recurrent_kernel"],
                    bias=data[prefix + "bias"],
                    bias_matrix=bias_matrix,
                    activation=layer["activation"],
                    recurrent_activation=layer["recurrent_activation"],
                    units=int(layer["units"]),
                    time_steps=int(layer["time_steps"]),
                )
            )
    return layers


class ModelCachePersistence:
    """Saves/restores a :class:`ModelCache` under a storage directory."""

    def __init__(self, cache: ModelCache, directory: str | Path):
        self.cache = cache
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def save(self) -> int:
        """Persist every host-resident build; returns the entry count."""
        index_entries: list[dict] = []
        for key, built in self.cache.entries():
            if getattr(built, "on_device", False):
                continue
            serialized = _serialize_layers(built)
            if serialized is None:
                continue
            metadata, arrays = serialized
            file_name = _entry_file_name(key)
            temp = self.directory / (file_name + ".tmp")
            with open(temp, "wb") as handle:
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, self.directory / file_name)
            index_entries.append(
                {
                    "key": dataclasses.asdict(key),
                    "file": file_name,
                    "input_width": built.input_width,
                    "output_width": built.output_width,
                    "time_steps": built.time_steps,
                    "layers": metadata,
                }
            )
        atomic_write_json(
            self.directory / INDEX_NAME, {"entries": index_entries}
        )
        keep = {entry["file"] for entry in index_entries}
        for path in self.directory.glob("model-*.npz"):
            if path.name not in keep:
                path.unlink()
        return len(index_entries)

    def load(self) -> int:
        """Warm the cache from disk; returns entries restored."""
        index_path = self.directory / INDEX_NAME
        if not index_path.exists():
            return 0
        with open(index_path, encoding="utf-8") as handle:
            index = json.load(handle)
        restored = 0
        for entry in index.get("entries", []):
            path = self.directory / entry["file"]
            if not path.exists():
                continue
            with np.load(path) as data:
                layers = _deserialize_layers(entry["layers"], data)
            built = BuiltModel(
                layers=layers,
                input_width=int(entry["input_width"]),
                output_width=int(entry["output_width"]),
                time_steps=int(entry["time_steps"]),
                on_device=False,
            )
            self.cache.put(CacheKey(**entry["key"]), built)
            restored += 1
        return restored
