"""The ModelJoin as a physical query operator (paper Section 5.1).

A two-phase join in the Volcano model (Figure 5): on the first
``next()`` the operator drains the model side and builds the shared
weight matrices (cooperating with the other partition pipelines through
a barrier); afterwards every ``next()`` pulls a vector from the input
flow, runs vectorized inference and returns the input columns plus the
prediction columns.  Because it is a regular operator, it can be nested
into arbitrary queries — aggregations over predictions and the like.

Unlike ML-To-SQL, payload columns are simply passed through untouched
(no "late projection" join needed, Section 5.3).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator

from repro.core.modeljoin.builder import BuiltModel, ModelBuilder
from repro.core.modeljoin.cache import CacheKey, ModelCache
from repro.core.modeljoin.inference import (
    VectorizedInference,
    pack_columns,
    unpack_columns,
    unpack_views,
)
from repro.db import faults
from repro.db.catalog import ModelMetadata
from repro.db.operators.base import (
    ExecutionContext,
    PhysicalOperator,
    UnaryOperator,
)
from repro.db.parallel import ROUND_ABORTED_KEY
from repro.db.resilience import breaker_for
from repro.db.schema import Column, Schema
from repro.db.table import Table
from repro.db.types import SqlType
from repro.db.vector import VectorBatch
from repro.device.base import Device
from repro.device.host import HostDevice
from repro.errors import (
    DeviceError,
    InjectedFaultError,
    ModelJoinError,
    WorkerCrashError,
)

_shared_state_lock = threading.Lock()


class ModelJoinOperator(UnaryOperator):
    """Native ModelJoin: child (input flow) x model table -> predictions."""

    # inference is per-vector and the build is coordinated through
    # shared state, not through which morsels this pipeline scans — so
    # the input flow may come from a shared morsel queue
    morsel_streaming = True

    #: duck-typing hook for the lowering (repro.db.compile): a direct
    #: consumer kernel may ask this operator to emit prediction columns
    #: as views into the inference result matrix (epilogue fusion)
    supports_emit_views = True

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        metadata: ModelMetadata,
        model_table: Table,
        input_columns: list[str] | None = None,
        output_prefix: str = "prediction",
        device: Device | None = None,
        partition_index: int | None = None,
        replicate_bias: bool = True,
        model_cache: ModelCache | None = None,
    ):
        self.metadata = metadata
        self.model_table = model_table
        self.device = device or HostDevice()
        self.partition_index = partition_index or 0
        self.replicate_bias = replicate_bias
        self.model_cache = model_cache
        self.output_prefix = output_prefix
        self.input_columns = self._resolve_input_columns(
            child.schema, metadata, input_columns
        )
        prediction_columns = tuple(
            Column(f"{output_prefix}_{index}", SqlType.FLOAT)
            for index in range(metadata.output_width)
        )
        schema = Schema(child.schema.columns + prediction_columns)
        super().__init__(context, schema, child)
        self._accounted_bytes = 0
        #: epilogue fusion: when True (set only by the lowering, after
        #: it compiled the direct consumer's kernel), prediction columns
        #: are strided views into the BLAS output matrix — a reused
        #: arena buffer — instead of per-column copies.  The consumer
        #: kernel copies any pass-through of these transient columns
        #: before the next inference call overwrites the buffer.
        self.emit_views = False
        #: fallback notes ('gpu-sim->cpu', ...) rendered by describe()
        #: (and so by EXPLAIN ANALYZE) once a fallback engaged
        self.fallbacks: list[str] = []
        #: the finalized model (kept for building a host-device
        #: fallback inference without re-running the build)
        self._built_model: BuiltModel | None = None
        self._inference: VectorizedInference | None = None

    @property
    def prediction_column_names(self) -> tuple[str, ...]:
        """Names of the appended prediction columns (transient under
        epilogue fusion — the lowering marks them in the kernel spec)."""
        return tuple(
            column.name
            for column in self.schema.columns[len(self.child.schema):]
        )

    @staticmethod
    def _resolve_input_columns(
        child_schema: Schema,
        metadata: ModelMetadata,
        input_columns: list[str] | None,
    ) -> list[str]:
        if input_columns is not None:
            if len(input_columns) != metadata.input_width:
                raise ModelJoinError(
                    f"model {metadata.model_name!r} expects "
                    f"{metadata.input_width} input columns, "
                    f"got {len(input_columns)}"
                )
            for name in input_columns:
                child_schema.position_of(name)
            return list(input_columns)
        # Default: the first input_width floating-point columns of the
        # input flow, in schema order.
        candidates = [
            column.name
            for column in child_schema
            if column.sql_type in (SqlType.FLOAT, SqlType.DOUBLE)
        ]
        if len(candidates) < metadata.input_width:
            raise ModelJoinError(
                f"input flow offers {len(candidates)} float columns, "
                f"model {metadata.model_name!r} needs "
                f"{metadata.input_width}; pass input columns explicitly"
            )
        return candidates[: metadata.input_width]

    @property
    def ordering(self) -> tuple[str, ...]:
        return self.child.ordering

    def open(self) -> None:
        super().open()
        if self.device.is_gpu and breaker_for(self.device).is_open:
            # The device's circuit breaker is open (too many recent
            # faults): skip it for the whole query instead of failing
            # into the per-batch fallback path again.
            original = self.device.name
            self.device = HostDevice()
            self._note_fallback(
                "circuit-breaker", f"{original}->{self.device.name}", None
            )
        # Device kernels emit spans into the same timeline as the
        # operator (no-op while the tracer is disabled), and check the
        # query's deadline between kernels.
        self.device.set_tracer(self.context.tracer)
        self.device.set_cancellation(self.context.cancellation)

    # ------------------------------------------------------------------
    # build phase
    # ------------------------------------------------------------------
    def _cache_key(self) -> CacheKey:
        return CacheKey.for_build(
            self.model_table,
            self.metadata.model_name,
            self.device.name,
            self.context.vector_size,
            self.replicate_bias,
        )

    def _decision_key(self) -> tuple:
        return (
            "modeljoin",
            self.model_table.name.lower(),
            self.metadata.model_name.lower(),
            self.output_prefix,
        )

    def _retract_shared_decision(self, builder: ModelBuilder) -> None:
        """Remove a poisoned miss decision after a failed build.

        Only the decision holding *this* builder is removed (identity
        check), so concurrent cleanup from several crashed pipelines —
        or a decision already replaced by a retry — stays safe.  The
        retried pipeline group then re-decides with a fresh builder
        whose barrier is not broken.
        """
        key = self._decision_key()
        with _shared_state_lock:
            decision = self.context.shared_state.get(key)
            if (
                decision is not None
                and decision[0] == "miss"
                and decision[1] is builder
            ):
                self.context.shared_state.pop(key, None)

    def _shared_decision(self) -> tuple[str, object, CacheKey | None]:
        """Hit the cache or create the shared builder — once per query.

        All partition pipelines of one query must agree: a cache hit
        skips the build barrier entirely, so a mixed hit/miss within
        one query would deadlock the pipelines that wait.  The first
        pipeline to arrive decides under the shared-state lock and the
        rest follow its decision.
        """
        key = self._decision_key()
        metrics = self.context.metrics
        with _shared_state_lock:
            decision = self.context.shared_state.get(key)
            if decision is None:
                built: BuiltModel | None = None
                cache_key: CacheKey | None = None
                if self.model_cache is not None:
                    cache_key = self._cache_key()
                    built = self.model_cache.get(cache_key)
                if built is not None:
                    self.context.counters.increment("model-cache-hits")
                    self._record_cache_metrics(metrics, hit=True)
                    decision = ("hit", built, cache_key)
                else:
                    if self.model_cache is not None:
                        self.context.counters.increment(
                            "model-cache-misses"
                        )
                        self._record_cache_metrics(metrics, hit=False)
                    builder = ModelBuilder(
                        input_width=self.metadata.input_width,
                        layers=list(self.metadata.layers),
                        parties=self.context.parallelism,
                        vector_size=self.context.vector_size,
                        replicate_bias=self.replicate_bias,
                    )
                    decision = ("miss", builder, cache_key)
                self.context.shared_state[key] = decision
            return decision

    @staticmethod
    def _record_cache_metrics(metrics, hit: bool) -> None:
        """Engine-lifetime cache accounting: hit/miss counters plus the
        cumulative ``cache.hit_ratio`` gauge."""
        if metrics is None:
            return
        metrics.counter("cache.hits" if hit else "cache.misses").increment()
        hits = metrics.counter("cache.hits").value
        misses = metrics.counter("cache.misses").value
        metrics.gauge("cache.hit_ratio").set(hits / (hits + misses))

    def _my_model_partitions(self) -> list[int]:
        """Model-table partitions this pipeline parses (round-robin)."""
        total = self.model_table.num_partitions
        stride = max(self.context.parallelism, 1)
        return list(range(self.partition_index, total, stride))

    def _build(self) -> VectorizedInference:
        tracer = self.context.tracer
        started = time.perf_counter()
        if tracer.enabled:
            with tracer.span(
                "modeljoin-build",
                category="phase",
                parent_id=self._span_id,
                args={"partition": self.partition_index},
            ):
                inference = self._build_inner()
        else:
            inference = self._build_inner()
        if self.partition_index == 0 and self.context.metrics is not None:
            self.context.metrics.histogram(
                "modeljoin.build_seconds"
            ).observe(time.perf_counter() - started)
        return inference

    def _build_inner(self) -> VectorizedInference:
        with self.context.stopwatch.measure("modeljoin-build"):
            kind, payload, cache_key = self._shared_decision()
            if kind == "hit":
                # Served from the cross-query cache: no model-table
                # scan, no barrier — the build phase is just the lookup.
                built = payload
            else:
                builder = payload
                try:
                    if faults.ACTIVE is not None:
                        faults.ACTIVE.fire("modeljoin.build")
                    # The model side is drained in large batches: the
                    # build phase is bulk weight placement, not
                    # tuple-at-a-time processing, so there is no reason
                    # to chop it into execution-sized vectors.
                    build_vector_size = max(self.context.vector_size, 65536)
                    for partition in self._my_model_partitions():
                        for batch in self.model_table.scan_partition(
                            partition, vector_size=build_vector_size
                        ):
                            builder.consume_batch(batch)
                    if self.context.shared_state.get(ROUND_ABORTED_KEY):
                        # A sibling task already crashed this round; its
                        # abort sweep may have run before our builder
                        # existed, so never enter the barrier wait.
                        raise WorkerCrashError(
                            "model build aborted: a cooperating "
                            "pipeline crashed before the build barrier"
                        )
                    built = builder.wait_and_finalize(self.device)
                except BaseException:
                    # Break the barrier so sibling pipelines observe a
                    # retryable WorkerCrashError instead of waiting for
                    # a party that will never arrive, and retract the
                    # poisoned decision so a retried group rebuilds
                    # from scratch.
                    builder.abort()
                    self._retract_shared_decision(builder)
                    raise
                if (
                    self.partition_index == 0
                    and self.model_cache is not None
                    and cache_key is not None
                ):
                    self.model_cache.put(cache_key, built)
        if self.partition_index == 0:
            self._accounted_bytes = built.nominal_bytes()
            self.context.memory.allocate(self._accounted_bytes, "model")
        self._built_model = built
        return VectorizedInference(
            built,
            self.device,
            vector_size=self.context.vector_size,
            counters=self.context.counters,
        )

    # ------------------------------------------------------------------
    # inference phase
    # ------------------------------------------------------------------
    def _produce(self) -> Iterator[VectorBatch]:
        self._inference = self._build()
        tracer = self.context.tracer
        prediction_schema = Schema(
            self.schema.columns[len(self.child.schema) :]
        )
        for batch in self.child.next_batches():
            if len(batch) == 0:
                continue
            if tracer.enabled:
                with tracer.span(
                    "modeljoin-infer",
                    category="phase",
                    parent_id=self._span_id,
                    args={"rows": len(batch)},
                ):
                    yield self._infer_batch(prediction_schema, batch)
            else:
                yield self._infer_batch(prediction_schema, batch)

    def _infer_batch(
        self,
        prediction_schema: Schema,
        batch: VectorBatch,
    ) -> VectorBatch:
        with self.context.stopwatch.measure("modeljoin-infer"):
            inference = self._inference
            pack_buffer = None
            if inference.arena is not None:
                pack_buffer = inference.arena.take(
                    "pack", len(batch), len(self.input_columns)
                )
            matrix = pack_columns(
                [batch.column(name) for name in self.input_columns],
                out=pack_buffer,
            )
            transient = matrix.nbytes
            self.context.memory.allocate(transient, "modeljoin-vector")
            try:
                try:
                    result = inference.infer(matrix)
                except (DeviceError, InjectedFaultError) as error:
                    fallback = self._host_fallback_inference(error)
                    if fallback is None:
                        raise
                    self._inference = fallback
                    result = fallback.infer(matrix)
            finally:
                self.context.memory.release(transient, "modeljoin-vector")
            unpack = unpack_views if self.emit_views else unpack_columns
            predictions = VectorBatch(prediction_schema, unpack(result))
        return batch.concat_columns(predictions)

    def _host_fallback_inference(
        self, error: Exception
    ) -> VectorizedInference | None:
        """A host-device inference over the already-built model.

        Engaged when a simulated-GPU kernel faults mid-inference: the
        finalized model's arrays are host NumPy either way, so the host
        forward is bit-exact with the device forward — the failing
        batch is recomputed and all later batches stay on the host.
        Returns None when there is nothing to fall back *from* (already
        on the host, or the model is not built yet).
        """
        if not self.device.is_gpu or self._built_model is None:
            return None
        breaker_for(self.device).record_failure()
        host = HostDevice()
        host.set_tracer(self.context.tracer)
        host.set_cancellation(self.context.cancellation)
        self._note_fallback(
            "device", f"{self.device.name}->{host.name}", error
        )
        return VectorizedInference(
            self._built_model,
            host,
            vector_size=self.context.vector_size,
            counters=self.context.counters,
        )

    def _note_fallback(
        self, kind: str, note: str, error: Exception | None
    ) -> None:
        """Surface an engaged fallback: counters, metrics, trace span."""
        self.fallbacks.append(note)
        self.context.counters.increment("fallback.engaged")
        metrics = self.context.metrics
        if metrics is not None:
            metrics.counter("fallback.engaged").increment()
            metrics.counter(f"fallback.{kind}").increment()
        tracer = self.context.tracer
        if tracer.enabled:
            args = {"kind": kind, "note": note}
            if error is not None:
                args["error"] = f"{type(error).__name__}: {error}"
            tracer.instant(
                "fallback",
                category="fallback",
                parent_id=self._span_id,
                args=args,
            )

    def close(self) -> None:
        if self._accounted_bytes:
            self.context.memory.release(self._accounted_bytes, "model")
            self._accounted_bytes = 0
        super().close()

    def merge_stats_from(self, other: PhysicalOperator) -> None:
        super().merge_stats_from(other)
        # Union the pipelines' fallback notes so a fallback engaged on
        # any worker shows up in the merged EXPLAIN ANALYZE tree.
        for note in getattr(other, "fallbacks", ()):  # pragma: no branch
            if note not in self.fallbacks:
                self.fallbacks.append(note)

    def describe(self) -> str:
        base = (
            f"ModelJoin(model={self.metadata.model_name}, "
            f"device={self.device.name}, "
            f"inputs=[{', '.join(self.input_columns)}])"
        )
        if self.emit_views:
            base += " [epilogue: fused]"
        if self.fallbacks:
            base += f" [fallback: {', '.join(self.fallbacks)}]"
        return base


def modeljoin_operator_factory(
    context: ExecutionContext,
    child: PhysicalOperator,
    metadata: ModelMetadata,
    model_table: Table,
    input_columns: list[str] | None = None,
    output_prefix: str = "prediction",
    partition_index: int | None = None,
    device: Device | None = None,
    model_cache: ModelCache | None = None,
    variant: str | None = None,
) -> ModelJoinOperator:
    """Factory the planner calls for ``MODEL JOIN`` FROM items.

    *variant* is the optimizer's in-plan variant decision
    ("native-cpu" / "native-gpu"); it picks the execution device when
    the caller did not pass one explicitly.
    """
    if device is None and variant == "native-gpu":
        from repro.device.gpu import SimulatedGpu

        device = SimulatedGpu()
    return ModelJoinOperator(
        context,
        child,
        metadata,
        model_table,
        input_columns=input_columns,
        output_prefix=output_prefix,
        partition_index=partition_index,
        device=device,
        model_cache=model_cache,
    )
