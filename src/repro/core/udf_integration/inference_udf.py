"""Inference UDFs (paper Section 6.1, "UDF" variant).

"In the Python UDF, we load the saved model, apply it to the data
using Tensorflow on the CPU and return the predictions.  Additionally,
we optimize the UDF by using Actian Vector's parallel and vectorized
UDFs, i.e. calling the UDF once per vector instead of once per tuple."

The UDF body loads the model from its serialized form on first call
(as a saved model would be), and predictions cross the explicit
engine/interpreter marshalling boundary of :mod:`repro.db.udf` in both
directions.  ``vectorized=False`` gives the unoptimized per-tuple
variant for the ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.db.engine import Database, Result
from repro.db.types import SqlType
from repro.db.udf import PythonUdf
from repro.errors import UnsupportedModelError
from repro.nn.model import Sequential
from repro.nn.serialization import model_from_dict, model_to_dict


def make_inference_udf(
    model: Sequential,
    name: str = "predict",
    output_index: int = 0,
    vectorized: bool = True,
    marshal: bool = True,
) -> PythonUdf:
    """Build the UDF computing output *output_index* of *model*.

    The model is round-tripped through its serialized representation so
    the UDF is self-contained, like loading a saved model file inside
    the UDF body.
    """
    if not 0 <= output_index < model.output_width:
        raise UnsupportedModelError(
            f"model has {model.output_width} outputs, "
            f"index {output_index} is out of range"
        )
    saved = model_to_dict(model)
    state: dict[str, Sequential] = {}

    def load() -> Sequential:
        if "model" not in state:
            state["model"] = model_from_dict(saved)
        return state["model"]

    if vectorized:

        def predict(*columns):
            loaded = load()
            matrix = np.column_stack(
                [np.asarray(column, dtype=np.float32) for column in columns]
            )
            return loaded.predict(matrix)[:, output_index].tolist()

    else:

        def predict(*values):
            loaded = load()
            row = np.asarray(values, dtype=np.float32)[np.newaxis, :]
            return float(loaded.predict(row)[0, output_index])

    return PythonUdf(
        name=name,
        arity=model.input_width,
        function=predict,
        result_type=SqlType.FLOAT,
        vectorized=vectorized,
        marshal=marshal,
    )


class UdfModelJoin:
    """End-to-end UDF runner: register the UDF, query with it."""

    def __init__(
        self,
        database: Database,
        model: Sequential,
        name: str = "predict",
        vectorized: bool = True,
        marshal: bool = True,
    ):
        self.database = database
        self.model = model
        self.name = name
        self.udfs = [
            database.register_udf(
                make_inference_udf(
                    model,
                    name=f"{name}_{index}" if model.output_width > 1 else name,
                    output_index=index,
                    vectorized=vectorized,
                    marshal=marshal,
                )
            )
            for index in range(model.output_width)
        ]

    def query(
        self,
        fact_table: str,
        id_column: str,
        input_columns: list[str],
        prediction_prefix: str = "prediction",
    ) -> str:
        arguments = ", ".join(input_columns)
        calls = ", ".join(
            f"{udf.name}({arguments}) AS {prediction_prefix}_{index}"
            for index, udf in enumerate(self.udfs)
        )
        return f"SELECT {id_column}, {calls} FROM {fact_table}"

    def execute(
        self,
        fact_table: str,
        id_column: str,
        input_columns: list[str],
        parallel: bool = False,
    ) -> Result:
        return self.database.execute(
            self.query(fact_table, id_column, input_columns),
            parallel=parallel,
        )

    def predict(
        self,
        fact_table: str,
        id_column: str,
        input_columns: list[str],
        parallel: bool = False,
    ) -> np.ndarray:
        result = self.execute(
            fact_table, id_column, input_columns, parallel=parallel
        )
        order = np.argsort(result.column(id_column), kind="stable")
        return np.column_stack(
            [
                result.column(f"prediction_{index}")[order]
                for index in range(self.model.output_width)
            ]
        )
