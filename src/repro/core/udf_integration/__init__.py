"""Model inference through Python UDFs (approach 1 of the paper)."""

from repro.core.udf_integration.inference_udf import (
    UdfModelJoin,
    make_inference_udf,
)

__all__ = ["UdfModelJoin", "make_inference_udf"]
