"""Cost-based ModelJoin execution-variant selection.

The selector ranks every execution variant the system implements by
predicted runtime, using one calibrated :class:`InferenceCostModel`
per variant (``seconds = a * tuples * flops + b * tuples + c``) — the
coefficients differ by orders of magnitude between variants, which is
the paper's central measurement.  ``repro.core.attach`` installs a
selector on every connected database; the planner consults it per
query with the optimizer's input-cardinality estimate, EXPLAIN prints
the full ranking, and the resilience layer executes the ranking as its
fallback chain.

``DEFAULT_COEFFICIENTS`` were fitted offline with
``python -m repro.bench plan`` (least squares over measured dense-grid
cells on the reference container); recalibrate per deployment with
:meth:`CostBasedVariantSelector.calibrate`.
"""

from __future__ import annotations

from repro.core.cost.model import (
    InferenceCostModel,
    flops_per_tuple_of_metadata,
)
from repro.db.catalog import ModelMetadata
from repro.db.plan.physical import (
    ALL_VARIANTS,
    IN_PLAN_VARIANTS,
    VariantEstimate,
)

#: per-variant (a, b, c) of ``seconds = a*tuples*flops + b*tuples + c``,
#: fitted from measured dense-grid cells (see module docstring); the
#: orders-of-magnitude spread between the in-engine operator and the
#: ML-To-SQL / external paths mirrors the paper's Figure 8.
DEFAULT_COEFFICIENTS: dict[str, tuple[float, float, float]] = {
    "native-cpu": (1.06e-11, 1.17e-7, 2.1e-4),
    "native-gpu": (3.6e-13, 1.46e-7, 2.4e-4),
    "runtime-api": (1.12e-11, 1.40e-7, 1.2e-4),
    "udf": (9.3e-12, 1.66e-6, 3.2e-4),
    "ml-to-sql": (2.15e-7, 1.0e-6, 4.0e-3),
    "external": (1.2e-11, 2.5e-6, 1.2e-2),
}


class CostBasedVariantSelector:
    """Ranks ModelJoin execution variants by predicted runtime."""

    def __init__(
        self,
        coefficients: dict[str, tuple[float, float, float]] | None = None,
    ):
        self.models: dict[str, InferenceCostModel] = {}
        table = dict(DEFAULT_COEFFICIENTS)
        if coefficients:
            table.update(coefficients)
        import numpy as np

        for variant, (a, b, c) in table.items():
            model = InferenceCostModel()
            model.coefficients = np.array([a, b, c], dtype=np.float64)
            self.models[variant] = model

    # -- planner protocol ------------------------------------------------
    def flops_per_tuple(self, metadata: ModelMetadata) -> float:
        return flops_per_tuple_of_metadata(metadata)

    def rank(
        self, metadata: ModelMetadata, tuples: int
    ) -> list[VariantEstimate]:
        """All variants, cheapest predicted runtime first."""
        estimates = [
            VariantEstimate(
                variant=variant,
                predicted_seconds=float(
                    self.models[variant]
                    .estimate(metadata, tuples)
                    .predicted_seconds
                ),
                in_plan=variant in IN_PLAN_VARIANTS,
            )
            for variant in ALL_VARIANTS
            if variant in self.models
        ]
        estimates.sort(key=lambda e: e.predicted_seconds)
        return estimates

    def predict(
        self, variant: str, metadata: ModelMetadata, tuples: int
    ) -> float:
        return float(
            self.models[variant]
            .estimate(metadata, tuples)
            .predicted_seconds
        )

    # -- calibration -----------------------------------------------------
    def calibrate(
        self,
        variant: str,
        observations: list[tuple[int, float, float]],
    ) -> None:
        """Refit one variant from (tuples, flops_per_tuple, seconds)."""
        model = self.models.setdefault(variant, InferenceCostModel())
        model.calibrate(observations)
