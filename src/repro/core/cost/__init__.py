"""Inference cost model (paper Section 7, future work)."""

from repro.core.cost.model import CostEstimate, InferenceCostModel
from repro.core.cost.selector import (
    DEFAULT_COEFFICIENTS,
    CostBasedVariantSelector,
)

__all__ = [
    "DEFAULT_COEFFICIENTS",
    "CostBasedVariantSelector",
    "CostEstimate",
    "InferenceCostModel",
]
