"""Inference cost model (paper Section 7, future work)."""

from repro.core.cost.model import CostEstimate, InferenceCostModel

__all__ = ["CostEstimate", "InferenceCostModel"]
