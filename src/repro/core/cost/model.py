"""A cost model for in-database model inference.

The paper's conclusion calls for exactly this: "In order to optimize
queries containing such a model inference, a cost model is an important
missing factor ...  The cost for inference could thereby be based on an
investigation of the model structure, as our evaluation showed that
costs increase linearly with model size."

The model estimates FLOPs from the model structure (paper Section
6.2.1 derives the parameter counts the same way) and converts them to
seconds with per-approach calibration coefficients, fitted from a
handful of measurements via least squares.  The ablation bench
validates the paper's linearity observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.catalog import LayerMetadata, ModelMetadata
from repro.errors import ModelJoinError
from repro.nn.layers import Dense, Lstm
from repro.nn.model import Sequential


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of one inference query."""

    flops_per_tuple: float
    tuples: int
    predicted_seconds: float | None

    @property
    def total_flops(self) -> float:
        return self.flops_per_tuple * self.tuples


def flops_per_tuple_of_metadata(metadata: ModelMetadata) -> float:
    """FLOPs to infer one tuple, from catalog metadata alone."""
    total = 0.0
    previous = metadata.input_width
    for layer in metadata.layers:
        total += _layer_flops(layer, previous)
        previous = layer.units
    return total


def _layer_flops(layer: LayerMetadata, previous_units: int) -> float:
    if layer.layer_type == "dense":
        # multiply-add per kernel weight, plus bias and activation
        return 2.0 * previous_units * layer.units + 2.0 * layer.units
    # LSTM: per time step, kernel (features x 4u) + recurrent (u x 4u)
    # matmuls plus ~10 elementwise ops per unit (gates and state).
    features = 1
    per_step = (
        2.0 * features * 4 * layer.units
        + 2.0 * layer.units * 4 * layer.units
        + 10.0 * layer.units
    )
    return per_step * layer.time_steps


def flops_per_tuple_of_model(model: Sequential) -> float:
    """FLOPs to infer one tuple, from the framework model object."""
    total = 0.0
    previous = (
        1 if isinstance(model.layers[0], Lstm) else model.input_width
    )
    for layer in model.layers:
        if isinstance(layer, Dense):
            total += 2.0 * previous * layer.units + 2.0 * layer.units
        elif isinstance(layer, Lstm):
            per_step = (
                2.0 * layer.input_dim * 4 * layer.units
                + 2.0 * layer.units * 4 * layer.units
                + 10.0 * layer.units
            )
            total += per_step * model.time_steps
        previous = layer.units
    return total


@dataclass
class InferenceCostModel:
    """Linear cost model: ``seconds = a * tuples * flops + b * tuples + c``.

    One instance per approach (the coefficients of the native operator
    differ from ML-To-SQL's by orders of magnitude — that *is* the
    paper's result).  Calibrate with a few (tuples, flops_per_tuple,
    seconds) observations, then predict.
    """

    coefficients: np.ndarray | None = field(default=None)

    def calibrate(
        self,
        observations: list[tuple[int, float, float]],
    ) -> None:
        """Least-squares fit from (tuples, flops_per_tuple, seconds)."""
        if len(observations) < 3:
            raise ModelJoinError(
                "calibration needs at least 3 observations"
            )
        rows = np.array(
            [
                [tuples * flops, tuples, 1.0]
                for tuples, flops, _ in observations
            ],
            dtype=np.float64,
        )
        targets = np.array(
            [seconds for _, _, seconds in observations], dtype=np.float64
        )
        solution, *_ = np.linalg.lstsq(rows, targets, rcond=None)
        self.coefficients = solution

    def estimate(
        self,
        metadata_or_model: ModelMetadata | Sequential,
        tuples: int,
    ) -> CostEstimate:
        """Predict the cost of inferring *tuples* rows."""
        if isinstance(metadata_or_model, ModelMetadata):
            flops = flops_per_tuple_of_metadata(metadata_or_model)
        else:
            flops = flops_per_tuple_of_model(metadata_or_model)
        predicted = None
        if self.coefficients is not None:
            a, b, c = self.coefficients
            predicted = float(a * tuples * flops + b * tuples + c)
        return CostEstimate(
            flops_per_tuple=flops, tuples=tuples, predicted_seconds=predicted
        )
