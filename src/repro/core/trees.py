"""Decision trees to SQL (the paper's §3/§4 extension point).

The paper notes that ML-To-SQL's approach of "stored parameters in the
relational table representation and extensible building blocks for SQL
code generation" also covers the existing decision-tree translations
(Sattler & Dunemann [33], Raven's tree translation).  This module
implements that adjacent technique: a small CART-style decision tree
trained in Python and translated into a single nested ``CASE``
expression — inference then runs as one projection, no joins at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass
class TreeNode:
    """A binary split node (leaves have ``feature is None``)."""

    feature: int | None = None
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeRegressor:
    """CART regression tree (variance reduction, depth-limited)."""

    def __init__(self, max_depth: int = 4, min_samples: int = 4):
        if max_depth < 1:
            raise ModelError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples = max(min_samples, 2)
        self.root: TreeNode | None = None
        self.n_features: int | None = None

    def fit(
        self, inputs: np.ndarray, targets: np.ndarray
    ) -> "DecisionTreeRegressor":
        inputs = np.asarray(inputs, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if inputs.ndim != 2 or len(inputs) != len(targets):
            raise ModelError("fit expects (n, k) inputs and (n,) targets")
        self.n_features = inputs.shape[1]
        self.root = self._grow(inputs, targets, depth=0)
        return self

    def _grow(
        self, inputs: np.ndarray, targets: np.ndarray, depth: int
    ) -> TreeNode:
        node = TreeNode(value=float(targets.mean()))
        if depth >= self.max_depth or len(targets) < self.min_samples:
            return node
        best = self._best_split(inputs, targets)
        if best is None:
            return node
        feature, threshold = best
        mask = inputs[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(inputs[mask], targets[mask], depth + 1)
        node.right = self._grow(inputs[~mask], targets[~mask], depth + 1)
        return node

    @staticmethod
    def _best_split(
        inputs: np.ndarray, targets: np.ndarray
    ) -> tuple[int, float] | None:
        best_score = np.inf
        best: tuple[int, float] | None = None
        total = len(targets)
        for feature in range(inputs.shape[1]):
            values = inputs[:, feature]
            candidates = np.unique(values)
            if len(candidates) < 2:
                continue
            midpoints = (candidates[:-1] + candidates[1:]) / 2.0
            for threshold in midpoints:
                mask = values <= threshold
                left_count = int(mask.sum())
                if left_count == 0 or left_count == total:
                    continue
                left_var = targets[mask].var()
                right_var = targets[~mask].var()
                score = (
                    left_count * left_var + (total - left_count) * right_var
                )
                if score < best_score:
                    best_score = score
                    best = (feature, float(threshold))
        return best

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise ModelError("predict before fit")
        inputs = np.asarray(inputs, dtype=np.float64)
        return np.array(
            [self._predict_row(row) for row in inputs], dtype=np.float64
        )

    def _predict_row(self, row: np.ndarray) -> float:
        node = self.root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def depth(self) -> int:
        def walk(node: TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    def leaf_count(self) -> int:
        def walk(node: TreeNode | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root)


def tree_to_sql(
    tree: DecisionTreeRegressor, feature_columns: list[str]
) -> str:
    """Translate a fitted tree into one nested CASE expression."""
    if tree.root is None:
        raise ModelError("translate after fit")
    if tree.n_features != len(feature_columns):
        raise ModelError(
            f"tree uses {tree.n_features} features, "
            f"{len(feature_columns)} column names given"
        )

    def walk(node: TreeNode) -> str:
        if node.is_leaf:
            return repr(float(node.value))
        column = feature_columns[node.feature]
        return (
            f"CASE WHEN {column} <= {node.threshold!r} "
            f"THEN {walk(node.left)} ELSE {walk(node.right)} END"
        )

    return walk(tree.root)


def tree_inference_query(
    tree: DecisionTreeRegressor,
    fact_table: str,
    id_column: str,
    feature_columns: list[str],
    prediction_name: str = "prediction",
) -> str:
    """Full inference SELECT for a fitted tree."""
    expression = tree_to_sql(tree, feature_columns)
    return (
        f"SELECT {id_column}, {expression} AS {prediction_name} "
        f"FROM {fact_table}"
    )
