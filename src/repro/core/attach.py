"""Wiring: attach the paper's operators to a database instance."""

from __future__ import annotations

from repro.db.engine import Database


def attach(database: Database) -> Database:
    """Install the native ModelJoin operator factory on *database*.

    After attaching, ``SELECT * FROM t MODEL JOIN m`` works against
    models registered in the catalog (paper Sections 1 and 5.5).

    Also installs the engine-lifetime :class:`ModelCache`: finalized
    model builds are reused across queries, and the catalog's
    invalidation listeners keep the cache correct under DROP TABLE and
    model re-registration (INSERTs are handled by version-aware cache
    keys).  Returns the database for chaining.
    """
    from repro.core.cost.selector import CostBasedVariantSelector
    from repro.core.modeljoin.cache import ModelCache
    from repro.core.modeljoin.operator import modeljoin_operator_factory

    if database.variant_selector is None:
        # Cost-based ModelJoin variant selection: the planner ranks all
        # execution variants per query (EXPLAIN shows the ranking; the
        # resilience layer uses it as the fallback chain).
        database.set_variant_selector(CostBasedVariantSelector())
    if database.model_cache is None:
        cache = ModelCache()
        database.model_cache = cache
        database.catalog.add_invalidation_listener(cache.invalidate_table)
    if getattr(database.model_cache, "metrics", None) is None:
        # Integrity quarantines report through the engine's registry.
        database.model_cache.metrics = database.metrics
    if (
        database.storage is not None
        and database.model_cache_persistence is None
    ):
        # Persistent database: restore the warm model cache saved by
        # the last checkpoint (restored table uids/versions make the
        # persisted keys match), and register the save hook that
        # Database.checkpoint() calls after the catalog manifest.
        from repro.core.modeljoin.persistence import ModelCachePersistence

        persistence = ModelCachePersistence(
            database.model_cache, database.storage.models_dir
        )
        persistence.load()
        database.model_cache_persistence = persistence

    def factory(**kwargs):
        kwargs.setdefault("model_cache", database.model_cache)
        return modeljoin_operator_factory(**kwargs)

    database.set_modeljoin_factory(factory)
    return database


def connect(
    parallelism: int = 1,
    vector_size: int = 1024,
    planner_options=None,
    tracer=None,
    metrics=None,
    task_retries: int = 2,
    path: str | None = None,
    buffer_pool_bytes: int | None = None,
    slow_query_seconds: float | None = None,
    query_log_capacity: int = 256,
    collect_query_log: bool = True,
    shards: int = 0,
    shard_workers: int = 1,
) -> Database:
    """Create a new database with the full repro feature set attached.

    *tracer* / *metrics* (see :mod:`repro.db.tracing`) let several
    engines share one span timeline and one metrics registry — the
    bench sweeps pass a shared tracer so every swept configuration
    lands in a single exported trace.  *task_retries* bounds how often
    a crashed partition pipeline is retried before the query fails
    (see :doc:`docs/ROBUSTNESS`).

    *path* opens a persistent database (see docs/STORAGE.md): tables,
    registered models and the warm model cache restore from the
    directory, and ``close()`` checkpoints back to it atomically.
    *buffer_pool_bytes* caps the disk scans' decoded-block cache.
    *planner_options* (a :class:`~repro.db.planner.PlannerOptions`)
    tunes planning — e.g. ``use_compiled_kernels=False`` for the
    interpreted baseline (docs/COMPILE.md).

    *slow_query_seconds* marks queries at or above that latency as
    slow in ``system.queries``; *query_log_capacity* sizes the
    in-memory query-log ring buffer; *collect_query_log=False*
    disables per-query profile collection entirely (see
    docs/OBSERVABILITY.md).

    *shards* > 0 switches on multiprocess sharded execution: every
    partitioned table is hash-sharded across that many worker
    processes and queries over it are dispatched, gathered and merged
    by the coordinator; *shard_workers* sets each shard's thread
    parallelism.  ``shards=0`` (the default) is single-process mode,
    bit-identical to earlier releases.  See docs/SHARDING.md.
    """
    return attach(
        Database(
            parallelism=parallelism,
            vector_size=vector_size,
            planner_options=planner_options,
            tracer=tracer,
            metrics=metrics,
            task_retries=task_retries,
            path=path,
            buffer_pool_bytes=buffer_pool_bytes,
            slow_query_seconds=slow_query_seconds,
            query_log_capacity=query_log_capacity,
            collect_query_log=collect_query_log,
            shards=shards,
            shard_workers=shard_workers,
        )
    )
