"""Wiring: attach the paper's operators to a database instance."""

from __future__ import annotations

from repro.db.engine import Database


def attach(database: Database) -> Database:
    """Install the native ModelJoin operator factory on *database*.

    After attaching, ``SELECT * FROM t MODEL JOIN m`` works against
    models registered in the catalog (paper Sections 1 and 5.5).
    Returns the database for chaining.
    """
    from repro.core.modeljoin.operator import modeljoin_operator_factory

    database.set_modeljoin_factory(modeljoin_operator_factory)
    return database


def connect(
    parallelism: int = 1,
    vector_size: int = 1024,
) -> Database:
    """Create a new database with the full repro feature set attached."""
    return attach(
        Database(parallelism=parallelism, vector_size=vector_size)
    )
