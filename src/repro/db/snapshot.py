"""MVCC-lite snapshots: pinned, immutable views of a database.

A :class:`DatabaseSnapshot` captures, at one instant, an immutable view
of every user table — a :class:`FrozenTable` whose partitions hold a
frozen list of sealed blocks — inside a read-only
:class:`~repro.db.catalog.Catalog` clone that the planner consumes
exactly like the live catalog.  Because sealed blocks are immutable
(memory blocks by construction, disk blocks because the backing
generation directory is *pinned*), a query planned against the snapshot
sees bit-exactly the state at capture time no matter how many appends,
checkpoints or generation publishes happen concurrently:

* **Memory tables** — :meth:`~repro.db.table.Partition.blocks` seals
  the pending buffer and returns the sealed blocks; appends only ever
  add *new* blocks, so the captured list is a stable prefix.
* **Disk tables** — the snapshot pins the current checkpoint
  generation in the :class:`~repro.db.storage.store.StorageEngine`
  (refcounted).  A later checkpoint publishes a *fresh* generation
  directory and retires the old one, but the storage layer defers
  closing and deleting a pinned generation until its last pin drops
  (see ``StorageEngine.unpin_generations``), so the snapshot's block
  readers stay valid for the snapshot's whole lifetime.

Capture happens under the engine's ``catalog_lock`` — the same lock
writers hold for the whole mutating statement and ``checkpoint`` holds
while swapping partitions — so a snapshot can never observe a write or
a generation publish half-applied (no torn reads across partitions or
tables).

The serving layer (:mod:`repro.db.serve`) gives every admitted read
query such a snapshot; release is mandatory (use the context manager)
so pinned generations are garbage-collected promptly.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.db.catalog import Catalog
from repro.db.column import ColumnRange
from repro.db.vector import VECTOR_SIZE, VectorBatch
from repro.errors import ExecutionError


class FrozenPartition:
    """An immutable view of one partition's sealed blocks."""

    def __init__(self, schema, blocks: list):
        self.schema = schema
        self._blocks = list(blocks)
        self._rows = sum(block.length for block in self._blocks)

    @property
    def row_count(self) -> int:
        return self._rows

    def blocks(self) -> list:
        return list(self._blocks)

    def nominal_bytes(self) -> int:
        return sum(block.nominal_bytes() for block in self._blocks)

    def append(self, batch: VectorBatch) -> None:
        raise ExecutionError("snapshot partitions are read-only")

    def scan(
        self,
        ranges: list[ColumnRange] | None = None,
        vector_size: int = VECTOR_SIZE,
    ) -> Iterator[VectorBatch]:
        ranges = ranges or []
        for block in self._blocks:
            if ranges and not block.may_match(self.schema, ranges):
                continue
            batch = block.to_batch(self.schema)
            for start in range(0, len(batch), vector_size):
                yield batch.slice(start, start + vector_size)


class FrozenTable:
    """A read-only table view duck-typing :class:`~repro.db.table.Table`.

    Carries the source table's ``uid``/``version``, so version-keyed
    caches (the ModelJoin build cache, compiled epilogue kernels) hit
    for snapshot scans exactly as they do for live scans.
    """

    def __init__(self, table):
        self.name = table.name
        self.schema = table.schema
        self.partition_key = table.partition_key
        self.sort_key = table.sort_key
        self.uid = table.uid
        self.version = table.version
        self.disk_resident = table.disk_resident
        self.partitions = [
            FrozenPartition(table.schema, partition.blocks())
            for partition in table.partitions
        ]

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def row_count(self) -> int:
        return sum(partition.row_count for partition in self.partitions)

    def nominal_bytes(self) -> int:
        return sum(
            partition.nominal_bytes() for partition in self.partitions
        )

    def append_batch(self, batch: VectorBatch) -> None:
        raise ExecutionError(
            f"table {self.name!r} is a read-only snapshot; "
            "write through the live catalog"
        )

    def append_columns(self, **columns) -> None:
        raise ExecutionError(
            f"table {self.name!r} is a read-only snapshot; "
            "write through the live catalog"
        )

    def append_rows(self, rows: list[tuple]) -> None:
        raise ExecutionError(
            f"table {self.name!r} is a read-only snapshot; "
            "write through the live catalog"
        )

    def scan_partition(
        self,
        partition_index: int,
        ranges: list[ColumnRange] | None = None,
        vector_size: int = VECTOR_SIZE,
    ) -> Iterator[VectorBatch]:
        if not 0 <= partition_index < self.num_partitions:
            raise ExecutionError(
                f"table {self.name!r} has no partition {partition_index}"
            )
        return self.partitions[partition_index].scan(ranges, vector_size)

    def scan(
        self,
        ranges: list[ColumnRange] | None = None,
        vector_size: int = VECTOR_SIZE,
    ) -> Iterator[VectorBatch]:
        for partition in self.partitions:
            yield from partition.scan(ranges, vector_size)


class DatabaseSnapshot:
    """A pinned point-in-time view of a database's user tables.

    ``snapshot.catalog`` is a read-only :class:`Catalog` clone whose
    tables are :class:`FrozenTable` views; model registrations and the
    ``system.*`` provider pass through (system tables always render
    live state — they are observability, not data).  Call
    :meth:`release` (or use the snapshot as a context manager) when the
    query finishes, so pinned checkpoint generations can be
    garbage-collected.

    Construction must happen under ``database.catalog_lock`` —
    :meth:`repro.db.engine.Database.snapshot` does this for you.
    """

    def __init__(self, database):
        live = database.catalog
        self._storage = database.storage
        self._pin = (
            self._storage.pin_generations()
            if self._storage is not None
            else None
        )
        self.catalog = Catalog(
            tables={
                key: FrozenTable(table)
                for key, table in live.tables.items()
            },
            models=dict(live.models),
            # Version bindings are copied too, so `MODEL JOIN m` (and
            # `... VERSION k`) resolved against this snapshot keep the
            # versions current at capture time even while a concurrent
            # retrain publishes (records are frozen dataclasses).
            model_versions={
                name: dict(versions)
                for name, versions in live.model_versions.items()
            },
            current_versions=dict(live.current_versions),
            system_schema=live.system_schema,
        )
        self._released = False

    def release(self) -> None:
        """Unpin the snapshot's checkpoint generations (idempotent)."""
        if self._released:
            return
        self._released = True
        if self._pin is not None:
            self._storage.unpin_generations(self._pin)

    def __enter__(self) -> "DatabaseSnapshot":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()
