"""Resilience primitives: deadlines, circuit breakers, backoff.

These are the low-level building blocks of the resilient execution
layer (see ``docs/ROBUSTNESS.md``):

* :class:`CancellationToken` — cooperative per-query deadlines.  The
  engine attaches a token to the
  :class:`~repro.db.operators.base.ExecutionContext`; the morsel loop,
  operator ``next()`` loops and device kernels call :meth:`check`,
  which raises :class:`~repro.errors.QueryTimeoutError` once the
  deadline passes.  Cancellation is *cooperative*: a worker notices at
  its next checkpoint, finishes nothing further, and the pool drains
  cleanly (no thread is ever killed).

* :class:`CircuitBreaker` — counts consecutive failures of a resource
  (a device, a fallback target); after *failure_threshold* failures the
  breaker opens and callers skip the resource for *reset_seconds*, then
  a trial call is allowed again (half-open behavior collapses into
  "closed after the cool-down").

* :func:`backoff_seconds` — bounded exponential backoff schedule shared
  by the worker-pool retry layer and the ODBC client (the client adds
  deterministic-free jitter on top).
"""

from __future__ import annotations

import threading
import time

from repro.errors import QueryCancelledError, QueryTimeoutError


class CancellationToken:
    """Cooperative cancellation with an optional wall-clock deadline."""

    __slots__ = ("deadline", "_cancelled", "reason")

    def __init__(self, deadline: float | None = None):
        #: absolute ``time.perf_counter()`` deadline (``None`` = never)
        self.deadline = deadline
        self._cancelled = False
        self.reason = ""

    @classmethod
    def with_timeout(cls, seconds: float) -> "CancellationToken":
        """A token that expires *seconds* from now."""
        return cls(deadline=time.perf_counter() + seconds)

    def cancel(self, reason: str = "query cancelled") -> None:
        """Cancel explicitly (checked at the same checkpoints)."""
        self.reason = reason
        self._cancelled = True

    @property
    def expired(self) -> bool:
        if self._cancelled:
            return True
        return (
            self.deadline is not None
            and time.perf_counter() > self.deadline
        )

    def remaining_seconds(self) -> float | None:
        if self.deadline is None:
            return None
        return self.deadline - time.perf_counter()

    def check(self) -> None:
        """Raise :class:`QueryTimeoutError` if cancelled or past due.

        An explicit :meth:`cancel` surfaces as the more specific
        :class:`~repro.errors.QueryCancelledError` (a subclass), so the
        query log can distinguish ``cancelled`` from ``timeout`` while
        every existing deadline checkpoint keeps working unchanged.
        """
        if self._cancelled:
            raise QueryCancelledError(self.reason or "query cancelled")
        if (
            self.deadline is not None
            and time.perf_counter() > self.deadline
        ):
            raise QueryTimeoutError(
                "query exceeded its deadline "
                f"(over by {-self.remaining_seconds():.3f}s)"
            )


class CircuitBreaker:
    """Skip a repeatedly-failing resource for a cool-down period."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        clock=time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self.trips = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._consecutive_failures >= self.failure_threshold
                and self._opened_at is None
            ):
                self._opened_at = self._clock()
                self.trips += 1

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._opened_at = None

    @property
    def consecutive_failures(self) -> int:
        """Current failure streak (reported by ``system.breakers``)."""
        with self._lock:
            return self._consecutive_failures

    @property
    def is_open(self) -> bool:
        """Open = skip the resource.  Auto-closes after the cool-down
        (the next call is the half-open trial; its failure re-opens)."""
        with self._lock:
            if self._opened_at is None:
                return False
            if self._clock() - self._opened_at >= self.reset_seconds:
                # cool-down elapsed: allow a trial call
                self._opened_at = None
                self._consecutive_failures = self.failure_threshold - 1
                return False
            return True


def breaker_for(
    resource,
    failure_threshold: int = 3,
    reset_seconds: float = 30.0,
) -> CircuitBreaker:
    """The breaker attached to *resource*, created lazily.

    Stored as an attribute on the resource object itself so every
    caller sharing a device instance shares its failure history.
    """
    breaker = getattr(resource, "_repro_breaker", None)
    if breaker is None:
        breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            reset_seconds=reset_seconds,
        )
        resource._repro_breaker = breaker
    return breaker


def backoff_seconds(
    attempt: int, base: float = 0.005, cap: float = 0.25
) -> float:
    """Bounded exponential backoff for retry *attempt* (1-based)."""
    return min(base * (2 ** max(attempt - 1, 0)), cap)
