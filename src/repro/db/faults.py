"""Deterministic, seedable fault injection for resilience testing.

The engine's hot paths contain *fault points* — named sites where a
test, the chaos benchmark, or a ``REPRO_FAULTS`` environment spec can
ask for failures:

========================  ====================================================
site                      fires in
========================  ====================================================
``worker.task``           :class:`repro.db.parallel.WorkerPool`, once per
                          dispatched task (before the task function runs)
``worker.morsel``         the morsel-driven scan loop, once per stolen morsel
``device.gemm``           :class:`repro.device.gpu.SimulatedGpu` ``gemm``
                          kernels (host kernels are never faulted, so the
                          GPU-to-host fallback escapes the fault)
``odbc.fetch``            :class:`repro.core.client.odbc.OdbcConnection`
                          transfer attempts (fetch and upload)
``cache.load``            :class:`repro.core.modeljoin.cache.ModelCache.get`
                          (corrupt-payload flips bits in the cached model
                          before checksum verification)
``modeljoin.build``       the native ModelJoin's shared model build
                          (cache-miss path, before the model table scan)
``io.block_read``         :class:`repro.db.storage.blockio.ColumnFileReader`
                          block reads (disk-resident scans); the reader
                          itself retries with bounded backoff, so scans
                          survive transient disk faults without help from
                          the pipeline retry layer
``compile.kernel``        :class:`repro.db.compile.kernels.FusedKernel` and
                          :class:`~repro.db.compile.kernels.CompiledExpr`
                          invocations (inside the error-wrapping scope, so
                          an injected fault surfaces as a
                          :class:`~repro.errors.KernelExecutionError` and
                          exercises the engine's one-shot interpreted
                          fallback + compile circuit breaker)
``serve.admit``           :meth:`repro.db.serve.admission.AdmissionQueue.
                          admit`, once per admission attempt (an injected
                          fault surfaces as a
                          :class:`~repro.errors.QueryRejectedError`, so a
                          chaos-faulted admission behaves exactly like a
                          deterministic shed: the client gets an immediate
                          rejection, never a hang)
``train.step``            :class:`repro.db.train.operator.TrainOperator`,
                          once per minibatch *before* the forward pass, so
                          a retried batch reruns against untouched weights
                          (bit-exact retry); retries exhausted fail the
                          whole ``CREATE MODEL`` atomically — no partial
                          model table, no catalog entry
========================  ====================================================

Policies: :meth:`FaultInjector.raise_once` (raise the first *count*
times), :meth:`FaultInjector.raise_with_probability`,
:meth:`FaultInjector.delay_ms` (inject latency instead of failure) and
:meth:`FaultInjector.corrupt_payload` (sites that own a payload consult
:func:`corrupts` and mutate it themselves).

**Zero overhead when disabled** — the hot paths guard every site with a
single module-attribute falsy check::

    if faults.ACTIVE is not None:
        faults.ACTIVE.fire("worker.task")

so a build without faults installed pays one ``LOAD_ATTR`` +
``POP_JUMP_IF`` per site visit and nothing else; the chaos benchmark
(``python -m repro.bench chaos``) asserts the fault-free run stays
within the PR 2 tracing-overhead gate.

**Determinism** — each site draws from its own ``random.Random`` seeded
from ``(seed, crc32(site))``, so the *k*-th draw at a site is a pure
function of the seed regardless of which thread happens to make it.
Under a multi-threaded pool the set of faulted calls is therefore
deterministic in aggregate (same count over the same number of visits)
even though thread interleaving may move a fault between workers.

This module is a leaf: it imports only :mod:`repro.errors`, so any
layer (device, client, operators) may use it without cycles.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random

from repro.errors import InjectedFaultError, ReproError

#: the sites wired into the engine (free-form sites are allowed too —
#: this tuple exists for documentation and spec validation hints)
KNOWN_SITES = (
    "worker.task",
    "worker.morsel",
    "device.gemm",
    "odbc.fetch",
    "cache.load",
    "modeljoin.build",
    "io.block_read",
    "compile.kernel",
    "serve.admit",
    "train.step",
)

RAISE_ONCE = "once"
RAISE_WITH_PROBABILITY = "probability"
DELAY_MS = "delay"
CORRUPT_PAYLOAD = "corrupt"


@dataclass
class FaultPolicy:
    """One armed behavior at a site (a site may stack several)."""

    kind: str
    probability: float = 1.0
    delay_ms: float = 0.0
    #: remaining raises for count-limited policies (``None`` = unlimited)
    remaining: int | None = None

    def describe(self) -> str:
        if self.kind == RAISE_ONCE:
            return f"once(remaining={self.remaining})"
        if self.kind == RAISE_WITH_PROBABILITY:
            return f"prob({self.probability})"
        if self.kind == DELAY_MS:
            return f"delay({self.delay_ms}ms, p={self.probability})"
        return f"corrupt(p={self.probability})"


@dataclass
class _Site:
    policies: list[FaultPolicy] = field(default_factory=list)
    rng: Random = field(default_factory=Random)
    visits: int = 0
    raised: int = 0
    delayed: int = 0
    corrupted: int = 0


class FaultInjector:
    """A registry of fault policies keyed by site name.

    Thread-safe; all decisions happen under one lock (the fault path is
    not a hot path — disabled sites never reach the injector at all).
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._lock = threading.Lock()
        self._sites: dict[str, _Site] = {}

    # ------------------------------------------------------------------
    # policy registration
    # ------------------------------------------------------------------
    def _site(self, site: str) -> _Site:
        entry = self._sites.get(site)
        if entry is None:
            entry = _Site(
                rng=Random((self.seed << 32) ^ zlib.crc32(site.encode()))
            )
            self._sites[site] = entry
        return entry

    def register(self, site: str, policy: FaultPolicy) -> "FaultInjector":
        with self._lock:
            self._site(site).policies.append(policy)
        return self

    def raise_once(self, site: str, count: int = 1) -> "FaultInjector":
        """Raise :class:`InjectedFaultError` the first *count* visits."""
        return self.register(
            site, FaultPolicy(RAISE_ONCE, remaining=count)
        )

    def raise_with_probability(
        self, site: str, probability: float
    ) -> "FaultInjector":
        return self.register(
            site,
            FaultPolicy(RAISE_WITH_PROBABILITY, probability=probability),
        )

    def delay_ms(
        self, site: str, delay_ms: float, probability: float = 1.0
    ) -> "FaultInjector":
        """Sleep *delay_ms* (with *probability*) instead of failing."""
        return self.register(
            site,
            FaultPolicy(
                DELAY_MS, probability=probability, delay_ms=delay_ms
            ),
        )

    def corrupt_payload(
        self, site: str, probability: float = 1.0
    ) -> "FaultInjector":
        """Arm payload corruption; the site calls :meth:`corrupts`."""
        return self.register(
            site, FaultPolicy(CORRUPT_PAYLOAD, probability=probability)
        )

    # ------------------------------------------------------------------
    # fault points
    # ------------------------------------------------------------------
    def fire(self, site: str) -> None:
        """Visit a site: may sleep (delay policies) or raise.

        Raises :class:`InjectedFaultError` when a raise policy trips.
        Corrupt policies are ignored here — they only answer
        :meth:`corrupts`.
        """
        sleep_seconds = 0.0
        error: InjectedFaultError | None = None
        with self._lock:
            entry = self._sites.get(site)
            if entry is None:
                return
            entry.visits += 1
            for policy in entry.policies:
                if policy.kind == DELAY_MS:
                    if (
                        policy.probability >= 1.0
                        or entry.rng.random() < policy.probability
                    ):
                        sleep_seconds += policy.delay_ms / 1000.0
                        entry.delayed += 1
                elif policy.kind == RAISE_ONCE:
                    if policy.remaining and policy.remaining > 0:
                        policy.remaining -= 1
                        entry.raised += 1
                        error = InjectedFaultError(site)
                        break
                elif policy.kind == RAISE_WITH_PROBABILITY:
                    if entry.rng.random() < policy.probability:
                        entry.raised += 1
                        error = InjectedFaultError(site)
                        break
        if sleep_seconds > 0.0:
            time.sleep(sleep_seconds)
        if error is not None:
            raise error

    def corrupts(self, site: str) -> bool:
        """Whether the site should corrupt its payload on this visit."""
        with self._lock:
            entry = self._sites.get(site)
            if entry is None:
                return False
            entry.visits += 1
            for policy in entry.policies:
                if policy.kind != CORRUPT_PAYLOAD:
                    continue
                if policy.remaining is not None:
                    if policy.remaining <= 0:
                        continue
                    policy.remaining -= 1
                    entry.corrupted += 1
                    return True
                if (
                    policy.probability >= 1.0
                    or entry.rng.random() < policy.probability
                ):
                    entry.corrupted += 1
                    return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def statistics(self) -> dict:
        """Per-site visit/fault counts, JSON-friendly."""
        with self._lock:
            return {
                site: {
                    "policies": [p.describe() for p in entry.policies],
                    "visits": entry.visits,
                    "raised": entry.raised,
                    "delayed": entry.delayed,
                    "corrupted": entry.corrupted,
                }
                for site, entry in self._sites.items()
            }

    def total_faults(self) -> int:
        with self._lock:
            return sum(
                entry.raised + entry.delayed + entry.corrupted
                for entry in self._sites.values()
            )


#: the installed injector; ``None`` means fault injection is disabled
#: and every fault point reduces to one falsy check
ACTIVE: FaultInjector | None = None


def install(injector: FaultInjector) -> FaultInjector:
    """Install *injector* as the process-wide active injector."""
    global ACTIVE
    ACTIVE = injector
    return injector


def uninstall() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def active(injector: FaultInjector):
    """Context manager: install on entry, uninstall on exit."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


# ----------------------------------------------------------------------
# REPRO_FAULTS environment hook
# ----------------------------------------------------------------------
ENV_VAR = "REPRO_FAULTS"


def parse_spec(spec: str) -> FaultInjector:
    """Build an injector from a ``REPRO_FAULTS`` spec string.

    Grammar (entries separated by ``,``)::

        seed=<int>
        <site>=once[:<count>]
        <site>=prob:<p>
        <site>=delay:<ms>[:<p>]
        <site>=corrupt[:<p>]

    Example: ``seed=7,worker.task=prob:0.1,odbc.fetch=once:2``.
    """
    entries = [part.strip() for part in spec.split(",") if part.strip()]
    seed = 0
    policies: list[tuple[str, str]] = []
    for entry in entries:
        if "=" not in entry:
            raise ReproError(
                f"bad {ENV_VAR} entry {entry!r}: expected key=value"
            )
        key, value = entry.split("=", 1)
        key, value = key.strip(), value.strip()
        if key == "seed":
            seed = int(value)
        else:
            policies.append((key, value))
    injector = FaultInjector(seed=seed)
    for site, value in policies:
        parts = value.split(":")
        kind = parts[0]
        if kind == "once":
            count = int(parts[1]) if len(parts) > 1 else 1
            injector.raise_once(site, count=count)
        elif kind == "prob":
            injector.raise_with_probability(site, float(parts[1]))
        elif kind == "delay":
            probability = float(parts[2]) if len(parts) > 2 else 1.0
            injector.delay_ms(
                site, float(parts[1]), probability=probability
            )
        elif kind == "corrupt":
            probability = float(parts[1]) if len(parts) > 1 else 1.0
            injector.corrupt_payload(site, probability=probability)
        else:
            raise ReproError(
                f"bad {ENV_VAR} policy {value!r} for site {site!r} "
                "(want once/prob/delay/corrupt)"
            )
    return injector


def install_from_env(environ=os.environ) -> FaultInjector | None:
    """Install an injector from ``$REPRO_FAULTS`` if set (else no-op).

    Lets any tier-1 test run or benchmark execute under a fault spec::

        REPRO_FAULTS='seed=7,worker.task=prob:0.05' \\
            PYTHONPATH=src python -m pytest -q
    """
    spec = environ.get(ENV_VAR)
    if not spec:
        return None
    return install(parse_spec(spec))
