"""CSV import/export for the engine.

Real deployments load fact tables from files; these helpers keep the
examples and benchmarks honest about that path and give the engine a
minimal bulk-loading story (type-checked against the table schema,
loaded in vector-sized chunks).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.db.engine import Database, Result
from repro.db.schema import Schema
from repro.db.table import Table
from repro.db.types import SqlType
from repro.errors import TypeMismatchError


def _parse_value(text: str, sql_type: SqlType):
    if sql_type is SqlType.INTEGER:
        return int(text)
    if sql_type in (SqlType.FLOAT, SqlType.DOUBLE):
        return float(text)
    if sql_type is SqlType.BOOLEAN:
        lowered = text.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
        raise TypeMismatchError(f"not a boolean: {text!r}")
    return text


def load_csv(
    database: Database,
    table_name: str,
    path: str | Path,
    has_header: bool = True,
    chunk_rows: int = 8192,
) -> int:
    """Append the rows of a CSV file to an existing table.

    With a header, columns are matched by name (any order); without,
    the file must list the columns in schema order.  Returns the number
    of rows loaded.

    The loader is columnar end to end: parsed values accumulate in one
    list per column and every *chunk_rows* rows are flushed as typed
    arrays straight into the table's block builders — no row tuples are
    materialized.  On a persistent table the chunks land in the append
    overlay and the next checkpoint streams them through the block
    writer (see docs/STORAGE.md).
    """
    table: Table = database.table(table_name)
    schema: Schema = table.schema
    loaded = 0
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        positions = list(range(len(schema)))
        if has_header:
            header = next(reader, None)
            if header is None:
                return 0
            positions = [schema.position_of(name) for name in header]
            if sorted(positions) != list(range(len(schema))):
                raise TypeMismatchError(
                    f"CSV header {header} does not cover the schema "
                    f"{list(schema.names)}"
                )
        types = [column.sql_type for column in schema.columns]
        columns: list[list] = [[] for _ in types]
        pending = 0

        def flush() -> None:
            nonlocal pending, loaded
            table.append_columns(
                **{
                    column.name: np.array(
                        values, dtype=column.sql_type.numpy_dtype
                    )
                    for column, values in zip(schema.columns, columns)
                }
            )
            loaded += pending
            pending = 0
            for values in columns:
                values.clear()

        for row in reader:
            if len(row) != len(positions):
                raise TypeMismatchError(
                    f"CSV row has {len(row)} fields, expected "
                    f"{len(positions)}"
                )
            for field_text, position in zip(row, positions):
                columns[position].append(
                    _parse_value(field_text, types[position])
                )
            pending += 1
            if pending >= chunk_rows:
                flush()
        if pending:
            flush()
    return loaded


def export_csv(
    result_or_database: Result | Database,
    path: str | Path,
    query: str | None = None,
    include_header: bool = True,
) -> int:
    """Write a query result (or an already materialized Result) as CSV.

    Either pass a :class:`Result`, or a :class:`Database` plus *query*.
    Returns the number of data rows written.
    """
    if isinstance(result_or_database, Database):
        if query is None:
            raise TypeMismatchError("export_csv needs a query")
        result = result_or_database.execute(query)
    else:
        result = result_or_database
    written = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if include_header:
            writer.writerow(result.schema.names)
        for batch in result.batches:
            for row in batch.to_rows():
                writer.writerow(
                    [
                        format(value, ".9g")
                        if isinstance(value, (float, np.floating))
                        else value
                        for value in row
                    ]
                )
                written += 1
    return written
