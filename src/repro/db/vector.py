"""The unit of vectorized execution: a batch of column vectors.

Mirroring x100's execution model, operators exchange
:class:`VectorBatch` objects — a small set of equally long NumPy arrays,
one per column, at most ``VECTOR_SIZE`` values long (1024 by default, as
in the paper's experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.schema import Schema
from repro.errors import ExecutionError

#: Default number of tuples per execution vector (paper Section 6.1).
VECTOR_SIZE = 1024


@dataclass
class VectorBatch:
    """A horizontal slice of a relation in columnar layout."""

    schema: Schema
    arrays: list[np.ndarray]

    def __post_init__(self) -> None:
        if len(self.arrays) != len(self.schema):
            raise ExecutionError(
                f"batch has {len(self.arrays)} arrays for "
                f"{len(self.schema)} schema columns"
            )
        lengths = {len(array) for array in self.arrays}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged batch: column lengths {lengths}")

    @classmethod
    def empty(cls, schema: Schema) -> "VectorBatch":
        arrays = [
            np.empty(0, dtype=column.sql_type.numpy_dtype)
            for column in schema
        ]
        return cls(schema, arrays)

    @classmethod
    def from_dict(
        cls, schema: Schema, columns: dict[str, np.ndarray]
    ) -> "VectorBatch":
        """Build a batch from named arrays, coercing to storage dtypes."""
        arrays = []
        for column in schema:
            values = np.asarray(columns[column.name])
            arrays.append(
                values.astype(column.sql_type.numpy_dtype, copy=False)
            )
        return cls(schema, arrays)

    def __len__(self) -> int:
        if not self.arrays:
            return 0
        return len(self.arrays[0])

    @property
    def num_rows(self) -> int:
        return len(self)

    def column(self, name: str) -> np.ndarray:
        """The array backing the column named *name*."""
        return self.arrays[self.schema.position_of(name)]

    def column_at(self, position: int) -> np.ndarray:
        return self.arrays[position]

    def with_schema(self, schema: Schema) -> "VectorBatch":
        """Same data, different column names (e.g. after aliasing)."""
        return VectorBatch(schema, self.arrays)

    def filter(self, mask: np.ndarray) -> "VectorBatch":
        """Keep only the rows where *mask* is true."""
        if mask.dtype != np.bool_:
            raise ExecutionError("filter mask must be boolean")
        return VectorBatch(self.schema, [array[mask] for array in self.arrays])

    def take(self, indices: np.ndarray) -> "VectorBatch":
        """Gather rows by position (may repeat or reorder rows)."""
        return VectorBatch(
            self.schema, [array[indices] for array in self.arrays]
        )

    def slice(self, start: int, stop: int) -> "VectorBatch":
        return VectorBatch(
            self.schema, [array[start:stop] for array in self.arrays]
        )

    def concat_columns(self, other: "VectorBatch") -> "VectorBatch":
        """Stitch two equally long batches side by side (join output)."""
        if len(self) != len(other):
            raise ExecutionError(
                f"cannot concat batches of {len(self)} and {len(other)} rows"
            )
        return VectorBatch(
            self.schema.concat(other.schema), self.arrays + other.arrays
        )

    def nominal_bytes(self) -> int:
        """Approximate memory footprint, for the accountant."""
        return sum(
            array.nbytes if array.dtype != object else len(array) * 16
            for array in self.arrays
        )

    def to_rows(self) -> list[tuple]:
        """Materialize as Python row tuples (result delivery / tests)."""
        if not self.arrays:
            return []
        return list(zip(*(array.tolist() for array in self.arrays)))


def concat_batches(schema: Schema, batches: list[VectorBatch]) -> VectorBatch:
    """Vertically concatenate *batches* into one (possibly long) batch."""
    if not batches:
        return VectorBatch.empty(schema)
    arrays = [
        np.concatenate([batch.arrays[i] for batch in batches])
        for i in range(len(schema))
    ]
    return VectorBatch(schema, arrays)


def rebatch(batches: list[VectorBatch], schema: Schema, size: int = VECTOR_SIZE):
    """Yield batches of exactly *size* rows (last one may be shorter).

    Operators that buffer (e.g. aggregation output) use this to restore
    the engine's vector granularity.  Streams with a carry buffer of at
    most ``size - 1`` rows instead of concatenating the whole input, so
    peak memory stays one vector regardless of how many batches arrive
    (*batches* may be any iterable, including a generator).
    """
    if size < 1:
        raise ExecutionError("rebatch size must be positive")
    carry: list[VectorBatch] = []
    carried = 0
    for batch in batches:
        if len(batch) == 0:
            continue
        if not carry and len(batch) == size:
            yield batch  # already aligned: pass through untouched
            continue
        start = 0
        while carried + (len(batch) - start) >= size:
            take = size - carried
            piece = batch.slice(start, start + take)
            if carry:
                carry.append(piece)
                yield concat_batches(schema, carry)
                carry = []
                carried = 0
            else:
                yield piece
            start += take
        if start < len(batch):
            remainder = batch.slice(start, len(batch))
            carry.append(remainder)
            carried += len(remainder)
    if carried:
        yield concat_batches(schema, carry)
