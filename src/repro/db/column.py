"""Block-wise columnar storage with Small Materialized Aggregates.

Tables store their rows as a sequence of *blocks*.  A block holds one
NumPy array per column (all equally long) together with per-column
min/max statistics — the Small Materialized Aggregates of Moerkotte
(a.k.a. MinMax indexes / zone maps) that the paper's Section 4.4 relies
on for block pruning of the model table.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.db.schema import Schema
from repro.db.vector import VectorBatch
from repro.errors import ExecutionError

#: Number of rows per storage block.
BLOCK_SIZE = 4096


@dataclass(frozen=True)
class MinMax:
    """Min/max statistic of one column within one block."""

    minimum: float
    maximum: float

    def may_contain_range(self, low: float | None, high: float | None) -> bool:
        """Whether [min, max] intersects the inclusive range [low, high]."""
        if low is not None and self.maximum < low:
            return False
        if high is not None and self.minimum > high:
            return False
        return True


@dataclass(frozen=True)
class ColumnRange:
    """An inclusive range predicate usable for block pruning."""

    column: str
    low: float | None = None
    high: float | None = None

    def intersect(self, other: "ColumnRange") -> "ColumnRange":
        if self.column.lower() != other.column.lower():
            raise ExecutionError("cannot intersect ranges on different columns")
        low = self.low if other.low is None else (
            other.low if self.low is None else max(self.low, other.low)
        )
        high = self.high if other.high is None else (
            other.high if self.high is None else min(self.high, other.high)
        )
        return ColumnRange(self.column, low, high)


def stats_may_match(
    stats: list[MinMax | None],
    schema: Schema,
    ranges: list[ColumnRange],
) -> bool:
    """SMA check shared by in-memory and disk blocks.

    *stats* is positionally aligned with *schema*; a ``None`` statistic
    (non-numeric column, or unknown) never prunes.
    """
    for predicate in ranges:
        if not schema.has_column(predicate.column):
            continue
        stat = stats[schema.position_of(predicate.column)]
        if stat is None:
            continue
        if not stat.may_contain_range(predicate.low, predicate.high):
            return False
    return True


class Block:
    """An immutable horizontal slice of a partition with SMA stats."""

    __slots__ = ("arrays", "stats", "length")

    def __init__(self, schema: Schema, arrays: list[np.ndarray]):
        lengths = {len(array) for array in arrays}
        if len(lengths) != 1:
            raise ExecutionError(f"ragged block: column lengths {lengths}")
        self.arrays = arrays
        self.length = lengths.pop()
        self.stats: list[MinMax | None] = []
        for column, array in zip(schema, arrays):
            if column.sql_type.is_numeric and self.length > 0:
                self.stats.append(
                    MinMax(float(array.min()), float(array.max()))
                )
            else:
                self.stats.append(None)

    def nominal_bytes(self) -> int:
        return sum(
            array.nbytes if array.dtype != object else len(array) * 16
            for array in self.arrays
        )

    def may_match(self, schema: Schema, ranges: list[ColumnRange]) -> bool:
        """SMA check: can any row of this block satisfy all *ranges*?"""
        return stats_may_match(self.stats, schema, ranges)

    def column_array(self, position: int) -> np.ndarray:
        """The array of one column (the disk block protocol)."""
        return self.arrays[position]

    def to_batch(self, schema: Schema) -> VectorBatch:
        return VectorBatch(schema, self.arrays)


class BlockBuilder:
    """Accumulates appended batches and seals full blocks.

    Rows are buffered until ``BLOCK_SIZE`` of them are available; sealed
    blocks get their SMA statistics computed once and become immutable.
    """

    def __init__(self, schema: Schema, block_size: int = BLOCK_SIZE):
        self.schema = schema
        self.block_size = block_size
        self.blocks: list[Block] = []
        self._pending: list[VectorBatch] = []
        self._pending_rows = 0
        self.row_count = 0
        # Appends and flushes mutate the pending buffer; a broadcast
        # table is scanned by every partition pipeline concurrently, so
        # the first scans may race to seal the final block.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Plan fragments (and the logical scans inside them) must be
        # picklable to ship across shard-process pipes; the lock is
        # process-local state, dropped here and recreated on load.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def append(self, batch: VectorBatch) -> None:
        if len(batch) == 0:
            return
        with self._lock:
            self._pending.append(batch)
            self._pending_rows += len(batch)
            self.row_count += len(batch)
            while self._pending_rows >= self.block_size:
                self._seal(self.block_size)

    def _seal(self, rows: int) -> None:
        """Move the first *rows* buffered rows into a sealed block."""
        taken: list[VectorBatch] = []
        need = rows
        while need > 0:
            batch = self._pending.pop(0)
            if len(batch) <= need:
                taken.append(batch)
                need -= len(batch)
            else:
                taken.append(batch.slice(0, need))
                self._pending.insert(0, batch.slice(need, len(batch)))
                need = 0
        arrays = [
            np.concatenate([batch.arrays[i] for batch in taken])
            for i in range(len(self.schema))
        ]
        self.blocks.append(Block(self.schema, arrays))
        self._pending_rows -= rows

    def flush(self) -> None:
        """Seal whatever is buffered into a final, possibly short block."""
        with self._lock:
            if self._pending_rows > 0:
                self._seal(self._pending_rows)

    def all_blocks(self) -> list[Block]:
        self.flush()
        return self.blocks

    def nominal_bytes(self) -> int:
        sealed = sum(block.nominal_bytes() for block in self.blocks)
        pending = sum(batch.nominal_bytes() for batch in self._pending)
        return sealed + pending
