"""SQL type system of the engine.

The engine supports a deliberately small set of types — the ones the
paper's workloads and the ML-To-SQL generated queries need.  Each SQL type
maps onto a NumPy dtype used for columnar storage and vectorized
execution.  ``FLOAT`` is 4-byte IEEE 754 (the paper stores all model
weights as 4-byte floats, Section 4.1), ``DOUBLE`` is 8-byte.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import TypeMismatchError


class SqlType(enum.Enum):
    """A SQL column type supported by the engine."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    BOOLEAN = "BOOLEAN"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype backing columns of this type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (SqlType.INTEGER, SqlType.FLOAT, SqlType.DOUBLE)

    @property
    def byte_width(self) -> int:
        """Bytes per value; VARCHAR is charged a nominal pointer width."""
        if self is SqlType.VARCHAR:
            return 16
        return self.numpy_dtype.itemsize

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_NUMPY_DTYPES: dict[SqlType, np.dtype] = {
    SqlType.INTEGER: np.dtype(np.int64),
    SqlType.FLOAT: np.dtype(np.float32),
    SqlType.DOUBLE: np.dtype(np.float64),
    SqlType.VARCHAR: np.dtype(object),
    SqlType.BOOLEAN: np.dtype(np.bool_),
}

_TYPE_NAMES: dict[str, SqlType] = {
    "INT": SqlType.INTEGER,
    "INTEGER": SqlType.INTEGER,
    "BIGINT": SqlType.INTEGER,
    "FLOAT": SqlType.FLOAT,
    "FLOAT4": SqlType.FLOAT,
    "REAL": SqlType.FLOAT,
    "DOUBLE": SqlType.DOUBLE,
    "FLOAT8": SqlType.DOUBLE,
    "VARCHAR": SqlType.VARCHAR,
    "TEXT": SqlType.VARCHAR,
    "STRING": SqlType.VARCHAR,
    "BOOLEAN": SqlType.BOOLEAN,
    "BOOL": SqlType.BOOLEAN,
}


def parse_type_name(name: str) -> SqlType:
    """Resolve a SQL type name (as written in DDL) to a :class:`SqlType`.

    Raises :class:`~repro.errors.TypeMismatchError` for unknown names.
    """
    sql_type = _TYPE_NAMES.get(name.upper())
    if sql_type is None:
        raise TypeMismatchError(f"unknown SQL type name: {name!r}")
    return sql_type


def type_of_dtype(dtype: np.dtype) -> SqlType:
    """Map a NumPy dtype onto the engine type that stores it."""
    kind = np.dtype(dtype).kind
    if kind in "iu":
        return SqlType.INTEGER
    if kind == "f":
        return SqlType.FLOAT if np.dtype(dtype).itemsize <= 4 else SqlType.DOUBLE
    if kind == "b":
        return SqlType.BOOLEAN
    if kind in "OUS":
        return SqlType.VARCHAR
    raise TypeMismatchError(f"no SQL type for NumPy dtype {dtype!r}")


def common_numeric_type(left: SqlType, right: SqlType) -> SqlType:
    """The result type of an arithmetic operation between two types.

    Mirrors standard SQL numeric promotion: INTEGER < FLOAT < DOUBLE.
    """
    if not (left.is_numeric and right.is_numeric):
        raise TypeMismatchError(
            f"arithmetic requires numeric operands, got {left} and {right}"
        )
    order = [SqlType.INTEGER, SqlType.FLOAT, SqlType.DOUBLE]
    return order[max(order.index(left), order.index(right))]


def coerce_array(values: np.ndarray, sql_type: SqlType) -> np.ndarray:
    """Cast *values* to the storage dtype of *sql_type*.

    Strings are only accepted for VARCHAR columns; numeric narrowing is
    allowed (the engine, like most engines, truncates on explicit cast).
    """
    target = sql_type.numpy_dtype
    array = np.asarray(values)
    if sql_type is SqlType.VARCHAR:
        if array.dtype.kind not in "OUS":
            raise TypeMismatchError(
                f"cannot store {array.dtype} values in a VARCHAR column"
            )
        return array.astype(object)
    if array.dtype.kind in "OUS":
        raise TypeMismatchError(f"cannot store strings in a {sql_type} column")
    return array.astype(target, copy=False)
