"""Schema descriptors: columns and relation schemas.

A :class:`Schema` describes the shape of any relation flowing through the
engine — base tables as well as intermediate results.  Schemas are
immutable; deriving a new relation produces a new schema object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.types import SqlType
from repro.errors import BindError, DatabaseError


@dataclass(frozen=True)
class Column:
    """A named, typed column of a relation."""

    name: str
    sql_type: SqlType

    def renamed(self, name: str) -> "Column":
        return Column(name, self.sql_type)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name} {self.sql_type}"


@dataclass(frozen=True)
class Schema:
    """An ordered list of columns with unique (case-insensitive) names."""

    columns: tuple[Column, ...]
    _index: dict[str, int] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in index:
                raise DatabaseError(
                    f"duplicate column name {column.name!r} in schema"
                )
            index[key] = position
        object.__setattr__(self, "_index", index)

    @classmethod
    def of(cls, *pairs: tuple[str, SqlType]) -> "Schema":
        """Convenience constructor: ``Schema.of(("id", INTEGER), ...)``."""
        return cls(tuple(Column(name, sql_type) for name, sql_type in pairs))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    @property
    def types(self) -> tuple[SqlType, ...]:
        return tuple(column.sql_type for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def position_of(self, name: str) -> int:
        """Ordinal of the column named *name* (case-insensitive)."""
        position = self._index.get(name.lower())
        if position is None:
            raise BindError(
                f"column {name!r} not found; available: {list(self.names)}"
            )
        return position

    def column(self, name: str) -> Column:
        return self.columns[self.position_of(name)]

    def type_of(self, name: str) -> SqlType:
        return self.column(name).sql_type

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join result: this schema followed by *other*."""
        return Schema(self.columns + other.columns)

    def select(self, names: list[str]) -> "Schema":
        """Schema containing only *names*, in the given order."""
        return Schema(tuple(self.column(name) for name in names))

    def rename_all(self, names: list[str]) -> "Schema":
        """New schema with the same types but the given column names."""
        if len(names) != len(self.columns):
            raise DatabaseError(
                f"rename expects {len(self.columns)} names, got {len(names)}"
            )
        return Schema(
            tuple(
                column.renamed(name)
                for column, name in zip(self.columns, names)
            )
        )

    def row_byte_width(self) -> int:
        """Nominal bytes per row, used by the memory accountant."""
        return sum(column.sql_type.byte_width for column in self.columns)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "(" + ", ".join(str(column) for column in self.columns) + ")"
