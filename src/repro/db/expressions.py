"""Vectorized scalar expression trees.

Expressions are evaluated against a :class:`~repro.db.vector.VectorBatch`
and return a NumPy array of the batch length.  Arithmetic follows SQL
promotion rules (INTEGER < FLOAT < DOUBLE); division always produces a
floating-point result, which keeps generated formulas like
``1/(1+EXP(-x))`` correct without explicit casts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.functions import lookup_function
from repro.db.schema import Schema
from repro.db.types import SqlType, common_numeric_type, type_of_dtype
from repro.db.vector import VectorBatch
from repro.errors import ExecutionError, TypeMismatchError


class Expression:
    """Base class of all scalar expressions."""

    def evaluate(self, batch: VectorBatch) -> np.ndarray:
        raise NotImplementedError

    def output_type(self, schema: Schema) -> SqlType:
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column of the input relation by name."""

    name: str

    def evaluate(self, batch: VectorBatch) -> np.ndarray:
        return batch.column(self.name)

    def output_type(self, schema: Schema) -> SqlType:
        return schema.type_of(self.name)

    def referenced_columns(self) -> set[str]:
        return {self.name.lower()}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value, broadcast to the batch length."""

    value: object
    sql_type: SqlType

    @classmethod
    def of(cls, value: object) -> "Literal":
        if isinstance(value, bool):
            return cls(value, SqlType.BOOLEAN)
        if isinstance(value, int):
            return cls(value, SqlType.INTEGER)
        if isinstance(value, float):
            return cls(value, SqlType.DOUBLE)
        if isinstance(value, str):
            return cls(value, SqlType.VARCHAR)
        raise TypeMismatchError(f"unsupported literal {value!r}")

    def evaluate(self, batch: VectorBatch) -> np.ndarray:
        return np.full(len(batch), self.value, dtype=self.sql_type.numpy_dtype)

    def output_type(self, schema: Schema) -> SqlType:
        return self.sql_type

    def referenced_columns(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        if self.sql_type is SqlType.VARCHAR:
            escaped = str(self.value).replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


_ARITHMETIC = {"+", "-", "*", "/"}
_COMPARISON = {"=", "<>", "<", "<=", ">", ">="}
_LOGICAL = {"AND", "OR"}


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison or logical binary operation."""

    operator: str
    left: Expression
    right: Expression

    def evaluate(self, batch: VectorBatch) -> np.ndarray:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        operator = self.operator
        if operator in _ARITHMETIC:
            if operator == "+":
                return left + right
            if operator == "-":
                return left - right
            if operator == "*":
                return left * right
            # SQL-style: division is always floating point in this engine.
            if left.dtype.kind in "iu" and right.dtype.kind in "iu":
                return left / right  # NumPy true division -> float64
            return left / right
        if operator in _COMPARISON:
            if operator == "=":
                return left == right
            if operator == "<>":
                return left != right
            if operator == "<":
                return left < right
            if operator == "<=":
                return left <= right
            if operator == ">":
                return left > right
            return left >= right
        if operator in _LOGICAL:
            if left.dtype != np.bool_ or right.dtype != np.bool_:
                raise ExecutionError(
                    f"{operator} requires boolean operands"
                )
            if operator == "AND":
                return left & right
            return left | right
        raise ExecutionError(f"unknown binary operator {operator!r}")

    def output_type(self, schema: Schema) -> SqlType:
        left = self.left.output_type(schema)
        right = self.right.output_type(schema)
        if self.operator in _COMPARISON or self.operator in _LOGICAL:
            return SqlType.BOOLEAN
        if self.operator == "/":
            promoted = common_numeric_type(left, right)
            if promoted is SqlType.INTEGER:
                return SqlType.DOUBLE
            return promoted
        return common_numeric_type(left, right)

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary minus or NOT."""

    operator: str
    operand: Expression

    def evaluate(self, batch: VectorBatch) -> np.ndarray:
        values = self.operand.evaluate(batch)
        if self.operator == "-":
            return -values
        if self.operator == "NOT":
            if values.dtype != np.bool_:
                raise ExecutionError("NOT requires a boolean operand")
            return ~values
        raise ExecutionError(f"unknown unary operator {self.operator!r}")

    def output_type(self, schema: Schema) -> SqlType:
        inner = self.operand.output_type(schema)
        if self.operator == "NOT":
            return SqlType.BOOLEAN
        if not inner.is_numeric:
            raise TypeMismatchError(f"cannot negate a {inner}")
        return inner

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        if self.operator == "NOT":
            return f"(NOT {self.operand})"
        # The space matters: "-" followed by a negative literal would
        # otherwise render "--", which SQL lexes as a line comment.
        return f"(- {self.operand})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A call to a registered built-in scalar function."""

    name: str
    arguments: tuple[Expression, ...]

    def evaluate(self, batch: VectorBatch) -> np.ndarray:
        function = lookup_function(self.name)
        values = [argument.evaluate(batch) for argument in self.arguments]
        return function.implementation(*values)

    def output_type(self, schema: Schema) -> SqlType:
        function = lookup_function(self.name)
        return function.type_check(
            [argument.output_type(schema) for argument in self.arguments]
        )

    def referenced_columns(self) -> set[str]:
        referenced: set[str] = set()
        for argument in self.arguments:
            referenced |= argument.referenced_columns()
        return referenced

    def __str__(self) -> str:
        rendered = ", ".join(str(argument) for argument in self.arguments)
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class CaseWhen(Expression):
    """``CASE WHEN c1 THEN v1 ... [ELSE e] END`` evaluated branch-free.

    All branch values are computed for the full vector and combined with
    ``np.select`` — the standard way a vectorized engine executes CASE.
    """

    branches: tuple[tuple[Expression, Expression], ...]
    otherwise: Expression | None = None

    def evaluate(self, batch: VectorBatch) -> np.ndarray:
        conditions = [
            condition.evaluate(batch) for condition, _ in self.branches
        ]
        values = [value.evaluate(batch) for _, value in self.branches]
        for condition in conditions:
            if condition.dtype != np.bool_:
                raise ExecutionError("CASE condition must be boolean")
        if self.otherwise is not None:
            default = self.otherwise.evaluate(batch)
        else:
            result_dtype = np.result_type(*values) if values else np.float64
            if result_dtype == object:
                default = np.full(len(batch), None, dtype=object)
            else:
                default = np.zeros(len(batch), dtype=result_dtype)
        return np.select(conditions, values, default=default)

    def output_type(self, schema: Schema) -> SqlType:
        types = [value.output_type(schema) for _, value in self.branches]
        if self.otherwise is not None:
            types.append(self.otherwise.output_type(schema))
        result = types[0]
        for candidate in types[1:]:
            if candidate is result:
                continue
            result = common_numeric_type(result, candidate)
        return result

    def referenced_columns(self) -> set[str]:
        referenced: set[str] = set()
        for condition, value in self.branches:
            referenced |= condition.referenced_columns()
            referenced |= value.referenced_columns()
        if self.otherwise is not None:
            referenced |= self.otherwise.referenced_columns()
        return referenced

    def __str__(self) -> str:
        parts = ["CASE"]
        for condition, value in self.branches:
            parts.append(f"WHEN {condition} THEN {value}")
        if self.otherwise is not None:
            parts.append(f"ELSE {self.otherwise}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Cast(Expression):
    """Explicit ``CAST(expr AS type)``."""

    operand: Expression
    target: SqlType

    def evaluate(self, batch: VectorBatch) -> np.ndarray:
        values = self.operand.evaluate(batch)
        if self.target is SqlType.VARCHAR:
            return np.array([str(value) for value in values], dtype=object)
        if values.dtype == object:
            return values.astype(self.target.numpy_dtype)
        return values.astype(self.target.numpy_dtype, copy=False)

    def output_type(self, schema: Schema) -> SqlType:
        return self.target

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        return f"CAST({self.operand} AS {self.target})"


def infer_type_from_array(values: np.ndarray) -> SqlType:
    """Engine type of an already-evaluated array (for derived schemas)."""
    return type_of_dtype(values.dtype)
