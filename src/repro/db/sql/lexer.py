"""SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError


class TokenKind(enum.Enum):
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.IDENT and self.text.upper() == word

    def is_operator(self, symbol: str) -> bool:
        return self.kind is TokenKind.OPERATOR and self.text == symbol


_MULTI_CHAR_OPERATORS = ("<=", ">=", "<>", "!=", "==")
_SINGLE_CHAR_OPERATORS = set("+-*/()=<>,.;")

_IDENT_START = set("abcdefghijklmnopqrstuvwxyz_")
_IDENT_CONT = _IDENT_START | set("0123456789")


def tokenize(text: str) -> list[Token]:
    """Split SQL *text* into tokens; raises on unknown characters."""
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        character = text[position]
        if character.isspace():
            position += 1
            continue
        if character == "-" and text.startswith("--", position):
            newline = text.find("\n", position)
            position = length if newline == -1 else newline + 1
            continue
        if character.lower() in _IDENT_START:
            start = position
            while (
                position < length and text[position].lower() in _IDENT_CONT
            ):
                position += 1
            tokens.append(
                Token(TokenKind.IDENT, text[start:position], start)
            )
            continue
        if character.isdigit() or (
            character == "."
            and position + 1 < length
            and text[position + 1].isdigit()
        ):
            start = position
            position = _scan_number(text, position)
            tokens.append(
                Token(TokenKind.NUMBER, text[start:position], start)
            )
            continue
        if character == "'":
            start = position
            position += 1
            pieces: list[str] = []
            while True:
                if position >= length:
                    raise SqlSyntaxError("unterminated string literal", start)
                if text[position] == "'":
                    if position + 1 < length and text[position + 1] == "'":
                        pieces.append("'")
                        position += 2
                        continue
                    position += 1
                    break
                pieces.append(text[position])
                position += 1
            tokens.append(Token(TokenKind.STRING, "".join(pieces), start))
            continue
        if character == '"':
            start = position
            end = text.find('"', position + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier", start)
            tokens.append(Token(TokenKind.IDENT, text[start + 1 : end], start))
            position = end + 1
            continue
        matched = False
        for operator in _MULTI_CHAR_OPERATORS:
            if text.startswith(operator, position):
                tokens.append(Token(TokenKind.OPERATOR, operator, position))
                position += len(operator)
                matched = True
                break
        if matched:
            continue
        if character in _SINGLE_CHAR_OPERATORS:
            tokens.append(Token(TokenKind.OPERATOR, character, position))
            position += 1
            continue
        raise SqlSyntaxError(f"unexpected character {character!r}", position)
    tokens.append(Token(TokenKind.EOF, "", length))
    return tokens


def _scan_number(text: str, position: int) -> int:
    length = len(text)
    while position < length and text[position].isdigit():
        position += 1
    if position < length and text[position] == ".":
        position += 1
        while position < length and text[position].isdigit():
            position += 1
    if position < length and text[position] in "eE":
        lookahead = position + 1
        if lookahead < length and text[lookahead] in "+-":
            lookahead += 1
        if lookahead < length and text[lookahead].isdigit():
            position = lookahead
            while position < length and text[position].isdigit():
                position += 1
    return position
