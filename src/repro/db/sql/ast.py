"""Abstract syntax tree for parsed SQL statements.

Scalar expressions reuse the runtime expression classes from
:mod:`repro.db.expressions`; at the AST stage a
:class:`~repro.db.expressions.ColumnRef` may carry a qualified name
("alias.column") that the planner later resolves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.expressions import Expression


@dataclass(frozen=True)
class Statement:
    """Base class of all parsed statements."""


@dataclass(frozen=True)
class Star:
    """``*`` or ``alias.*`` in a select list."""

    qualifier: str | None = None


@dataclass(frozen=True)
class SelectItem:
    expression: Expression | Star
    alias: str | None = None


class FromItem:
    """Base class of FROM-clause items."""


@dataclass(frozen=True)
class TableRef(FromItem):
    table_name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        # A schema-qualified name ("system.queries") binds under its
        # last component: binding names must stay dot-free because
        # qualified column references split at the first dot.
        if self.alias:
            return self.alias
        return self.table_name.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class SubqueryRef(FromItem):
    query: "SelectStatement"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias


@dataclass(frozen=True)
class JoinRef(FromItem):
    """ANSI ``left JOIN right ON condition``."""

    left: FromItem
    right: FromItem
    condition: Expression


@dataclass(frozen=True)
class ModelJoinRef(FromItem):
    """The paper's ``table MODEL JOIN model_name`` extension (Section 1).

    ``input_columns`` optionally restricts which columns feed the model
    (``USING (c1, c2)``); the rest are passed through as payload —
    exactly the native operator's prediction-column behaviour
    (Section 5.3).  ``variant`` is the optional explicit execution
    variant (``VARIANT 'native-gpu'``), overriding the optimizer's
    cost-based choice.
    """

    left: FromItem
    model_name: str
    input_columns: tuple[str, ...] = ()
    output_prefix: str = "prediction"
    variant: str | None = None
    #: explicit model version (``MODEL JOIN m VERSION 2``); ``None``
    #: scores whichever version is currently published.
    version: int | None = None


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement(Statement):
    select_items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...]
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int = 0
    distinct: bool = False


@dataclass(frozen=True)
class ColumnDefinition:
    name: str
    type_name: str


@dataclass(frozen=True)
class CreateTable(Statement):
    table_name: str
    columns: tuple[ColumnDefinition, ...]
    partition_key: str | None = None
    num_partitions: int = 1
    sort_key: tuple[str, ...] = ()
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    table_name: str
    if_exists: bool = False


@dataclass(frozen=True)
class InsertValues(Statement):
    table_name: str
    rows: tuple[tuple[object, ...], ...]
    column_names: tuple[str, ...] = ()


@dataclass(frozen=True)
class InsertSelect(Statement):
    table_name: str
    query: SelectStatement
    column_names: tuple[str, ...] = ()


@dataclass(frozen=True)
class LayerSpec:
    """One dense layer in a ``CREATE MODEL ... AS TRAIN DENSE(...)``."""

    units: int
    activation: str = "linear"


@dataclass(frozen=True)
class CreateModel(Statement):
    """``CREATE MODEL name [VERSION v] AS TRAIN|RETRAIN arch ON (...)``.

    ``options`` holds the ``WITH (key = literal, ...)`` hyperparameters
    as ordered pairs (the statement stays hashable); ``retrain``
    distinguishes ``AS RETRAIN`` (new version of an existing model,
    published only by ``ALTER MODEL ... SET VERSION``) from
    ``AS TRAIN`` (brand-new model, immediately current).
    """

    model_name: str
    layers: tuple[LayerSpec, ...]
    query: SelectStatement
    version: int | None = None
    retrain: bool = False
    options: tuple[tuple[str, object], ...] = ()


@dataclass(frozen=True)
class AlterModel(Statement):
    """``ALTER MODEL name SET VERSION v`` — atomic version publish."""

    model_name: str
    version: int


@dataclass(frozen=True)
class Explain(Statement):
    statement: Statement
