"""SQL frontend: lexer, AST and recursive-descent parser.

The dialect covers what the paper's workloads need: DDL with
partitioning and sort keys, ``INSERT ... VALUES``, and SELECT queries
with derived tables, joins (comma and ANSI), GROUP BY / HAVING /
ORDER BY / LIMIT, CASE, CAST, BETWEEN and scalar functions — plus the
paper's envisioned ``MODEL JOIN`` extension (Section 1 / 5.5).
"""

from repro.db.sql.lexer import Token, TokenKind, tokenize
from repro.db.sql.parser import parse_statement, parse_expression

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "parse_statement",
    "parse_expression",
]
