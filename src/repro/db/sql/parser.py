"""Recursive-descent SQL parser."""

from __future__ import annotations

from repro.db.expressions import (
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    UnaryOp,
)
from repro.db.sql.ast import (
    AlterModel,
    ColumnDefinition,
    CreateModel,
    CreateTable,
    DropTable,
    Explain,
    FromItem,
    InsertSelect,
    InsertValues,
    JoinRef,
    LayerSpec,
    ModelJoinRef,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
)
from repro.db.sql.lexer import Token, TokenKind, tokenize
from repro.db.types import parse_type_name
from repro.errors import SqlSyntaxError

#: identifiers that terminate an implicit alias position
_STOP_WORDS = {
    "WHERE",
    "GROUP",
    "HAVING",
    "ORDER",
    "LIMIT",
    "OFFSET",
    "ON",
    "JOIN",
    "INNER",
    "AS",
    "UNION",
    "USING",
    "FROM",
    "AND",
    "OR",
    "NOT",
    "BETWEEN",
    "IN",
}

_AGGREGATE_NAMES = {"SUM", "COUNT", "MIN", "MAX", "AVG"}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        position = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[position]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        token = self.advance()
        if not token.is_keyword(word):
            raise SqlSyntaxError(
                f"expected {word}, found {token.text!r}", token.position
            )

    def accept_operator(self, symbol: str) -> bool:
        if self.peek().is_operator(symbol):
            self.advance()
            return True
        return False

    def expect_operator(self, symbol: str) -> None:
        token = self.advance()
        if not token.is_operator(symbol):
            raise SqlSyntaxError(
                f"expected {symbol!r}, found {token.text!r}", token.position
            )

    def expect_identifier(self) -> str:
        token = self.advance()
        if token.kind is not TokenKind.IDENT:
            raise SqlSyntaxError(
                f"expected an identifier, found {token.text!r}",
                token.position,
            )
        return token.text

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> Statement:
        if self.accept_keyword("EXPLAIN"):
            return Explain(self.parse_statement())
        token = self.peek()
        if token.is_keyword("SELECT"):
            statement = self.parse_select()
        elif token.is_keyword("CREATE"):
            if self.peek(1).is_keyword("MODEL"):
                statement = self.parse_create_model()
            else:
                statement = self.parse_create_table()
        elif token.is_keyword("ALTER"):
            statement = self.parse_alter_model()
        elif token.is_keyword("DROP"):
            statement = self.parse_drop_table()
        elif token.is_keyword("INSERT"):
            statement = self.parse_insert()
        else:
            raise SqlSyntaxError(
                f"unexpected start of statement: {token.text!r}",
                token.position,
            )
        self.accept_operator(";")
        return statement

    def finish(self) -> None:
        token = self.peek()
        if token.kind is not TokenKind.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input: {token.text!r}", token.position
            )

    def _parse_table_name(self) -> str:
        """A table name, optionally schema-qualified (``system.queries``).

        The only schema the engine knows is the virtual read-only
        ``system`` schema; plain names resolve against the user
        catalog.  The dot must be parsed here (the lexer emits it as an
        operator token), so ``a.b`` becomes one qualified name.
        """
        name = self.expect_identifier()
        if self.accept_operator("."):
            name = f"{name}.{self.expect_identifier()}"
        return name

    def parse_create_table(self) -> CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self._parse_table_name()
        self.expect_operator("(")
        columns: list[ColumnDefinition] = []
        while True:
            column_name = self.expect_identifier()
            type_name = self.expect_identifier()
            parse_type_name(type_name)  # validate early
            columns.append(ColumnDefinition(column_name, type_name))
            if not self.accept_operator(","):
                break
        self.expect_operator(")")
        partition_key = None
        num_partitions = 1
        sort_key: list[str] = []
        while True:
            if self.accept_keyword("PARTITION"):
                self.expect_keyword("BY")
                self.expect_operator("(")
                partition_key = self.expect_identifier()
                self.expect_operator(")")
                if self.accept_keyword("PARTITIONS"):
                    num_partitions = self._parse_integer()
            elif self.accept_keyword("PARTITIONS"):
                num_partitions = self._parse_integer()
            elif self.accept_keyword("SORTED"):
                self.expect_keyword("BY")
                self.expect_operator("(")
                while True:
                    sort_key.append(self.expect_identifier())
                    if not self.accept_operator(","):
                        break
                self.expect_operator(")")
            else:
                break
        return CreateTable(
            name,
            tuple(columns),
            partition_key=partition_key,
            num_partitions=num_partitions,
            sort_key=tuple(sort_key),
            if_not_exists=if_not_exists,
        )

    def parse_create_model(self) -> CreateModel:
        """``CREATE MODEL name [VERSION v] AS TRAIN|RETRAIN
        DENSE(units [act], ...) ON (SELECT ...) [WITH (k = lit, ...)]``.

        The inner SELECT's last column is the training label; every
        preceding column is a feature (docs/TRAINING.md).
        """
        self.expect_keyword("CREATE")
        self.expect_keyword("MODEL")
        name = self.expect_identifier()
        version = None
        if self.accept_keyword("VERSION"):
            version = self._parse_integer()
        self.expect_keyword("AS")
        if self.accept_keyword("RETRAIN"):
            retrain = True
        else:
            self.expect_keyword("TRAIN")
            retrain = False
        self.expect_keyword("DENSE")
        self.expect_operator("(")
        layers: list[LayerSpec] = []
        while True:
            units = self._parse_integer()
            activation = "linear"
            if self.peek().kind is TokenKind.IDENT:
                activation = self.expect_identifier().lower()
            layers.append(LayerSpec(units, activation))
            if not self.accept_operator(","):
                break
        self.expect_operator(")")
        self.expect_keyword("ON")
        self.expect_operator("(")
        query = self.parse_select()
        self.expect_operator(")")
        options: list[tuple[str, object]] = []
        if self.accept_keyword("WITH"):
            self.expect_operator("(")
            while True:
                key = self.expect_identifier().lower()
                self.expect_operator("=")
                options.append((key, self._parse_literal_value()))
                if not self.accept_operator(","):
                    break
            self.expect_operator(")")
        return CreateModel(
            name,
            tuple(layers),
            query,
            version=version,
            retrain=retrain,
            options=tuple(options),
        )

    def parse_alter_model(self) -> AlterModel:
        self.expect_keyword("ALTER")
        self.expect_keyword("MODEL")
        name = self.expect_identifier()
        self.expect_keyword("SET")
        self.expect_keyword("VERSION")
        return AlterModel(name, self._parse_integer())

    def parse_drop_table(self) -> DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return DropTable(self._parse_table_name(), if_exists=if_exists)

    def parse_insert(self) -> Statement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table_name = self._parse_table_name()
        column_names: list[str] = []
        if self.peek().is_operator("(") and not self.peek(1).is_keyword(
            "SELECT"
        ):
            self.expect_operator("(")
            while True:
                column_names.append(self.expect_identifier())
                if not self.accept_operator(","):
                    break
            self.expect_operator(")")
        if self.peek().is_keyword("SELECT"):
            query = self.parse_select()
            return InsertSelect(table_name, query, tuple(column_names))
        self.expect_keyword("VALUES")
        rows: list[tuple[object, ...]] = []
        while True:
            self.expect_operator("(")
            row: list[object] = []
            while True:
                row.append(self._parse_literal_value())
                if not self.accept_operator(","):
                    break
            self.expect_operator(")")
            rows.append(tuple(row))
            if not self.accept_operator(","):
                break
        return InsertValues(table_name, tuple(rows), tuple(column_names))

    def _parse_literal_value(self) -> object:
        negative = False
        if self.accept_operator("-"):
            negative = True
        token = self.advance()
        if token.kind is TokenKind.NUMBER:
            value = _number_value(token.text)
            return -value if negative else value
        if negative:
            raise SqlSyntaxError("expected a number after '-'", token.position)
        if token.kind is TokenKind.STRING:
            return token.text
        if token.is_keyword("TRUE"):
            return True
        if token.is_keyword("FALSE"):
            return False
        if token.is_keyword("NULL"):
            raise SqlSyntaxError(
                "NULL values are not supported by this engine",
                token.position,
            )
        raise SqlSyntaxError(
            f"expected a literal, found {token.text!r}", token.position
        )

    def _parse_integer(self) -> int:
        token = self.advance()
        if token.kind is not TokenKind.NUMBER or "." in token.text:
            raise SqlSyntaxError(
                f"expected an integer, found {token.text!r}", token.position
            )
        return int(token.text)

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        select_items = [self._parse_select_item()]
        while self.accept_operator(","):
            select_items.append(self._parse_select_item())
        self.expect_keyword("FROM")
        from_items = [self._parse_from_item()]
        while self.accept_operator(","):
            from_items.append(self._parse_from_item())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        group_by: list[Expression] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self.accept_operator(","):
                group_by.append(self.parse_expression())
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expression()
        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expression = self.parse_expression()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                order_by.append(OrderItem(expression, ascending))
                if not self.accept_operator(","):
                    break
        limit = None
        offset = 0
        if self.accept_keyword("LIMIT"):
            limit = self._parse_integer()
            if self.accept_keyword("OFFSET"):
                offset = self._parse_integer()
        return SelectStatement(
            tuple(select_items),
            tuple(from_items),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_item(self) -> SelectItem:
        if self.peek().is_operator("*"):
            self.advance()
            return SelectItem(Star())
        if (
            self.peek().kind is TokenKind.IDENT
            and self.peek(1).is_operator(".")
            and self.peek(2).is_operator("*")
        ):
            qualifier = self.expect_identifier()
            self.advance()
            self.advance()
            return SelectItem(Star(qualifier))
        expression = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif (
            self.peek().kind is TokenKind.IDENT
            and self.peek().text.upper() not in _STOP_WORDS
        ):
            alias = self.expect_identifier()
        return SelectItem(expression, alias)

    def _parse_from_item(self) -> FromItem:
        item = self._parse_primary_from()
        while True:
            if self.accept_keyword("INNER"):
                self.expect_keyword("JOIN")
                right = self._parse_primary_from()
                self.expect_keyword("ON")
                item = JoinRef(item, right, self.parse_expression())
            elif self.peek().is_keyword("JOIN"):
                self.advance()
                right = self._parse_primary_from()
                self.expect_keyword("ON")
                item = JoinRef(item, right, self.parse_expression())
            elif self.peek().is_keyword("MODEL") and self.peek(1).is_keyword(
                "JOIN"
            ):
                self.advance()
                self.advance()
                model_name = self.expect_identifier()
                version: int | None = None
                if self.accept_keyword("VERSION"):
                    version = self._parse_integer()
                input_columns: list[str] = []
                if self.accept_keyword("USING"):
                    self.expect_operator("(")
                    while True:
                        input_columns.append(self.expect_identifier())
                        if not self.accept_operator(","):
                            break
                    self.expect_operator(")")
                variant: str | None = None
                if self.accept_keyword("VARIANT"):
                    token = self.peek()
                    if token.kind is TokenKind.STRING:
                        self.advance()
                        variant = token.text
                    else:
                        variant = self.expect_identifier()
                item = ModelJoinRef(
                    item,
                    model_name,
                    tuple(input_columns),
                    variant=variant,
                    version=version,
                )
            else:
                return item

    def _parse_primary_from(self) -> FromItem:
        if self.accept_operator("("):
            query = self.parse_select()
            self.expect_operator(")")
            self.accept_keyword("AS")
            alias = self.expect_identifier()
            return SubqueryRef(query, alias)
        name = self._parse_table_name()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif (
            self.peek().kind is TokenKind.IDENT
            and self.peek().text.upper() not in _STOP_WORDS
            and not (
                self.peek().is_keyword("MODEL")
                and self.peek(1).is_keyword("JOIN")
            )
        ):
            alias = self.expect_identifier()
        return TableRef(name, alias)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self.peek()
        if token.kind is TokenKind.OPERATOR and token.text in (
            "=",
            "==",
            "<>",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ):
            self.advance()
            operator = {"==": "=", "!=": "<>"}.get(token.text, token.text)
            return BinaryOp(operator, left, self._parse_additive())
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return BinaryOp(
                "AND",
                BinaryOp(">=", left, low),
                BinaryOp("<=", left, high),
            )
        negated = False
        if token.is_keyword("NOT") and self.peek(1).is_keyword("IN"):
            self.advance()
            token = self.peek()
            negated = True
        if token.is_keyword("IN"):
            self.advance()
            self.expect_operator("(")
            candidates = [self.parse_expression()]
            while self.accept_operator(","):
                candidates.append(self.parse_expression())
            self.expect_operator(")")
            membership: Expression = BinaryOp("=", left, candidates[0])
            for candidate in candidates[1:]:
                membership = BinaryOp(
                    "OR", membership, BinaryOp("=", left, candidate)
                )
            if negated:
                return UnaryOp("NOT", membership)
            return membership
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            if self.accept_operator("+"):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self.accept_operator("-"):
                left = BinaryOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            if self.accept_operator("*"):
                left = BinaryOp("*", left, self._parse_unary())
            elif self.accept_operator("/"):
                left = BinaryOp("/", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self.accept_operator("-"):
            return UnaryOp("-", self._parse_unary())
        if self.accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return Literal.of(_number_value(token.text))
        if token.kind is TokenKind.STRING:
            self.advance()
            return Literal.of(token.text)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal.of(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal.of(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.kind is TokenKind.IDENT:
            return self._parse_identifier_expression()
        if self.accept_operator("("):
            expression = self.parse_expression()
            self.expect_operator(")")
            return expression
        raise SqlSyntaxError(
            f"unexpected token {token.text!r} in expression", token.position
        )

    def _parse_case(self) -> Expression:
        self.expect_keyword("CASE")
        branches: list[tuple[Expression, Expression]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            branches.append((condition, self.parse_expression()))
        otherwise = None
        if self.accept_keyword("ELSE"):
            otherwise = self.parse_expression()
        self.expect_keyword("END")
        if not branches:
            raise SqlSyntaxError("CASE requires at least one WHEN branch")
        return CaseWhen(tuple(branches), otherwise)

    def _parse_cast(self) -> Expression:
        self.expect_keyword("CAST")
        self.expect_operator("(")
        operand = self.parse_expression()
        self.expect_keyword("AS")
        type_name = self.expect_identifier()
        self.expect_operator(")")
        return Cast(operand, parse_type_name(type_name))

    def _parse_identifier_expression(self) -> Expression:
        name = self.expect_identifier()
        if self.peek().is_operator("("):
            self.advance()
            arguments: list[Expression] = []
            if self.accept_operator("*"):
                if name.upper() != "COUNT":
                    raise SqlSyntaxError(
                        f"'*' argument is only valid for COUNT, not {name}"
                    )
                self.expect_operator(")")
                return FunctionCall("COUNT", ())
            if not self.peek().is_operator(")"):
                arguments.append(self.parse_expression())
                while self.accept_operator(","):
                    arguments.append(self.parse_expression())
            self.expect_operator(")")
            return FunctionCall(name.upper(), tuple(arguments))
        if self.accept_operator("."):
            column = self.expect_identifier()
            return ColumnRef(f"{name}.{column}")
        return ColumnRef(name)


def _number_value(text: str) -> int | float:
    if any(character in text for character in ".eE"):
        return float(text)
    return int(text)


def parse_statement(text: str) -> Statement:
    """Parse a single SQL statement; raises on trailing input."""
    parser = _Parser(text)
    statement = parser.parse_statement()
    parser.finish()
    return statement


def parse_expression(text: str) -> Expression:
    """Parse a standalone scalar expression (used by tests and tools)."""
    parser = _Parser(text)
    expression = parser.parse_expression()
    parser.finish()
    return expression


def is_aggregate_call(expression: Expression) -> bool:
    """Whether *expression* is a direct aggregate function call."""
    return (
        isinstance(expression, FunctionCall)
        and expression.name in _AGGREGATE_NAMES
    )
