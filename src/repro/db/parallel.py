"""Partition-parallel query execution on a persistent worker pool.

Mirrors x100's intra-query parallelism (paper Sections 4.4 and 5.2):
each execution thread gets a *private plan instance*, while
unpartitioned tables (the model table) are scanned by every thread —
the replication the paper describes for distributed setups.  All
pipelines share one :class:`~repro.db.operators.base.ExecutionContext`,
so memory accounting reflects the query-global peak and barrier-style
shared state (the native ModelJoin's shared model build) is visible
across threads.

Two scheduling strategies exist:

* **Static partition binding** — pipeline *i* scans partition *i* of
  every partitioned base table.  Correct whenever the query result is
  the bag-union of per-partition results (aggregations whose group keys
  functionally include the partition key).  This is the fallback for
  plans containing blocking operators.

* **Morsel-driven** — when every operator of every pipeline is
  *morsel-streaming* (scan/filter/project/rename/modeljoin) and exactly
  one partitioned table is scanned, the partitions are split into scan
  morsels on a shared queue and the pipelines steal work from it.
  Skewed partitions then no longer gate query latency: a worker that
  finishes its morsel takes the next one, whichever partition it came
  from.

The worker pool itself is *engine-lifetime*: :class:`WorkerPool` is
owned by the :class:`~repro.db.engine.Database` and reused across
queries, so thread startup cost disappears from per-query latency (the
serving scenario of repeated scoring queries).

**Failure containment** (see ``docs/ROBUSTNESS.md``): a crashed
pipeline no longer fails the whole query.  :func:`run_plans` collects a
:class:`TaskOutcome` per pipeline; when a *plan_builder* is given,
failed pipelines are retried up to *retries* times with exponential
backoff — each retry gets a **fresh plan instance** (operators are not
reopenable) dispatched to a **different worker** (the pool rotates task
assignment by attempt), and any morsels the crashed pipeline had taken
from the shared queue are requeued first, so no input rows are lost or
double-counted.  Failures that do propagate are chained
(``raise original from WorkerCrashError(...)``) so the original
exception type and worker traceback survive alongside the task
identity.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.db import faults
from repro.db.operators.base import ExecutionContext, PhysicalOperator
from repro.db.resilience import backoff_seconds
from repro.db.schema import Schema
from repro.db.vector import VectorBatch
from repro.errors import (
    ExecutionError,
    QueryTimeoutError,
    WorkerCrashError,
)

PlanBuilder = Callable[[int], PhysicalOperator]

#: default number of rows per scan morsel (a few execution vectors)
MORSEL_ROWS = 4096

#: shared-state key flagging "a task of the current round crashed".
#: Set *before* the builder-abort sweep and checked by barrier-coupled
#: operators right before they wait: a builder registered before the
#: flag was set is caught by the sweep, one registered after sees the
#: flag — so no pipeline can wait on a barrier whose party count will
#: never be reached.
ROUND_ABORTED_KEY = "__round_aborted__"

_worker_slot = threading.local()


def current_worker_name() -> str:
    """Name of the pool worker running the caller (or 'main')."""
    return getattr(_worker_slot, "name", "main")


@dataclass
class TaskOutcome:
    """What happened to one dispatched task (success *or* failure)."""

    result: object = None
    error: BaseException | None = None
    #: name of the worker that ran the task ('' if never dispatched)
    worker: str = ""


class WorkerPool:
    """A persistent, named pool of query-execution threads.

    Unlike a per-query ``ThreadPoolExecutor``, the pool's threads live
    for the lifetime of the owning engine.  :meth:`run_tasks` schedules
    one task per worker and blocks until all complete — tasks of one
    parallel query may synchronize with each other (the ModelJoin build
    barrier), which is safe because every task is guaranteed its own
    thread.  A pool-level lock serializes parallel queries so two
    queries can never interleave on the same workers and deadlock.

    A crashing task is *contained*: its exception is captured into a
    :class:`TaskOutcome` and the pool's threads stay healthy — the
    worker loop itself never dies, so a failed query costs nothing but
    its own latency.
    """

    def __init__(self, size: int, name_prefix: str = "repro-worker"):
        if size < 1:
            raise ExecutionError("worker pool needs at least one thread")
        self.size = size
        self._query_lock = threading.Lock()
        self._task_ready = threading.Condition()
        self._tasks: list | None = None
        #: bumped per dispatch so a worker that loops around never
        #: re-executes the batch it just finished
        self._generation = 0
        self._done = threading.Semaphore(0)
        self._shutdown = False
        #: worker threads that failed to drain within the shutdown
        #: timeout (empty after a clean shutdown)
        self.undrained: list[str] = []
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"{name_prefix}-{index}",
                daemon=True,
            )
            for index in range(size)
        ]
        for thread in self._threads:
            thread.start()

    def _worker_loop(self, index: int) -> None:
        _worker_slot.name = f"worker-{index}"
        seen_generation = 0
        while True:
            with self._task_ready:
                while (
                    self._generation == seen_generation
                    and not self._shutdown
                ):
                    self._task_ready.wait()
                if self._shutdown:
                    return
                seen_generation = self._generation
                tasks = self._tasks
            entry = tasks[index] if index < len(tasks) else None
            if entry is not None:
                function, outcome, on_error = entry
                outcome.worker = _worker_slot.name
                try:
                    if faults.ACTIVE is not None:
                        faults.ACTIVE.fire("worker.task")
                    outcome.result = function()
                except BaseException as error:  # contained, see outcome
                    outcome.error = error
                    if on_error is not None:
                        try:
                            on_error(outcome)
                        except Exception:
                            pass
            self._done.release()

    def run_task_outcomes(
        self,
        functions: list[Callable[[], object]],
        worker_offset: int = 0,
        on_error: Callable[[TaskOutcome], None] | None = None,
    ) -> list[TaskOutcome]:
        """Run each function on its own worker; never raises task errors.

        Returns one :class:`TaskOutcome` per function, in order.  Tasks
        may be barrier-coupled, so every task runs to completion (or
        failure) before this returns — none is abandoned mid-flight.
        *worker_offset* rotates the task→worker assignment, so a retry
        round (offset = attempt number) lands each task on a different
        worker than the one it crashed on.  *on_error* runs on the
        crashing worker's thread the moment a task fails — the executor
        uses it to break shared build barriers so barrier-coupled
        sibling tasks fail fast instead of waiting for a party that
        will never arrive.
        """
        if len(functions) > self.size:
            raise ExecutionError(
                f"{len(functions)} tasks exceed the pool's "
                f"{self.size} workers"
            )
        if self._shutdown:
            raise ExecutionError("worker pool is shut down")
        outcomes = [TaskOutcome() for _ in functions]
        assignments: list = [None] * self.size
        for position, function in enumerate(functions):
            slot = (position + worker_offset) % self.size
            assignments[slot] = (function, outcomes[position], on_error)
        with self._query_lock:
            with self._task_ready:
                self._tasks = assignments
                self._generation += 1
                self._task_ready.notify_all()
            for _ in range(self.size):
                self._done.acquire()
        return outcomes

    def run_tasks(self, functions: list[Callable[[], object]]) -> list:
        """Run each function on its own worker; return results in order.

        Raises the first task error after all tasks finished.  The
        raised exception keeps its original type and worker traceback;
        a :class:`WorkerCrashError` naming the task and worker is
        chained on as its ``__cause__``.
        """
        outcomes = self.run_task_outcomes(functions)
        for index, outcome in enumerate(outcomes):
            if outcome.error is not None:
                raise outcome.error from WorkerCrashError(
                    f"task {index} of {len(functions)} crashed on "
                    f"{outcome.worker or 'an undispatched worker'}"
                )
        return [outcome.result for outcome in outcomes]

    def shutdown(self, drain_timeout: float = 5.0) -> bool:
        """Stop the worker threads; returns True when fully drained.

        Idempotent under concurrent callers: every call observes the
        same shutdown flag, joins whatever threads remain, and reports
        drain success.  The join is bounded by *drain_timeout* seconds
        **total** (not per thread); stragglers are recorded in
        :attr:`undrained` instead of blocking the caller forever.
        """
        with self._task_ready:
            self._shutdown = True
            self._task_ready.notify_all()
        deadline = time.perf_counter() + max(drain_timeout, 0.0)
        undrained: list[str] = []
        for thread in self._threads:
            remaining = deadline - time.perf_counter()
            thread.join(timeout=max(remaining, 0.0))
            if thread.is_alive():
                undrained.append(thread.name)
        self.undrained = undrained
        return not undrained


@dataclass
class Morsel:
    """One unit of stealable scan work: a row range of one block."""

    partition_index: int
    block: object
    row_start: int
    row_stop: int


class MorselSource:
    """A thread-safe queue of scan morsels over one partitioned table.

    Built once per query by the coordinator; the pipelines' scans pull
    from it until it runs dry.  Work stealing is implicit: whichever
    worker asks next gets the next morsel, so partition skew spreads
    over all workers instead of gating on the largest partition.

    Morsels taken by a pipeline are tracked as *in flight* under that
    pipeline's owner id until the pipeline either :meth:`settle`\\ s
    (success: its output batches were collected) or :meth:`requeue`\\ s
    them (crash: the partial output was discarded, so the morsels go
    back on the queue for the retry to process exactly once).
    """

    def __init__(self, table, morsel_rows: int = MORSEL_ROWS):
        self.table = table
        self._lock = threading.Lock()
        self._morsels = self._split(table, morsel_rows)
        self._cursor = 0
        self.dispensed = 0
        self.requeued = 0
        self._inflight: dict[object, list[Morsel]] = {}

    @staticmethod
    def _split(table, morsel_rows: int) -> list[Morsel]:
        morsels: list[Morsel] = []
        for partition_index, partition in enumerate(table.partitions):
            for block in partition.blocks():
                rows = block.length
                for start in range(0, rows, morsel_rows):
                    morsels.append(
                        Morsel(
                            partition_index,
                            block,
                            start,
                            min(start + morsel_rows, rows),
                        )
                    )
        return morsels

    def __len__(self) -> int:
        return len(self._morsels)

    def next_morsel(self, owner: object | None = None) -> Morsel | None:
        with self._lock:
            if self._cursor >= len(self._morsels):
                return None
            morsel = self._morsels[self._cursor]
            self._cursor += 1
            self.dispensed += 1
            if owner is not None:
                self._inflight.setdefault(owner, []).append(morsel)
            return morsel

    def settle(self, owner: object) -> None:
        """Forget *owner*'s in-flight morsels (its output was kept)."""
        with self._lock:
            self._inflight.pop(owner, None)

    def requeue(self, owner: object) -> int:
        """Put *owner*'s in-flight morsels back on the queue.

        Called when the owning pipeline crashed and its partial output
        was discarded; returns how many morsels went back.
        """
        with self._lock:
            morsels = self._inflight.pop(owner, None)
            if not morsels:
                return 0
            self._morsels.extend(morsels)
            self.requeued += len(morsels)
            return len(morsels)


def _pipeline_operators(plan: PhysicalOperator) -> list[PhysicalOperator]:
    operators = [plan]
    for child in plan.children():
        operators.extend(_pipeline_operators(child))
    return operators


def attach_morsel_sources(
    plans: list[PhysicalOperator], morsel_rows: int = MORSEL_ROWS
) -> list[MorselSource]:
    """Switch eligible pipelines to morsel-driven scanning.

    Eligible when every operator of every pipeline is morsel-streaming
    and the pipelines scan exactly one partitioned base table (scans of
    unpartitioned tables are broadcast and stay as they are).  Returns
    the shared sources that were attached ([] means static partition
    binding stays in effect).
    """
    from repro.db.operators.scan import TableScan

    partitioned_scans: list[list[TableScan]] = []
    for plan in plans:
        operators = _pipeline_operators(plan)
        if not all(op.morsel_streaming for op in operators):
            return []
        mine = [
            op
            for op in operators
            if isinstance(op, TableScan) and op.table.num_partitions > 1
        ]
        if len(mine) != 1:
            return []
        partitioned_scans.append(mine)
    tables = {id(scans[0].table) for scans in partitioned_scans}
    if len(tables) != 1:
        return []
    source = MorselSource(
        partitioned_scans[0][0].table, morsel_rows=morsel_rows
    )
    for index, scans in enumerate(partitioned_scans):
        scans[0].morsel_source = source
        scans[0].morsel_owner = index
    collector = partitioned_scans[0][0].context.collector
    if collector is not None:
        collector.morsels_total = len(source)
    return [source]


def _rewire_morsel_source(
    plan: PhysicalOperator, source: MorselSource, owner: int
) -> None:
    """Point a freshly built retry plan at the query's shared queue."""
    from repro.db.operators.scan import TableScan

    for operator in _pipeline_operators(plan):
        if isinstance(operator, TableScan) and operator.table is source.table:
            operator.morsel_source = source
            operator.morsel_owner = owner


def _is_retryable(error: BaseException) -> bool:
    """Crashes are retryable; deadline misses and interrupts are not.

    Re-running a timed-out pipeline can only time out again later, and
    non-``Exception`` ``BaseException``\\ s (KeyboardInterrupt,
    SystemExit) must escape immediately.
    """
    return isinstance(error, Exception) and not isinstance(
        error, QueryTimeoutError
    )


def _raise_pipeline_failure(
    failed: dict[int, TaskOutcome], attempts: int
) -> None:
    """Chain and raise the surfaced error of a failed pipeline round."""
    fatal = [
        index
        for index in sorted(failed)
        if not _is_retryable(failed[index].error)
    ]
    index = fatal[0] if fatal else sorted(failed)[0]
    outcome = failed[index]
    raise outcome.error from WorkerCrashError(
        f"pipeline {index} failed on {outcome.worker or 'main'} "
        f"after {attempts} attempt(s)"
    )


def _abort_shared_builders(shared_state: dict) -> None:
    """Break every abortable barrier registered in a query's state.

    When a task crashes *before* reaching a shared build barrier (e.g.
    an injected ``worker.task`` fault), the cooperating pipelines would
    otherwise wait for a party that never arrives.  Decision payloads
    that expose ``abort()`` (the ModelJoin's shared
    :class:`~repro.core.modeljoin.builder.ModelBuilder`) are aborted so
    the waiters observe a retryable crash instead of deadlocking.
    """
    for value in list(shared_state.values()):
        items = value if isinstance(value, tuple) else (value,)
        for item in items:
            abort = getattr(item, "abort", None)
            if callable(abort):
                try:
                    abort()
                except Exception:
                    pass


def _run_round(
    pending: list[int],
    run_one: Callable[[int], object],
    attempt: int,
    pool: WorkerPool | None,
    on_error: Callable[[TaskOutcome], None] | None = None,
) -> list[TaskOutcome]:
    """Execute the pending pipelines once, capturing every outcome."""
    functions = [lambda index=index: run_one(index) for index in pending]
    if len(functions) == 1:
        # Serial (or single-pipeline retry) fast path on the caller's
        # thread — by definition a different "worker" than a crashed
        # pool task.
        outcome = TaskOutcome(worker=current_worker_name())
        try:
            outcome.result = functions[0]()
        except BaseException as error:
            outcome.error = error
        return [outcome]
    if pool is not None:
        return pool.run_task_outcomes(
            functions, worker_offset=attempt, on_error=on_error
        )
    outcomes = [TaskOutcome() for _ in functions]

    def run_at(position: int) -> None:
        outcome = outcomes[position]
        outcome.worker = threading.current_thread().name
        try:
            outcome.result = functions[position]()
        except BaseException as error:
            outcome.error = error
            if on_error is not None:
                try:
                    on_error(outcome)
                except Exception:
                    pass

    threads = [
        threading.Thread(target=run_at, args=(position,))
        for position in range(len(functions))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes


def run_plans(
    plans: list[PhysicalOperator],
    pool: WorkerPool | None = None,
    morsel_driven: bool = False,
    plan_builder: PlanBuilder | None = None,
    retries: int = 0,
) -> tuple[Schema, list[VectorBatch]]:
    """Execute already-built partition pipelines concurrently.

    The caller keeps the plan instances, so their post-run operator
    stats remain inspectable (parallel EXPLAIN ANALYZE merges them).
    With a tracer enabled on the plans' context, every pipeline records
    a ``pipeline`` span on its worker thread, parented under the
    query's span via ``context.trace_parent``.

    With *plan_builder* and *retries* > 0, crashed pipelines are
    retried with exponential backoff: the crashed pipeline's in-flight
    morsels are requeued, a fresh plan instance is built for its index
    (and rewired to the shared morsel queue), and the round re-runs on
    rotated workers.  ``plans`` is updated in place with the retry
    instances so post-run stats stay inspectable.  Retry rounds bump
    the ``query.retries`` / ``worker.crashes`` metrics and emit
    ``retry``-category marker spans.
    """
    if not plans:
        raise ValueError("need at least one plan")
    sources = attach_morsel_sources(plans) if morsel_driven else []
    source = sources[0] if sources else None
    context = plans[0].context
    tracer = context.tracer
    metrics = context.metrics
    attempt = 0

    def run_one(index: int) -> list[VectorBatch]:
        plan = plans[index]
        if not tracer.enabled:
            return list(plan.batches())
        args = {"pipeline": index, "worker": current_worker_name()}
        if attempt:
            args["retry"] = attempt
        with tracer.span(
            "pipeline",
            category="parallel",
            parent_id=context.trace_parent,
            args=args,
        ):
            return list(plan.batches())

    def on_task_error(_outcome: TaskOutcome) -> None:
        # Flag first, sweep second — see ROUND_ABORTED_KEY.
        context.shared_state[ROUND_ABORTED_KEY] = True
        _abort_shared_builders(context.shared_state)

    per_pipeline: list = [None] * len(plans)
    pending = list(range(len(plans)))
    while True:
        outcomes = _run_round(
            pending, run_one, attempt, pool, on_error=on_task_error
        )
        failed: dict[int, TaskOutcome] = {}
        for index, outcome in zip(pending, outcomes):
            if outcome.error is None:
                per_pipeline[index] = outcome.result
                if source is not None:
                    source.settle(index)
            else:
                failed[index] = outcome
        if not failed:
            break
        crashes = sum(
            1
            for outcome in failed.values()
            if not isinstance(outcome.error, QueryTimeoutError)
        )
        if crashes and metrics is not None:
            metrics.counter("worker.crashes").increment(crashes)
        can_retry = (
            plan_builder is not None
            and attempt < retries
            and all(_is_retryable(o.error) for o in failed.values())
        )
        if not can_retry:
            _raise_pipeline_failure(failed, attempt + 1)
        attempt += 1
        if metrics is not None:
            metrics.counter("query.retries").increment(len(failed))
        context.counters.increment("query.retries", len(failed))
        if tracer.enabled:
            tracer.instant(
                "retry",
                category="retry",
                parent_id=context.trace_parent,
                args={
                    "attempt": attempt,
                    "pipelines": sorted(failed),
                    "errors": sorted(
                        {type(o.error).__name__ for o in failed.values()}
                    ),
                },
            )
        time.sleep(backoff_seconds(attempt))
        context.shared_state.pop(ROUND_ABORTED_KEY, None)
        for index in sorted(failed):
            if source is not None:
                source.requeue(index)
            fresh = plan_builder(index)
            if source is not None:
                _rewire_morsel_source(fresh, source, index)
            plans[index] = fresh
        pending = sorted(failed)
    schema = plans[0].schema
    batches = [
        batch for pipeline in per_pipeline for batch in pipeline
    ]
    return schema, batches


def run_partitioned(
    plan_builder: PlanBuilder,
    num_partitions: int,
    max_workers: int | None = None,
    pool: WorkerPool | None = None,
    morsel_driven: bool = False,
    retries: int = 0,
) -> tuple[Schema, list[VectorBatch]]:
    """Execute one plan instance per partition pipeline.

    With *pool* the pipelines run on the engine's persistent workers;
    otherwise a transient thread-per-partition fallback is used (kept
    for callers without an engine).  With *morsel_driven* the plans are
    built eagerly and, when eligible, rewired to steal scan morsels
    from a shared queue (see :func:`attach_morsel_sources`).  With
    *retries* > 0 crashed pipelines are rebuilt via *plan_builder* and
    re-run (see :func:`run_plans`).

    Returns the output schema and all result batches, ordered by
    pipeline (batch order within a pipeline is preserved).
    """
    if num_partitions < 1:
        raise ValueError("need at least one partition")

    if num_partitions == 1:
        plan = plan_builder(0)
        return plan.schema, list(plan.batches())

    plans = [plan_builder(index) for index in range(num_partitions)]
    return run_plans(
        plans,
        pool=pool,
        morsel_driven=morsel_driven,
        plan_builder=plan_builder,
        retries=retries,
    )


def make_context(
    vector_size: int, parallelism: int
) -> ExecutionContext:
    """A fresh execution context for a (possibly parallel) query."""
    return ExecutionContext(vector_size=vector_size, parallelism=parallelism)
