"""Partition-parallel query execution on a persistent worker pool.

Mirrors x100's intra-query parallelism (paper Sections 4.4 and 5.2):
each execution thread gets a *private plan instance*, while
unpartitioned tables (the model table) are scanned by every thread —
the replication the paper describes for distributed setups.  All
pipelines share one :class:`~repro.db.operators.base.ExecutionContext`,
so memory accounting reflects the query-global peak and barrier-style
shared state (the native ModelJoin's shared model build) is visible
across threads.

Two scheduling strategies exist:

* **Static partition binding** — pipeline *i* scans partition *i* of
  every partitioned base table.  Correct whenever the query result is
  the bag-union of per-partition results (aggregations whose group keys
  functionally include the partition key).  This is the fallback for
  plans containing blocking operators.

* **Morsel-driven** — when every operator of every pipeline is
  *morsel-streaming* (scan/filter/project/rename/modeljoin) and exactly
  one partitioned table is scanned, the partitions are split into scan
  morsels on a shared queue and the pipelines steal work from it.
  Skewed partitions then no longer gate query latency: a worker that
  finishes its morsel takes the next one, whichever partition it came
  from.

The worker pool itself is *engine-lifetime*: :class:`WorkerPool` is
owned by the :class:`~repro.db.engine.Database` and reused across
queries, so thread startup cost disappears from per-query latency (the
serving scenario of repeated scoring queries).
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass

from repro.db.operators.base import ExecutionContext, PhysicalOperator
from repro.db.schema import Schema
from repro.db.vector import VectorBatch
from repro.errors import ExecutionError

PlanBuilder = Callable[[int], PhysicalOperator]

#: default number of rows per scan morsel (a few execution vectors)
MORSEL_ROWS = 4096

_worker_slot = threading.local()


def current_worker_name() -> str:
    """Name of the pool worker running the caller (or 'main')."""
    return getattr(_worker_slot, "name", "main")


class WorkerPool:
    """A persistent, named pool of query-execution threads.

    Unlike a per-query ``ThreadPoolExecutor``, the pool's threads live
    for the lifetime of the owning engine.  :meth:`run_tasks` schedules
    one task per worker and blocks until all complete — tasks of one
    parallel query may synchronize with each other (the ModelJoin build
    barrier), which is safe because every task is guaranteed its own
    thread.  A pool-level lock serializes parallel queries so two
    queries can never interleave on the same workers and deadlock.
    """

    def __init__(self, size: int, name_prefix: str = "repro-worker"):
        if size < 1:
            raise ExecutionError("worker pool needs at least one thread")
        self.size = size
        self._query_lock = threading.Lock()
        self._task_ready = threading.Condition()
        self._tasks: list | None = None
        #: bumped per run_tasks call so a worker that loops around
        #: never re-executes the batch it just finished
        self._generation = 0
        self._done = threading.Semaphore(0)
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"{name_prefix}-{index}",
                daemon=True,
            )
            for index in range(size)
        ]
        for thread in self._threads:
            thread.start()

    def _worker_loop(self, index: int) -> None:
        _worker_slot.name = f"worker-{index}"
        seen_generation = 0
        while True:
            with self._task_ready:
                while (
                    self._generation == seen_generation
                    and not self._shutdown
                ):
                    self._task_ready.wait()
                if self._shutdown:
                    return
                seen_generation = self._generation
                tasks = self._tasks
            task = tasks[index] if index < len(tasks) else None
            if task is not None:
                try:
                    task.result = task.function()
                except BaseException as error:  # propagated by run_tasks
                    task.error = error
            self._done.release()

    def run_tasks(self, functions: list[Callable[[], object]]) -> list:
        """Run each function on its own worker; return results in order.

        Raises the first task error after all tasks finished (tasks may
        be barrier-coupled, so none is abandoned mid-flight).
        """
        if len(functions) > self.size:
            raise ExecutionError(
                f"{len(functions)} tasks exceed the pool's "
                f"{self.size} workers"
            )
        if self._shutdown:
            raise ExecutionError("worker pool is shut down")

        @dataclass
        class _Task:
            function: Callable[[], object]
            result: object = None
            error: BaseException | None = None

        tasks = [_Task(function) for function in functions]
        with self._query_lock:
            with self._task_ready:
                self._tasks = tasks
                self._generation += 1
                self._task_ready.notify_all()
            for _ in range(self.size):
                self._done.acquire()
        for task in tasks:
            if task.error is not None:
                raise task.error
        return [task.result for task in tasks]

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent)."""
        if self._shutdown:
            return
        with self._task_ready:
            self._shutdown = True
            self._task_ready.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)


@dataclass
class Morsel:
    """One unit of stealable scan work: a row range of one block."""

    partition_index: int
    block: object
    row_start: int
    row_stop: int


class MorselSource:
    """A thread-safe queue of scan morsels over one partitioned table.

    Built once per query by the coordinator; the pipelines' scans pull
    from it until it runs dry.  Work stealing is implicit: whichever
    worker asks next gets the next morsel, so partition skew spreads
    over all workers instead of gating on the largest partition.
    """

    def __init__(self, table, morsel_rows: int = MORSEL_ROWS):
        self.table = table
        self._lock = threading.Lock()
        self._morsels = self._split(table, morsel_rows)
        self._cursor = 0
        self.dispensed = 0

    @staticmethod
    def _split(table, morsel_rows: int) -> list[Morsel]:
        morsels: list[Morsel] = []
        for partition_index, partition in enumerate(table.partitions):
            for block in partition.blocks():
                rows = block.length
                for start in range(0, rows, morsel_rows):
                    morsels.append(
                        Morsel(
                            partition_index,
                            block,
                            start,
                            min(start + morsel_rows, rows),
                        )
                    )
        return morsels

    def __len__(self) -> int:
        return len(self._morsels)

    def next_morsel(self) -> Morsel | None:
        with self._lock:
            if self._cursor >= len(self._morsels):
                return None
            morsel = self._morsels[self._cursor]
            self._cursor += 1
            self.dispensed += 1
            return morsel


def _pipeline_operators(plan: PhysicalOperator) -> list[PhysicalOperator]:
    operators = [plan]
    for child in plan.children():
        operators.extend(_pipeline_operators(child))
    return operators


def attach_morsel_sources(
    plans: list[PhysicalOperator], morsel_rows: int = MORSEL_ROWS
) -> list[MorselSource]:
    """Switch eligible pipelines to morsel-driven scanning.

    Eligible when every operator of every pipeline is morsel-streaming
    and the pipelines scan exactly one partitioned base table (scans of
    unpartitioned tables are broadcast and stay as they are).  Returns
    the shared sources that were attached ([] means static partition
    binding stays in effect).
    """
    from repro.db.operators.scan import TableScan

    partitioned_scans: list[list[TableScan]] = []
    for plan in plans:
        operators = _pipeline_operators(plan)
        if not all(op.morsel_streaming for op in operators):
            return []
        mine = [
            op
            for op in operators
            if isinstance(op, TableScan) and op.table.num_partitions > 1
        ]
        if len(mine) != 1:
            return []
        partitioned_scans.append(mine)
    tables = {id(scans[0].table) for scans in partitioned_scans}
    if len(tables) != 1:
        return []
    source = MorselSource(
        partitioned_scans[0][0].table, morsel_rows=morsel_rows
    )
    for scans in partitioned_scans:
        scans[0].morsel_source = source
    return [source]


def run_plans(
    plans: list[PhysicalOperator],
    pool: WorkerPool | None = None,
    morsel_driven: bool = False,
) -> tuple[Schema, list[VectorBatch]]:
    """Execute already-built partition pipelines concurrently.

    The caller keeps the plan instances, so their post-run operator
    stats remain inspectable (parallel EXPLAIN ANALYZE merges them).
    With a tracer enabled on the plans' context, every pipeline records
    a ``pipeline`` span on its worker thread, parented under the
    query's span via ``context.trace_parent``.
    """
    if not plans:
        raise ValueError("need at least one plan")
    if morsel_driven:
        attach_morsel_sources(plans)

    def run_one(index: int, plan: PhysicalOperator) -> list[VectorBatch]:
        tracer = plan.context.tracer
        if not tracer.enabled:
            return list(plan.batches())
        with tracer.span(
            "pipeline",
            category="parallel",
            parent_id=plan.context.trace_parent,
            args={"pipeline": index, "worker": current_worker_name()},
        ):
            return list(plan.batches())

    if len(plans) == 1:
        per_pipeline = [run_one(0, plans[0])]
    elif pool is not None:
        per_pipeline = pool.run_tasks(
            [
                lambda index=index, plan=plan: run_one(index, plan)
                for index, plan in enumerate(plans)
            ]
        )
    else:
        per_pipeline = [None] * len(plans)
        errors: list[BaseException] = []

        def run_at(index: int) -> None:
            try:
                per_pipeline[index] = run_one(index, plans[index])
            except BaseException as error:
                errors.append(error)

        threads = [
            threading.Thread(target=run_at, args=(index,))
            for index in range(len(plans))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
    schema = plans[0].schema
    batches = [
        batch for pipeline in per_pipeline for batch in pipeline
    ]
    return schema, batches


def run_partitioned(
    plan_builder: PlanBuilder,
    num_partitions: int,
    max_workers: int | None = None,
    pool: WorkerPool | None = None,
    morsel_driven: bool = False,
) -> tuple[Schema, list[VectorBatch]]:
    """Execute one plan instance per partition pipeline.

    With *pool* the pipelines run on the engine's persistent workers;
    otherwise a transient thread-per-partition fallback is used (kept
    for callers without an engine).  With *morsel_driven* the plans are
    built eagerly and, when eligible, rewired to steal scan morsels
    from a shared queue (see :func:`attach_morsel_sources`).

    Returns the output schema and all result batches, ordered by
    pipeline (batch order within a pipeline is preserved).
    """
    if num_partitions < 1:
        raise ValueError("need at least one partition")

    if num_partitions == 1:
        plan = plan_builder(0)
        return plan.schema, list(plan.batches())

    plans = [plan_builder(index) for index in range(num_partitions)]
    return run_plans(plans, pool=pool, morsel_driven=morsel_driven)


def make_context(
    vector_size: int, parallelism: int
) -> ExecutionContext:
    """A fresh execution context for a (possibly parallel) query."""
    return ExecutionContext(vector_size=vector_size, parallelism=parallelism)
