"""Partition-parallel query execution.

Mirrors x100's intra-query parallelism (paper Sections 4.4 and 5.2):
each execution thread gets a *private plan instance* bound to one
partition of the partitioned base tables, while unpartitioned tables
(the model table) are scanned by every thread — the replication the
paper describes for distributed setups.  All pipelines share one
:class:`~repro.db.operators.base.ExecutionContext`, so memory accounting
reflects the query-global peak and barrier-style shared state (the
native ModelJoin's shared model build) is visible across threads.

Correctness contract: a query may be executed partition-parallel when
its result is the bag-union of per-partition results — true whenever
every aggregation's group keys functionally include the fact table's
partition key, which holds for all ModelJoin queries (group keys carry
the unique tuple ID).  The caller asserts this by opting in.
"""

from __future__ import annotations

from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

from repro.db.operators.base import ExecutionContext, PhysicalOperator
from repro.db.schema import Schema
from repro.db.vector import VectorBatch

PlanBuilder = Callable[[int], PhysicalOperator]


def run_partitioned(
    plan_builder: PlanBuilder,
    num_partitions: int,
    max_workers: int | None = None,
) -> tuple[Schema, list[VectorBatch]]:
    """Execute one plan instance per partition, in a thread pool.

    Returns the output schema and all result batches, ordered by
    partition (batch order within a partition is preserved).
    """
    if num_partitions < 1:
        raise ValueError("need at least one partition")

    def run_one(
        partition_index: int,
    ) -> tuple[Schema, list[VectorBatch]]:
        plan = plan_builder(partition_index)
        return plan.schema, list(plan.batches())

    if num_partitions == 1:
        return run_one(0)

    workers = max_workers or num_partitions
    with ThreadPoolExecutor(max_workers=workers) as pool:
        per_partition = list(pool.map(run_one, range(num_partitions)))
    schema = per_partition[0][0]
    batches = [
        batch for _, partition in per_partition for batch in partition
    ]
    return schema, batches


def make_context(
    vector_size: int, parallelism: int
) -> ExecutionContext:
    """A fresh execution context for a (possibly parallel) query."""
    return ExecutionContext(vector_size=vector_size, parallelism=parallelism)
