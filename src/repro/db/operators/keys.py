"""Key packing shared by joins and aggregations.

Multi-column keys are encoded into a single NumPy *structured* array of
int64 codes.  The coding is value-deterministic (bit patterns, not
factorization), so two relations can be coded independently and still
compare equal — which is what lets the hash join code its build side
once and probe in a streaming fashion.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError


def _int64_codes(values: np.ndarray) -> np.ndarray:
    """Deterministic int64 code for one key column.

    - integers/booleans: the value itself,
    - floats: IEEE bit pattern of the float64 value (with ``-0.0``
      normalized to ``0.0`` so SQL equality and code equality agree),
    - anything else is rejected (string keys take the slow path in the
      caller, not here).
    """
    kind = values.dtype.kind
    if kind in "iu":
        return values.astype(np.int64, copy=False)
    if kind == "b":
        return values.astype(np.int64)
    if kind == "f":
        as_double = values.astype(np.float64, copy=True)
        zero_mask = as_double == 0.0
        if zero_mask.any():
            as_double[zero_mask] = 0.0
        return as_double.view(np.int64)
    raise ExecutionError(f"cannot pack key column of dtype {values.dtype}")


def supports_fast_keys(arrays: list[np.ndarray]) -> bool:
    """Whether all key columns can be bit-pattern coded."""
    return all(array.dtype.kind in "iubf" for array in arrays)


def pack_keys(arrays: list[np.ndarray]) -> np.ndarray:
    """Encode the key columns into one comparable array.

    Returns an int64 array for a single key column, otherwise a
    structured array with one int64 field per key column.  The result
    supports ``np.argsort`` and ``np.searchsorted`` with lexicographic
    field order, which is all the join and aggregation need.
    """
    if not arrays:
        raise ExecutionError("pack_keys needs at least one key column")
    codes = [_int64_codes(array) for array in arrays]
    if len(codes) == 1:
        return codes[0]
    stacked = np.ascontiguousarray(np.column_stack(codes))
    dtype = np.dtype([(f"f{i}", np.int64) for i in range(len(codes))])
    return stacked.view(dtype).reshape(len(arrays[0]))


def pack_keys_slow(arrays: list[np.ndarray]) -> np.ndarray:
    """Object-array-of-tuples coding for string or mixed keys.

    Slower, but comparable and hashable — used as the fallback path for
    VARCHAR join/group keys.
    """
    rows = list(zip(*(array.tolist() for array in arrays)))
    packed = np.empty(len(rows), dtype=object)
    packed[:] = rows
    return packed


def ranges_to_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flatten per-row match ranges ``[start, start+count)`` to indices.

    Used by the join to expand ``searchsorted`` hit ranges into gather
    indices without a Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    repeated_starts = np.repeat(starts, counts)
    cumulative = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(cumulative, counts)
    return repeated_starts + within
