"""Selection operator."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.db.expressions import Expression
from repro.db.operators.base import ExecutionContext, UnaryOperator
from repro.db.operators.base import PhysicalOperator
from repro.db.vector import VectorBatch
from repro.errors import ExecutionError


class FilterOperator(UnaryOperator):
    """Keeps the rows for which the predicate evaluates to true.

    Selection is order-preserving, so the child's ordering property
    propagates unchanged.
    """

    morsel_streaming = True

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        predicate: Expression,
        compiled=None,
    ):
        super().__init__(context, child.schema, child)
        self.predicate = predicate
        #: optional CompiledExpr evaluating the predicate in one
        #: generated call (residual filters the lowering could not fuse
        #: into a FusedPipeline still skip tree interpretation this way)
        self.compiled = compiled

    @property
    def compiled_source(self) -> str | None:
        return None if self.compiled is None else self.compiled.source

    @property
    def ordering(self) -> tuple[str, ...]:
        return self.child.ordering

    def _produce(self) -> Iterator[VectorBatch]:
        evaluate = (
            self.predicate.evaluate
            if self.compiled is None
            else self.compiled.evaluate
        )
        for batch in self.child.next_batches():
            mask = evaluate(batch)
            if mask.dtype != np.bool_:
                raise ExecutionError(
                    f"WHERE predicate is not boolean: {self.predicate}"
                )
            if mask.all():
                yield batch
            elif mask.any():
                yield batch.filter(mask)

    def describe(self) -> str:
        marker = "" if self.compiled is None else " [compiled]"
        return f"Filter({self.predicate}){marker}"
