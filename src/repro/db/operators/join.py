"""Hash (equi-) join.

The build side (by planner convention the *right* child — in ModelJoin
queries this is the small model table) is fully consumed first; the
probe side then streams through.  The implementation codes the build
keys once, sorts them, and answers each probe vector with two
``searchsorted`` calls — semantically a hash join, with the same
memory profile (build side materialized) and the same pipelining
property: probe-side order is preserved because every probe row's
matches are emitted contiguously and in probe order.  That preserved
order is what enables the order-based aggregation of paper Section 4.4.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.db.expressions import Expression
from repro.db.operators.base import (
    BinaryOperator,
    ExecutionContext,
    PhysicalOperator,
)
from repro.db.operators.keys import (
    pack_keys,
    pack_keys_slow,
    ranges_to_indices,
    supports_fast_keys,
)
from repro.db.vector import VectorBatch, concat_batches
from repro.errors import ExecutionError


class HashJoin(BinaryOperator):
    """Inner equi-join; left = probe side, right = build side."""

    def __init__(
        self,
        context: ExecutionContext,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: list[Expression],
        right_keys: list[Expression],
        residual: Expression | None = None,
    ):
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ExecutionError("join needs matching, non-empty key lists")
        super().__init__(context, left.schema.concat(right.schema), left, right)
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self._build_batch: VectorBatch | None = None
        self._sorted_keys: np.ndarray | None = None
        self._order: np.ndarray | None = None
        self._fast_keys = True
        self._accounted_bytes = 0

    @property
    def ordering(self) -> tuple[str, ...]:
        return self.left.ordering

    def _build(self) -> None:
        """Drain the build (right) side and index its keys."""
        batches = list(self.right.next_batches())
        build = concat_batches(self.right.schema, batches)
        self._build_batch = build
        key_arrays = [key.evaluate(build) for key in self.right_keys]
        self._fast_keys = supports_fast_keys(key_arrays)
        if self._fast_keys:
            packed = pack_keys(key_arrays)
        else:
            packed = pack_keys_slow(key_arrays)
        self._order = np.argsort(packed, kind="stable")
        self._sorted_keys = packed[self._order]
        self._accounted_bytes = (
            build.nominal_bytes() + self._sorted_keys.size * 8 * 2
        )
        self.context.memory.allocate(self._accounted_bytes, "join-build")

    def _probe(self, batch: VectorBatch) -> VectorBatch | None:
        key_arrays = [key.evaluate(batch) for key in self.left_keys]
        if self._fast_keys:
            packed = pack_keys(key_arrays)
        else:
            packed = pack_keys_slow(key_arrays)
        low = np.searchsorted(self._sorted_keys, packed, side="left")
        high = np.searchsorted(self._sorted_keys, packed, side="right")
        counts = (high - low).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return None
        probe_indices = np.repeat(
            np.arange(len(batch), dtype=np.int64), counts
        )
        build_positions = ranges_to_indices(low.astype(np.int64), counts)
        build_indices = self._order[build_positions]
        left_out = batch.take(probe_indices)
        right_out = self._build_batch.take(build_indices)
        joined = left_out.concat_columns(right_out)
        if self.residual is not None:
            mask = self.residual.evaluate(joined)
            if mask.dtype != np.bool_:
                raise ExecutionError("join residual predicate is not boolean")
            if not mask.all():
                joined = joined.filter(mask)
        return joined if len(joined) else None

    def _produce(self) -> Iterator[VectorBatch]:
        self._build()
        for batch in self.left.next_batches():
            joined = self._probe(batch)
            if joined is None:
                continue
            # Joined batches can exceed the vector size (one probe row
            # may match many build rows); re-slice to engine granularity.
            for start in range(0, len(joined), self.context.vector_size):
                yield joined.slice(start, start + self.context.vector_size)

    def close(self) -> None:
        if self._accounted_bytes:
            self.context.memory.release(self._accounted_bytes, "join-build")
            self._accounted_bytes = 0
        self._build_batch = None
        self._sorted_keys = None
        self._order = None
        super().close()

    def describe(self) -> str:
        keys = ", ".join(
            f"{left} = {right}"
            for left, right in zip(self.left_keys, self.right_keys)
        )
        suffix = f" AND {self.residual}" if self.residual is not None else ""
        return f"HashJoin({keys}{suffix})"
