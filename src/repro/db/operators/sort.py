"""Sort operator (pipeline breaker)."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.db.expressions import ColumnRef
from repro.db.operators.base import (
    ExecutionContext,
    PhysicalOperator,
    UnaryOperator,
)
from repro.db.vector import VectorBatch, concat_batches
from repro.errors import PlanError


class SortOperator(UnaryOperator):
    """Materializes its input and emits it sorted by the given columns."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        keys: list[ColumnRef],
        ascending: list[bool] | None = None,
    ):
        super().__init__(context, child.schema, child)
        if not keys:
            raise PlanError("ORDER BY requires at least one key")
        for key in keys:
            if not isinstance(key, ColumnRef):
                raise PlanError("ORDER BY keys must be column references")
            child.schema.position_of(key.name)
        self.keys = list(keys)
        self.ascending = ascending or [True] * len(keys)
        self._accounted_bytes = 0

    @property
    def ordering(self) -> tuple[str, ...]:
        if all(self.ascending):
            return tuple(key.name for key in self.keys)
        return ()

    def _produce(self) -> Iterator[VectorBatch]:
        whole = concat_batches(self.schema, list(self.child.next_batches()))
        self._accounted_bytes = whole.nominal_bytes()
        self.context.memory.allocate(self._accounted_bytes, "sort")
        if len(whole) == 0:
            return
        # np.lexsort sorts by the *last* key first, so reverse the list.
        columns = []
        for key, ascending in zip(reversed(self.keys), reversed(self.ascending)):
            values = whole.column(key.name)
            if not ascending:
                if values.dtype.kind in "if":
                    values = -values.astype(np.float64)
                else:
                    raise PlanError(
                        "DESC is only supported for numeric sort keys"
                    )
            columns.append(values)
        order = np.lexsort(columns)
        ordered = whole.take(order)
        for start in range(0, len(ordered), self.context.vector_size):
            yield ordered.slice(start, start + self.context.vector_size)

    def close(self) -> None:
        if self._accounted_bytes:
            self.context.memory.release(self._accounted_bytes, "sort")
            self._accounted_bytes = 0
        super().close()

    def describe(self) -> str:
        rendered = ", ".join(
            f"{key.name} {'ASC' if ascending else 'DESC'}"
            for key, ascending in zip(self.keys, self.ascending)
        )
        return f"Sort({rendered})"
