"""Operator base class and execution context."""

from __future__ import annotations

import time
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.db.profiler import MemoryAccountant, ProfileCounters, Stopwatch
from repro.db.resilience import CancellationToken
from repro.db.schema import Schema
from repro.db.tracing import NULL_TRACER, MetricsRegistry, Tracer
from repro.db.vector import VECTOR_SIZE, VectorBatch
from repro.errors import ExecutionError


@dataclass
class ExecutionContext:
    """Per-query execution state shared by all operators of a plan.

    One context exists per query; in partition-parallel execution all
    partition pipelines share the same context so that the memory
    accountant sees the query-global peak (the model, for example, is a
    shared allocation, see paper Section 5.2).
    """

    vector_size: int = VECTOR_SIZE
    memory: MemoryAccountant = field(default_factory=MemoryAccountant)
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    counters: ProfileCounters = field(default_factory=ProfileCounters)
    #: number of partition pipelines executing this plan
    parallelism: int = 1
    #: arbitrary extension point (the ModelJoin stores its shared model
    #: build state here, keyed by operator id)
    shared_state: dict = field(default_factory=dict)
    #: span producer (a no-op NullTracer unless the engine enabled it)
    tracer: Tracer = NULL_TRACER
    #: engine-lifetime metrics registry, or None without an engine
    metrics: MetricsRegistry | None = None
    #: collect per-operator cumulative time and batch timing (set for
    #: EXPLAIN ANALYZE and whenever the tracer is enabled; off on the
    #: default hot path, which then pays only a row/batch increment)
    operator_timing: bool = False
    #: span id the partition pipelines parent under (cross-thread edge
    #: from the coordinator's query span to the workers)
    trace_parent: int | None = None
    #: cooperative deadline/cancellation token; checked per batch in
    #: operator ``next()`` loops, per morsel in the scan loop and per
    #: kernel on the device (None = the query has no deadline)
    cancellation: CancellationToken | None = None
    #: per-query resource-profile collector (duck-typed: see
    #: repro.db.introspect.ResourceProfile); operators and the
    #: parallel executor annotate it — None when the engine runs with
    #: query-log collection disabled
    collector: object | None = None


def format_operator_seconds(seconds: float) -> str:
    """Compact duration rendering for EXPLAIN ANALYZE stat lines."""
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


class PhysicalOperator:
    """Base class of all physical operators (Volcano iterator model)."""

    #: True for operators that transform each input batch independently
    #: of every other batch (scan/filter/project/rename/modeljoin).  A
    #: pipeline made only of such operators produces the bag-union of
    #: per-batch results, so its scans may pull morsels from a shared
    #: queue instead of being bound to one partition (morsel-driven
    #: scheduling).  Blocking or cross-batch operators (aggregation,
    #: sort, limit, joins over partitioned build sides) keep the
    #: default False.
    morsel_streaming = False

    def __init__(self, context: ExecutionContext, schema: Schema):
        self.context = context
        self.schema = schema
        self._opened = False
        #: rows this operator emitted (filled during execution;
        #: rendered by EXPLAIN ANALYZE)
        self.rows_emitted = 0
        #: batches this operator emitted
        self.batches_emitted = 0
        #: seconds spent producing this operator's batches, children
        #: included (cumulative time; only filled with operator_timing)
        self.cumulative_seconds = 0.0
        #: tracing state: this operator's span id and its parent span
        self._span_id: int | None = None
        self._trace_parent: int | None = None
        self._first_pull_us: float | None = None

    @property
    def ordering(self) -> tuple[str, ...]:
        """Column names the output is guaranteed to be sorted by.

        An empty tuple means no guaranteed order.  This property drives
        the planner's choice between hash and order-based aggregation
        (paper Section 4.4).
        """
        return ()

    def open(self) -> None:
        """Acquire resources. Subclasses must call ``super().open()``."""
        if self._opened:
            raise ExecutionError(f"{type(self).__name__} opened twice")
        tracer = self.context.tracer
        if tracer.enabled:
            self._span_id = tracer.allocate_id()
            if self._trace_parent is None:
                # Root operator of a pipeline: attach to the innermost
                # open span of this thread (pipeline or query span).
                self._trace_parent = tracer.current_span_id()
        self._opened = True

    def _adopt_child_span(self, child: "PhysicalOperator") -> None:
        """Parent *child*'s operator span under this operator's span."""
        if self._span_id is not None:
            child._trace_parent = self._span_id

    def next_batches(self) -> Iterator[VectorBatch]:
        """Yield output batches until exhausted (counts rows).

        A cooperative cancellation checkpoint runs once per batch: one
        ``is None`` test on the hot path, a deadline comparison only
        when the query actually carries a token.
        """
        cancellation = self.context.cancellation
        if not self.context.operator_timing:
            for batch in self._produce():
                if cancellation is not None:
                    cancellation.check()
                self.rows_emitted += len(batch)
                self.batches_emitted += 1
                yield batch
            return
        tracer = self.context.tracer
        if tracer.enabled and self._first_pull_us is None:
            self._first_pull_us = tracer.now_us()
        perf = time.perf_counter
        producer = self._produce()
        while True:
            started = perf()
            try:
                batch = next(producer)
            except StopIteration:
                self.cumulative_seconds += perf() - started
                return
            self.cumulative_seconds += perf() - started
            if cancellation is not None:
                cancellation.check()
            self.rows_emitted += len(batch)
            self.batches_emitted += 1
            yield batch

    def _produce(self) -> Iterator[VectorBatch]:
        """Operator-specific batch production."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources. Subclasses must call ``super().close()``."""
        tracer = self.context.tracer
        if (
            tracer.enabled
            and self._span_id is not None
            and self._first_pull_us is not None
        ):
            # One complete event per operator: wall interval from the
            # first pull to close, with the cumulative busy time and
            # row/batch counts as arguments.  Intervals nest properly
            # (a parent pulls its child from inside its own interval).
            tracer.record(
                name=type(self).__name__,
                category="operator",
                start_us=self._first_pull_us,
                duration_us=tracer.now_us() - self._first_pull_us,
                span_id=self._span_id,
                parent_id=self._trace_parent,
                args={
                    "rows": self.rows_emitted,
                    "batches": self.batches_emitted,
                    "busy_seconds": round(self.cumulative_seconds, 6),
                },
            )
            self._first_pull_us = None
        self._opened = False

    def batches(self) -> Iterator[VectorBatch]:
        """Full lifecycle: open, stream all batches, close."""
        self.open()
        try:
            yield from self.next_batches()
        finally:
            self.close()

    def merge_stats_from(self, other: "PhysicalOperator") -> None:
        """Fold *other*'s execution stats into this operator, tree-wise.

        Parallel EXPLAIN ANALYZE runs one structurally identical plan
        per partition pipeline; merging them pairwise turns the rendered
        tree into query-global per-operator stats instead of showing
        only one pipeline's share.
        """
        self.rows_emitted += other.rows_emitted
        self.batches_emitted += other.batches_emitted
        self.cumulative_seconds += other.cumulative_seconds
        for mine, theirs in zip(self.children(), other.children()):
            mine.merge_stats_from(theirs)

    def explain(self, indent: int = 0, stats: bool = False) -> str:
        """Human-readable plan tree (EXPLAIN / EXPLAIN ANALYZE output)."""
        line = " " * indent + self.describe()
        if stats:
            line += f"  [rows: {self.rows_emitted}]"
            line += f" [batches: {self.batches_emitted}]"
            if self.context.operator_timing:
                line += (
                    " [time: "
                    f"{format_operator_seconds(self.cumulative_seconds)}]"
                )
        children = "\n".join(
            child.explain(indent + 2, stats=stats)
            for child in self.children()
        )
        return line + ("\n" + children if children else "")

    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> list["PhysicalOperator"]:
        return []


class UnaryOperator(PhysicalOperator):
    """An operator with exactly one input."""

    def __init__(
        self,
        context: ExecutionContext,
        schema: Schema,
        child: PhysicalOperator,
    ):
        super().__init__(context, schema)
        self.child = child

    def open(self) -> None:
        super().open()
        self._adopt_child_span(self.child)
        self.child.open()

    def close(self) -> None:
        self.child.close()
        super().close()

    def children(self) -> list[PhysicalOperator]:
        return [self.child]


class BinaryOperator(PhysicalOperator):
    """An operator with two inputs (joins)."""

    def __init__(
        self,
        context: ExecutionContext,
        schema: Schema,
        left: PhysicalOperator,
        right: PhysicalOperator,
    ):
        super().__init__(context, schema)
        self.left = left
        self.right = right

    def open(self) -> None:
        super().open()
        self._adopt_child_span(self.left)
        self._adopt_child_span(self.right)
        self.left.open()
        self.right.open()

    def close(self) -> None:
        self.left.close()
        self.right.close()
        super().close()

    def children(self) -> list[PhysicalOperator]:
        return [self.left, self.right]
