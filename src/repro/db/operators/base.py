"""Operator base class and execution context."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.db.profiler import MemoryAccountant, ProfileCounters, Stopwatch
from repro.db.schema import Schema
from repro.db.vector import VECTOR_SIZE, VectorBatch
from repro.errors import ExecutionError


@dataclass
class ExecutionContext:
    """Per-query execution state shared by all operators of a plan.

    One context exists per query; in partition-parallel execution all
    partition pipelines share the same context so that the memory
    accountant sees the query-global peak (the model, for example, is a
    shared allocation, see paper Section 5.2).
    """

    vector_size: int = VECTOR_SIZE
    memory: MemoryAccountant = field(default_factory=MemoryAccountant)
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    counters: ProfileCounters = field(default_factory=ProfileCounters)
    #: number of partition pipelines executing this plan
    parallelism: int = 1
    #: arbitrary extension point (the ModelJoin stores its shared model
    #: build state here, keyed by operator id)
    shared_state: dict = field(default_factory=dict)


class PhysicalOperator:
    """Base class of all physical operators (Volcano iterator model)."""

    #: True for operators that transform each input batch independently
    #: of every other batch (scan/filter/project/rename/modeljoin).  A
    #: pipeline made only of such operators produces the bag-union of
    #: per-batch results, so its scans may pull morsels from a shared
    #: queue instead of being bound to one partition (morsel-driven
    #: scheduling).  Blocking or cross-batch operators (aggregation,
    #: sort, limit, joins over partitioned build sides) keep the
    #: default False.
    morsel_streaming = False

    def __init__(self, context: ExecutionContext, schema: Schema):
        self.context = context
        self.schema = schema
        self._opened = False
        #: rows this operator emitted (filled during execution;
        #: rendered by EXPLAIN ANALYZE)
        self.rows_emitted = 0

    @property
    def ordering(self) -> tuple[str, ...]:
        """Column names the output is guaranteed to be sorted by.

        An empty tuple means no guaranteed order.  This property drives
        the planner's choice between hash and order-based aggregation
        (paper Section 4.4).
        """
        return ()

    def open(self) -> None:
        """Acquire resources. Subclasses must call ``super().open()``."""
        if self._opened:
            raise ExecutionError(f"{type(self).__name__} opened twice")
        self._opened = True

    def next_batches(self) -> Iterator[VectorBatch]:
        """Yield output batches until exhausted (counts rows)."""
        for batch in self._produce():
            self.rows_emitted += len(batch)
            yield batch

    def _produce(self) -> Iterator[VectorBatch]:
        """Operator-specific batch production."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources. Subclasses must call ``super().close()``."""
        self._opened = False

    def batches(self) -> Iterator[VectorBatch]:
        """Full lifecycle: open, stream all batches, close."""
        self.open()
        try:
            yield from self.next_batches()
        finally:
            self.close()

    def explain(self, indent: int = 0, stats: bool = False) -> str:
        """Human-readable plan tree (EXPLAIN / EXPLAIN ANALYZE output)."""
        line = " " * indent + self.describe()
        if stats:
            line += f"  [rows: {self.rows_emitted}]"
        children = "\n".join(
            child.explain(indent + 2, stats=stats)
            for child in self.children()
        )
        return line + ("\n" + children if children else "")

    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> list["PhysicalOperator"]:
        return []


class UnaryOperator(PhysicalOperator):
    """An operator with exactly one input."""

    def __init__(
        self,
        context: ExecutionContext,
        schema: Schema,
        child: PhysicalOperator,
    ):
        super().__init__(context, schema)
        self.child = child

    def open(self) -> None:
        super().open()
        self.child.open()

    def close(self) -> None:
        self.child.close()
        super().close()

    def children(self) -> list[PhysicalOperator]:
        return [self.child]


class BinaryOperator(PhysicalOperator):
    """An operator with two inputs (joins)."""

    def __init__(
        self,
        context: ExecutionContext,
        schema: Schema,
        left: PhysicalOperator,
        right: PhysicalOperator,
    ):
        super().__init__(context, schema)
        self.left = left
        self.right = right

    def open(self) -> None:
        super().open()
        self.left.open()
        self.right.open()

    def close(self) -> None:
        self.left.close()
        self.right.close()
        super().close()

    def children(self) -> list[PhysicalOperator]:
        return [self.left, self.right]
