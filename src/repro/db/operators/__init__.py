"""Vectorized Volcano-style physical operators.

Every operator implements the classic ``open() / next() / close()``
iterator contract (paper Section 5.1) exposed pythonically through
:meth:`~repro.db.operators.base.PhysicalOperator.batches`.  Operators
exchange :class:`~repro.db.vector.VectorBatch` objects and report
significant allocations (hash tables, buffered state) to the execution
context's memory accountant.
"""

from repro.db.operators.base import ExecutionContext, PhysicalOperator
from repro.db.operators.scan import TableScan
from repro.db.operators.filter import FilterOperator
from repro.db.operators.project import ProjectOperator
from repro.db.operators.join import HashJoin
from repro.db.operators.cross_join import CrossJoin
from repro.db.operators.aggregate import (
    AggregateSpec,
    HashAggregate,
    OrderedAggregate,
)
from repro.db.operators.sort import SortOperator
from repro.db.operators.misc import LimitOperator, UnionAll, ValuesOperator

__all__ = [
    "ExecutionContext",
    "PhysicalOperator",
    "TableScan",
    "FilterOperator",
    "ProjectOperator",
    "HashJoin",
    "CrossJoin",
    "AggregateSpec",
    "HashAggregate",
    "OrderedAggregate",
    "SortOperator",
    "LimitOperator",
    "UnionAll",
    "ValuesOperator",
]
