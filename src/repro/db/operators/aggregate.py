"""Grouped aggregation: hash-based and order-based.

The hash aggregate is the generic strategy: it materializes its input
(a pipeline breaker with memory proportional to the input), groups via
a sort over packed keys, and reduces each group with ``ufunc.reduceat``.

The order-based aggregate is the optimization of paper Section 4.4: if
the input is already sorted on the group keys it emits a group the
moment its key changes, holding only constant state — this is what
makes the ML-To-SQL pipeline fully streaming and low-memory.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.db.expressions import ColumnRef, Expression
from repro.db.operators.base import (
    ExecutionContext,
    PhysicalOperator,
    UnaryOperator,
)
from repro.db.operators.keys import pack_keys, pack_keys_slow, supports_fast_keys
from repro.db.schema import Column, Schema
from repro.db.types import SqlType
from repro.db.vector import VectorBatch
from repro.errors import PlanError

_SUPPORTED = ("SUM", "COUNT", "MIN", "MAX", "AVG")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate of the SELECT list, e.g. ``SUM(x * w) AS s``."""

    function: str
    argument: Expression | None
    name: str

    def __post_init__(self) -> None:
        function = self.function.upper()
        if function not in _SUPPORTED:
            raise PlanError(f"unsupported aggregate function {self.function}")
        if function != "COUNT" and self.argument is None:
            raise PlanError(f"{function} requires an argument")
        object.__setattr__(self, "function", function)

    def output_type(self, input_schema: Schema) -> SqlType:
        if self.function == "COUNT":
            return SqlType.INTEGER
        argument_type = self.argument.output_type(input_schema)
        if self.function == "AVG":
            return SqlType.DOUBLE
        if not argument_type.is_numeric and self.function == "SUM":
            raise PlanError("SUM requires a numeric argument")
        return argument_type

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        return f"{self.function}({inner})"


def _output_schema(
    input_schema: Schema,
    group_expressions: list[Expression],
    group_names: list[str],
    aggregates: list[AggregateSpec],
) -> Schema:
    columns = [
        Column(name, expression.output_type(input_schema))
        for expression, name in zip(group_expressions, group_names)
    ]
    columns.extend(
        Column(spec.name, spec.output_type(input_schema))
        for spec in aggregates
    )
    return Schema(tuple(columns))


def _evaluate_argument(
    spec: AggregateSpec, batch: VectorBatch
) -> np.ndarray:
    if spec.function == "COUNT":
        # COUNT and COUNT(*) both reduce a ones vector; the argument
        # (when present) never needs evaluating.
        return np.ones(len(batch), dtype=np.int64)
    return spec.argument.evaluate(batch)


def _batch_inputs(operator, batch: VectorBatch):
    """Group-key and aggregate-argument arrays for one input batch.

    With a compiled input kernel (see :mod:`repro.db.compile`) the
    fused filter + expression evaluation happens in one generated
    call; ``None`` means the fused filter dropped every row.  Without
    a kernel this is the interpreted per-expression walk.
    """
    kernel = operator.input_kernel
    if kernel is not None:
        arrays = kernel(
            batch.arrays, len(batch), operator.context.cancellation
        )
        if arrays is None:
            return None
        split = len(operator.group_expressions)
        return arrays[:split], arrays[split:]
    keys = [
        expression.evaluate(batch)
        for expression in operator.group_expressions
    ]
    values = [_evaluate_argument(spec, batch) for spec in operator.aggregates]
    return keys, values


def _describe_fusion(operator) -> str:
    """Suffix describing a compiled input kernel, for EXPLAIN."""
    if operator.input_kernel is None:
        return ""
    if operator.fused_filter is not None:
        return f" [compiled input | fused filter: {operator.fused_filter}]"
    return " [compiled input]"


def _reduce_segments(
    spec: AggregateSpec, values: np.ndarray, starts: np.ndarray
) -> np.ndarray:
    """Reduce contiguous segments beginning at *starts*."""
    if spec.function in ("SUM", "COUNT", "AVG"):
        return np.add.reduceat(values, starts)
    if spec.function == "MIN":
        return np.minimum.reduceat(values, starts)
    return np.maximum.reduceat(values, starts)


def _merge_partials(spec: AggregateSpec, left, right):
    """Combine two partial aggregates of the same group."""
    if spec.function in ("SUM", "COUNT", "AVG"):
        return left + right
    if spec.function == "MIN":
        return min(left, right)
    return max(left, right)


class HashAggregate(UnaryOperator):
    """Generic grouped aggregation; materializes its input."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        group_expressions: list[Expression],
        group_names: list[str],
        aggregates: list[AggregateSpec],
        input_kernel=None,
        fused_filter: Expression | None = None,
    ):
        if not group_expressions:
            raise PlanError("global aggregation uses group keys = ()")
        schema = _output_schema(
            child.schema, group_expressions, group_names, aggregates
        )
        super().__init__(context, schema, child)
        self.group_expressions = list(group_expressions)
        self.group_names = list(group_names)
        self.aggregates = list(aggregates)
        self.input_kernel = input_kernel
        self.fused_filter = fused_filter
        self._accounted_bytes = 0

    @property
    def compiled_source(self) -> str | None:
        """Input-kernel source (rendered by EXPLAIN), if compiled."""
        return None if self.input_kernel is None else self.input_kernel.source

    def _produce(self) -> Iterator[VectorBatch]:
        key_chunks: list[list[np.ndarray]] = [
            [] for _ in self.group_expressions
        ]
        value_chunks: list[list[np.ndarray]] = [[] for _ in self.aggregates]
        for batch in self.child.next_batches():
            if len(batch) == 0:
                continue
            inputs = _batch_inputs(self, batch)
            if inputs is None:
                continue
            keys, values = inputs
            for slot, array in enumerate(keys):
                key_chunks[slot].append(array)
                self._account(array)
            for slot, array in enumerate(values):
                value_chunks[slot].append(array)
                self._account(array)
        if not key_chunks[0]:
            return
        keys = [np.concatenate(chunks) for chunks in key_chunks]
        values = [np.concatenate(chunks) for chunks in value_chunks]
        if supports_fast_keys(keys):
            packed = pack_keys(keys)
        else:
            packed = pack_keys_slow(keys)
        order = np.argsort(packed, kind="stable")
        sorted_packed = packed[order]
        if len(sorted_packed) == 0:
            return
        new_group = np.empty(len(sorted_packed), dtype=np.bool_)
        new_group[0] = True
        new_group[1:] = sorted_packed[1:] != sorted_packed[:-1]
        starts = np.flatnonzero(new_group)
        group_counts = np.diff(
            np.append(starts, len(sorted_packed))
        ).astype(np.int64)
        arrays: list[np.ndarray] = [key[order][starts] for key in keys]
        for spec, column in zip(self.aggregates, values):
            reduced = _reduce_segments(spec, column[order], starts)
            if spec.function == "AVG":
                reduced = reduced.astype(np.float64) / group_counts
            arrays.append(reduced)
        result = VectorBatch(
            self.schema,
            [
                array.astype(column.sql_type.numpy_dtype, copy=False)
                for array, column in zip(arrays, self.schema)
            ],
        )
        for start in range(0, len(result), self.context.vector_size):
            yield result.slice(start, start + self.context.vector_size)

    def _account(self, values: np.ndarray) -> None:
        nbytes = values.nbytes if values.dtype != object else len(values) * 16
        self._accounted_bytes += nbytes
        self.context.memory.allocate(nbytes, "aggregation")

    def close(self) -> None:
        if self._accounted_bytes:
            self.context.memory.release(self._accounted_bytes, "aggregation")
            self._accounted_bytes = 0
        super().close()

    def describe(self) -> str:
        keys = ", ".join(map(str, self.group_expressions))
        aggs = ", ".join(str(spec) for spec in self.aggregates)
        return (
            f"HashAggregate(by [{keys}] compute [{aggs}])"
            f"{_describe_fusion(self)}"
        )


class OrderedAggregate(UnaryOperator):
    """Streaming aggregation over input sorted by the group keys.

    Only legal when the child's ordering starts with the group key
    columns (the planner checks this).  Group keys must be bare column
    references.  Memory is constant: one open group.
    """

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        group_expressions: list[Expression],
        group_names: list[str],
        aggregates: list[AggregateSpec],
        input_kernel=None,
        fused_filter: Expression | None = None,
    ):
        for expression in group_expressions:
            if not isinstance(expression, ColumnRef):
                raise PlanError(
                    "order-based aggregation requires bare column group keys"
                )
        key_names = {
            expression.name.lower() for expression in group_expressions
        }
        child_order = tuple(name.lower() for name in child.ordering)
        # The first len(keys) ordering columns must be exactly the group
        # keys (their relative order is irrelevant: rows of one group are
        # contiguous either way).
        if set(child_order[: len(key_names)]) != key_names:
            raise PlanError(
                f"input ordering {child.ordering} does not cover group "
                f"keys {sorted(key_names)}; use HashAggregate"
            )
        schema = _output_schema(
            child.schema, group_expressions, group_names, aggregates
        )
        super().__init__(context, schema, child)
        self.group_expressions = list(group_expressions)
        self.group_names = list(group_names)
        self.aggregates = list(aggregates)
        self.input_kernel = input_kernel
        self.fused_filter = fused_filter

    @property
    def compiled_source(self) -> str | None:
        return None if self.input_kernel is None else self.input_kernel.source

    @property
    def ordering(self) -> tuple[str, ...]:
        return tuple(self.group_names)

    def _produce(self) -> Iterator[VectorBatch]:
        pending_key_rows: list | None = None
        pending_packed = None
        pending_partials: list = []
        pending_count = 0

        for batch in self.child.next_batches():
            if len(batch) == 0:
                continue
            inputs = _batch_inputs(self, batch)
            if inputs is None:
                continue
            keys, values = inputs
            if supports_fast_keys(keys):
                packed = pack_keys(keys)
            else:
                packed = pack_keys_slow(keys)
            new_group = np.empty(len(packed), dtype=np.bool_)
            new_group[0] = True
            new_group[1:] = packed[1:] != packed[:-1]
            starts = np.flatnonzero(new_group)
            counts = np.diff(np.append(starts, len(packed))).astype(np.int64)
            partials = [
                _reduce_segments(spec, column, starts)
                for spec, column in zip(self.aggregates, values)
            ]
            segment_keys = [key[starts] for key in keys]
            merged_row: list | None = None
            first = 0
            if pending_packed is not None and packed[0] == pending_packed:
                # The open group continues into this batch: fold in the
                # first segment.
                pending_partials = [
                    _merge_partials(spec, old, new[0])
                    for spec, old, new in zip(
                        self.aggregates, pending_partials, partials
                    )
                ]
                pending_count += int(counts[0])
                first = 1
                if len(starts) > 1:
                    # More segments follow, so the merged group is done.
                    merged_row = self._finish_group(
                        pending_key_rows, pending_partials, pending_count
                    )
                    pending_packed = None
            elif pending_packed is not None:
                merged_row = self._finish_group(
                    pending_key_rows, pending_partials, pending_count
                )
                pending_packed = None
            # Segments [first, last) are complete within the batch: emit
            # them as one array slice (no per-group Python work).
            last = len(starts) - 1
            complete = self._segments_to_batch(
                segment_keys, partials, counts, first, last, merged_row
            )
            if complete is not None:
                yield complete
            if last >= first:
                pending_key_rows = [key[last] for key in segment_keys]
                pending_partials = [column[last] for column in partials]
                pending_count = int(counts[last])
                pending_packed = packed[starts[last]]
        if pending_packed is not None:
            final = self._finish_group(
                pending_key_rows, pending_partials, pending_count
            )
            yield self._rows_to_batch([final])

    def _segments_to_batch(
        self,
        segment_keys: list[np.ndarray],
        partials: list[np.ndarray],
        counts: np.ndarray,
        first: int,
        last: int,
        merged_row: list | None,
    ) -> VectorBatch | None:
        """Completed segments [first, last) (+ one merged boundary row)
        as a single output batch, built with array slicing."""
        if first >= last and merged_row is None:
            return None
        arrays: list[np.ndarray] = []
        slot = 0
        for key in segment_keys:
            arrays.append(key[first:last])
            slot += 1
        for spec, column in zip(self.aggregates, partials):
            values = column[first:last]
            if spec.function == "AVG":
                values = values.astype(np.float64) / counts[first:last]
            arrays.append(values)
        result = VectorBatch(
            self.schema,
            [
                array.astype(column.sql_type.numpy_dtype, copy=False)
                if array.dtype != np.dtype(object)
                else array
                for array, column in zip(arrays, self.schema)
            ],
        )
        if merged_row is not None:
            merged = self._rows_to_batch([merged_row])
            # The merged boundary group precedes this batch's segments.
            from repro.db.vector import concat_batches

            result = concat_batches(self.schema, [merged, result])
        return result

    def _finish_group(self, key_row: list, partials: list, count: int) -> list:
        row = list(key_row)
        for spec, partial in zip(self.aggregates, partials):
            if spec.function == "AVG":
                row.append(float(partial) / count)
            else:
                row.append(partial)
        return row

    def _rows_to_batch(self, rows: list[list]) -> VectorBatch:
        arrays = []
        for position, column in enumerate(self.schema):
            values = [row[position] for row in rows]
            if column.sql_type.numpy_dtype == np.dtype(object):
                array = np.array(values, dtype=object)
            else:
                array = np.asarray(
                    values, dtype=column.sql_type.numpy_dtype
                )
            arrays.append(array)
        return VectorBatch(self.schema, arrays)

    def describe(self) -> str:
        keys = ", ".join(map(str, self.group_expressions))
        aggs = ", ".join(str(spec) for spec in self.aggregates)
        return (
            f"OrderedAggregate(by [{keys}] compute [{aggs}])"
            f"{_describe_fusion(self)}"
        )


class SegmentedAggregate(UnaryOperator):
    """Partially ordered aggregation (paper Section 4.4's pipelining).

    When the input is sorted by a *prefix* of the group keys (the fact
    table's unique ID in ModelJoin queries) but not by all of them, a
    fully streaming aggregate is impossible — yet the pipeline does not
    have to break: rows of one prefix value are contiguous, so the
    operator buffers only the *current segment* (one ID's rows — a few
    hundred values for the paper's models) and hash-aggregates each
    segment as it closes.  "The aggregation does not need the full
    dataset, leading to a low memory footprint and pipelined
    execution."

    The prefix keys must be the leading group keys and bare columns;
    the planner arranges both.
    """

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        group_expressions: list[Expression],
        group_names: list[str],
        aggregates: list[AggregateSpec],
        prefix_length: int,
        input_kernel=None,
        fused_filter: Expression | None = None,
    ):
        if not 0 < prefix_length <= len(group_expressions):
            raise PlanError("invalid segmented-aggregation prefix length")
        for expression in group_expressions[:prefix_length]:
            if not isinstance(expression, ColumnRef):
                raise PlanError(
                    "segmented aggregation needs bare-column prefix keys"
                )
        prefix_names = {
            expression.name.lower()
            for expression in group_expressions[:prefix_length]
        }
        child_order = tuple(name.lower() for name in child.ordering)
        if set(child_order[:prefix_length]) != prefix_names:
            raise PlanError(
                f"input ordering {child.ordering} does not cover the "
                f"prefix keys {sorted(prefix_names)}"
            )
        schema = _output_schema(
            child.schema, group_expressions, group_names, aggregates
        )
        super().__init__(context, schema, child)
        self.group_expressions = list(group_expressions)
        self.group_names = list(group_names)
        self.aggregates = list(aggregates)
        self.prefix_length = prefix_length
        self.input_kernel = input_kernel
        self.fused_filter = fused_filter

    @property
    def compiled_source(self) -> str | None:
        return None if self.input_kernel is None else self.input_kernel.source

    @property
    def ordering(self) -> tuple[str, ...]:
        # Output is ordered by the prefix keys (segments are emitted in
        # input order); the within-segment order is unspecified.
        return tuple(self.group_names[: self.prefix_length])

    def _produce(self) -> Iterator[VectorBatch]:
        # Only the OPEN tail segment is ever buffered; all segments
        # that close within a batch are aggregated together in one
        # sort+reduceat pass (their prefixes are disjoint, so a single
        # full-key grouping is equivalent to per-segment grouping and
        # avoids a Python round trip per segment).
        buffered_keys: list[list[np.ndarray]] = [
            [] for _ in self.group_expressions
        ]
        buffered_values: list[list[np.ndarray]] = [
            [] for _ in self.aggregates
        ]
        buffered_bytes = 0
        pending_prefix = None

        def account(arrays: list[np.ndarray]) -> int:
            return sum(
                array.nbytes if array.dtype != object else len(array) * 16
                for array in arrays
            )

        def buffer_slice(
            keys: list[np.ndarray],
            values: list[np.ndarray],
            start: int,
            stop: int,
        ) -> None:
            nonlocal buffered_bytes
            key_slices = [key[start:stop] for key in keys]
            value_slices = [value[start:stop] for value in values]
            for slot, piece in enumerate(key_slices):
                buffered_keys[slot].append(piece)
            for slot, piece in enumerate(value_slices):
                buffered_values[slot].append(piece)
            added = account(key_slices) + account(value_slices)
            buffered_bytes += added
            self.context.memory.allocate(added, "aggregation-segment")

        def flush() -> VectorBatch | None:
            nonlocal buffered_bytes
            if not buffered_keys[0]:
                return None
            keys = [np.concatenate(chunks) for chunks in buffered_keys]
            values = [np.concatenate(chunks) for chunks in buffered_values]
            for chunks in buffered_keys:
                chunks.clear()
            for chunks in buffered_values:
                chunks.clear()
            self.context.memory.release(
                buffered_bytes, "aggregation-segment"
            )
            buffered_bytes = 0
            return self._aggregate_segment(keys, values)

        for batch in self.child.next_batches():
            if len(batch) == 0:
                continue
            inputs = _batch_inputs(self, batch)
            if inputs is None:
                continue
            keys, values = inputs
            prefix_arrays = keys[: self.prefix_length]
            if supports_fast_keys(prefix_arrays):
                prefix_packed = pack_keys(prefix_arrays)
            else:
                prefix_packed = pack_keys_slow(prefix_arrays)
            rows = len(prefix_packed)
            # Start of the final (still open) segment of this batch.
            change = prefix_packed[1:] != prefix_packed[:-1]
            boundaries = np.flatnonzero(change) + 1
            last_start = int(boundaries[-1]) if len(boundaries) else 0
            # 1. Resolve the carried-over open segment.
            continues = (
                pending_prefix is not None
                and prefix_packed[0] == pending_prefix
            )
            if continues:
                # Extend the buffer with the first segment's rows.
                first_stop = (
                    int(boundaries[0]) if len(boundaries) else rows
                )
                buffer_slice(keys, values, 0, first_stop)
                closed_start = first_stop
                if first_stop < rows:
                    result = flush()
                    if result is not None:
                        yield result
            else:
                result = flush()
                if result is not None:
                    yield result
                closed_start = 0
            # 2. All segments that both start and end in this batch.
            if closed_start < last_start:
                result = self._aggregate_segment(
                    [key[closed_start:last_start] for key in keys],
                    [
                        value[closed_start:last_start]
                        for value in values
                    ],
                )
                yield result
            # 3. Buffer the open tail segment.
            tail_start = max(last_start, closed_start)
            if tail_start < rows:
                buffer_slice(keys, values, tail_start, rows)
            pending_prefix = prefix_packed[-1]
        final = flush()
        if final is not None:
            yield final

    def _aggregate_segment(
        self, keys: list[np.ndarray], values: list[np.ndarray]
    ) -> VectorBatch:
        """Hash-aggregate one closed segment (sort + reduceat)."""
        if supports_fast_keys(keys):
            packed = pack_keys(keys)
        else:
            packed = pack_keys_slow(keys)
        order = np.argsort(packed, kind="stable")
        sorted_packed = packed[order]
        new_group = np.empty(len(sorted_packed), dtype=np.bool_)
        new_group[0] = True
        new_group[1:] = sorted_packed[1:] != sorted_packed[:-1]
        starts = np.flatnonzero(new_group)
        group_counts = np.diff(
            np.append(starts, len(sorted_packed))
        ).astype(np.int64)
        arrays: list[np.ndarray] = [key[order][starts] for key in keys]
        for spec, column in zip(self.aggregates, values):
            reduced = _reduce_segments(spec, column[order], starts)
            if spec.function == "AVG":
                reduced = reduced.astype(np.float64) / group_counts
            arrays.append(reduced)
        return VectorBatch(
            self.schema,
            [
                array.astype(column.sql_type.numpy_dtype, copy=False)
                if array.dtype != np.dtype(object)
                else array
                for array, column in zip(arrays, self.schema)
            ],
        )

    def describe(self) -> str:
        keys = ", ".join(map(str, self.group_expressions))
        aggs = ", ".join(str(spec) for spec in self.aggregates)
        return (
            f"SegmentedAggregate(prefix={self.prefix_length} "
            f"by [{keys}] compute [{aggs}]){_describe_fusion(self)}"
        )
