"""Cross join (Cartesian product).

ML-To-SQL's input function cross-joins the fact table with the handful
of input-layer edges of the model (paper Listings 2/3); the right side
is therefore expected to be small and is materialized.  The product is
emitted left-major — every left row's combinations are contiguous — so
the left child's ordering property is preserved.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.db.operators.base import (
    BinaryOperator,
    ExecutionContext,
    PhysicalOperator,
)
from repro.db.vector import VectorBatch, concat_batches


class CrossJoin(BinaryOperator):
    """Cartesian product; right side materialized."""

    def __init__(
        self,
        context: ExecutionContext,
        left: PhysicalOperator,
        right: PhysicalOperator,
    ):
        super().__init__(context, left.schema.concat(right.schema), left, right)
        self._right_batch: VectorBatch | None = None
        self._accounted_bytes = 0

    @property
    def ordering(self) -> tuple[str, ...]:
        return self.left.ordering

    def _produce(self) -> Iterator[VectorBatch]:
        self._right_batch = concat_batches(
            self.right.schema, list(self.right.next_batches())
        )
        self._accounted_bytes = self._right_batch.nominal_bytes()
        self.context.memory.allocate(self._accounted_bytes, "join-build")
        right_rows = len(self._right_batch)
        if right_rows == 0:
            return
        right_cycle = np.arange(right_rows, dtype=np.int64)
        for batch in self.left.next_batches():
            if len(batch) == 0:
                continue
            left_indices = np.repeat(
                np.arange(len(batch), dtype=np.int64), right_rows
            )
            right_indices = np.tile(right_cycle, len(batch))
            product = batch.take(left_indices).concat_columns(
                self._right_batch.take(right_indices)
            )
            for start in range(0, len(product), self.context.vector_size):
                yield product.slice(start, start + self.context.vector_size)

    def close(self) -> None:
        if self._accounted_bytes:
            self.context.memory.release(self._accounted_bytes, "join-build")
            self._accounted_bytes = 0
        self._right_batch = None
        super().close()

    def describe(self) -> str:
        return "CrossJoin"
