"""Table scan with SMA block pruning."""

from __future__ import annotations

from collections.abc import Iterator

from repro.db.column import ColumnRange
from repro.db.operators.base import ExecutionContext, PhysicalOperator
from repro.db.table import Table
from repro.db.vector import VectorBatch


class TableScan(PhysicalOperator):
    """Scans a table (or a single partition of it).

    Range predicates extracted from the WHERE clause are used to skip
    whole storage blocks via their min/max statistics — the mechanism
    the paper uses to prune the model table to the layer being joined
    (Section 4.4).  Pruned predicates are *hints*: rows of surviving
    blocks are still filtered exactly by a FilterOperator above.
    """

    def __init__(
        self,
        context: ExecutionContext,
        table: Table,
        ranges: list[ColumnRange] | None = None,
        partition_index: int | None = None,
    ):
        super().__init__(context, table.schema)
        self.table = table
        self.ranges = ranges or []
        self.partition_index = partition_index
        self.blocks_scanned = 0
        self.blocks_pruned = 0

    @property
    def ordering(self) -> tuple[str, ...]:
        # A declared sort key holds within each partition; a serial scan
        # of a multi-partition table interleaves partitions and loses it.
        if self.partition_index is not None or self.table.num_partitions == 1:
            return self.table.sort_key
        return ()

    def _produce(self) -> Iterator[VectorBatch]:
        if self.partition_index is None:
            partitions = self.table.partitions
        else:
            partitions = [self.table.partitions[self.partition_index]]
        for partition in partitions:
            for block in partition.blocks():
                if self.ranges and not block.may_match(
                    self.schema, self.ranges
                ):
                    self.blocks_pruned += 1
                    continue
                self.blocks_scanned += 1
                batch = block.to_batch(self.schema)
                for start in range(0, len(batch), self.context.vector_size):
                    yield batch.slice(start, start + self.context.vector_size)

    def describe(self) -> str:
        parts = [f"TableScan({self.table.name}"]
        if self.partition_index is not None:
            parts.append(f", partition={self.partition_index}")
        if self.ranges:
            rendered = ", ".join(
                f"{r.column} in [{r.low}, {r.high}]" for r in self.ranges
            )
            parts.append(f", prune: {rendered}")
        return "".join(parts) + ")"
