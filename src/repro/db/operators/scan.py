"""Table scan with SMA block pruning and column projection."""

from __future__ import annotations

import time
from collections.abc import Iterator

from repro.db.column import Block, ColumnRange
from repro.db.compile.codegen import compile_range_checker
from repro.db.operators.base import ExecutionContext, PhysicalOperator
from repro.db.schema import Schema
from repro.db.table import Table
from repro.db.vector import VectorBatch


class TableScan(PhysicalOperator):
    """Scans a table (or a single partition of it).

    Range predicates extracted from the WHERE clause are used to skip
    whole storage blocks via their min/max statistics — the mechanism
    the paper uses to prune the model table to the layer being joined
    (Section 4.4).  Pruned predicates are *hints*: rows of surviving
    blocks are still filtered exactly by a FilterOperator above.

    With *columns* set (the optimizer's projection-pushdown rule) only
    those columns are materialized into batches; SMA pruning still
    evaluates against the full table schema, whose positions index the
    per-block statistics.  The ``scan.columns_fetched`` profile counter
    records how many columns each scan actually read — for a
    disk-resident table it counts the distinct column *files* opened,
    so projection pushdown is observable as fewer file opens and a
    fully pruned scan as zero.

    Disk-resident tables (see :mod:`repro.db.storage`) stream blocks
    through the engine's buffer pool: pruning uses the zone maps
    persisted in the column-file footers (no I/O), and only the
    projected columns' files are ever read.
    """

    morsel_streaming = True

    def __init__(
        self,
        context: ExecutionContext,
        table: Table,
        ranges: list[ColumnRange] | None = None,
        partition_index: int | None = None,
        columns: list[str] | None = None,
    ):
        if columns is None:
            positions = list(range(len(table.schema)))
            schema = table.schema
        else:
            positions = [
                table.schema.position_of(name) for name in columns
            ]
            schema = Schema(
                tuple(table.schema.columns[p] for p in positions)
            )
        super().__init__(context, schema)
        self.table = table
        self.ranges = ranges or []
        #: zone-map checker with column positions resolved once (the
        #: generic Block.may_match re-resolves names per block); None
        #: when no range predicate applies to this table
        self._may_match = compile_range_checker(table.schema, self.ranges)
        self.partition_index = partition_index
        self._positions = positions
        self._projected = columns is not None and len(positions) < len(
            table.schema
        )
        #: shared queue of scan morsels; when set (by the parallel
        #: executor, see repro.db.parallel.attach_morsel_sources) the
        #: scan steals work from it instead of scanning its partition
        self.morsel_source = None
        #: this pipeline's index, used as the in-flight owner id so a
        #: crashed pipeline's morsels can be requeued for its retry
        self.morsel_owner = None
        self.blocks_scanned = 0
        self.blocks_pruned = 0
        #: nominal (decoded) bytes of the blocks actually scanned; a
        #: morsel counts only its row span's share of the block
        self.bytes_scanned = 0
        #: distinct column files opened (disk-resident tables only)
        self._opened_files: set = set()

    @property
    def ordering(self) -> tuple[str, ...]:
        # A declared sort key holds within each partition; a serial scan
        # of a multi-partition table interleaves partitions and loses it.
        if self.partition_index is not None or self.table.num_partitions == 1:
            key = self.table.sort_key
        else:
            return ()
        if not self._projected:
            return key
        # Ordering on a dropped column cannot be claimed; keep the
        # longest prefix of the sort key that was actually fetched.
        fetched = {name.lower() for name in self.schema.names}
        prefix: list[str] = []
        for name in key:
            if name.lower() not in fetched:
                break
            prefix.append(name)
        return tuple(prefix)

    def open(self) -> None:
        super().open()
        if not self.table.disk_resident:
            # Memory-resident columns are "fetched" by definition; a
            # disk scan instead counts files as they are first opened
            # (see _count_file_open), so a fully pruned scan reads 0.
            self.context.counters.increment(
                "scan.columns_fetched", len(self.schema)
            )

    def _count_file_open(self, file_key) -> None:
        if file_key not in self._opened_files:
            self._opened_files.add(file_key)
            self.context.counters.increment("scan.columns_fetched")

    def _block_batch(self, block: Block) -> VectorBatch:
        read_columns = getattr(block, "read_columns", None)
        if read_columns is not None:
            # Disk block: fetch only the projected columns' files
            # through the buffer pool, pinned while assembling.
            return VectorBatch(
                self.schema,
                read_columns(
                    self._positions, on_open=self._count_file_open
                ),
            )
        if not self._projected:
            return block.to_batch(self.schema)
        return VectorBatch(
            self.schema, [block.arrays[p] for p in self._positions]
        )

    def _prune_block(self, block) -> None:
        self.blocks_pruned += 1
        if getattr(block, "is_disk", False):
            metrics = self.context.metrics
            if metrics is not None:
                metrics.counter("storage.blocks_skipped").increment()

    def _produce(self) -> Iterator[VectorBatch]:
        if self.morsel_source is not None:
            yield from self._produce_morsels()
            return
        if self.partition_index is None:
            partitions = self.table.partitions
        else:
            partitions = [self.table.partitions[self.partition_index]]
        for partition in partitions:
            for block in partition.blocks():
                if self._may_match is not None and not self._may_match(
                    block.stats
                ):
                    self._prune_block(block)
                    continue
                self.blocks_scanned += 1
                self.bytes_scanned += block.nominal_bytes()
                batch = self._block_batch(block)
                for start in range(0, len(batch), self.context.vector_size):
                    yield batch.slice(start, start + self.context.vector_size)

    def _produce_morsels(self) -> Iterator[VectorBatch]:
        """Morsel-driven scanning: pull row ranges from a shared queue.

        The pipelines of one query collectively drain the source; block
        pruning still applies per block, and the profile counts the
        morsels each worker executed (load-balance observability).
        With tracing on, each morsel is a span that stays open while
        the downstream operators consume its vectors — the span covers
        this worker's whole per-morsel pipeline work, and the
        ``morsel.queue_wait`` histogram records the time spent asking
        the shared queue for the next morsel.
        """
        from repro.db import faults
        from repro.db.parallel import current_worker_name

        counters = self.context.counters
        tracer = self.context.tracer
        traced = tracer.enabled
        metrics = self.context.metrics
        cancellation = self.context.cancellation
        queue_wait = (
            metrics.histogram("morsel.queue_wait")
            if metrics is not None
            else None
        )
        worker = current_worker_name()
        perf = time.perf_counter
        while True:
            if cancellation is not None:
                cancellation.check()
            if faults.ACTIVE is not None:
                faults.ACTIVE.fire("worker.morsel")
            waited = perf()
            morsel = self.morsel_source.next_morsel(self.morsel_owner)
            if queue_wait is not None:
                queue_wait.observe(perf() - waited)
            if morsel is None:
                return
            counters.increment("morsels")
            counters.increment(f"morsels.{worker}")
            block = morsel.block
            if self._may_match is not None and not self._may_match(
                block.stats
            ):
                self._prune_block(block)
                continue
            self.blocks_scanned += 1
            span = morsel.row_stop - morsel.row_start
            self.bytes_scanned += (
                block.nominal_bytes() * span
            ) // max(block.length, 1)
            if traced:
                with tracer.span(
                    "morsel",
                    category="morsel",
                    parent_id=self._span_id,
                    args={
                        "partition": morsel.partition_index,
                        "rows": morsel.row_stop - morsel.row_start,
                        "worker": worker,
                    },
                ):
                    yield from self._emit_morsel(morsel)
            else:
                yield from self._emit_morsel(morsel)

    def _emit_morsel(self, morsel) -> Iterator[VectorBatch]:
        batch = self._block_batch(morsel.block).slice(
            morsel.row_start, morsel.row_stop
        )
        for start in range(0, len(batch), self.context.vector_size):
            yield batch.slice(start, start + self.context.vector_size)

    def close(self) -> None:
        # Fold this scan's totals into the per-query profile counters
        # (the introspection layer's ResourceProfile reads them at
        # query end; retried pipelines re-scan, so re-counting their
        # fresh plans is the honest accounting).
        counters = self.context.counters
        if self.rows_emitted:
            counters.increment("scan.rows_read", self.rows_emitted)
        if self.bytes_scanned:
            counters.increment("scan.bytes_read", self.bytes_scanned)
        if self.blocks_scanned:
            counters.increment("scan.blocks_scanned", self.blocks_scanned)
        if self.blocks_pruned:
            counters.increment("scan.blocks_skipped", self.blocks_pruned)
        super().close()

    def merge_stats_from(self, other) -> None:
        super().merge_stats_from(other)
        self.blocks_scanned += other.blocks_scanned
        self.blocks_pruned += other.blocks_pruned
        self.bytes_scanned += other.bytes_scanned

    def describe(self) -> str:
        parts = [f"TableScan({self.table.name}"]
        if self.table.disk_resident:
            marker = ", disk"
            if self.ranges:
                marker += "+zone-map skip"
            parts.append(marker)
        if self.partition_index is not None:
            parts.append(f", partition={self.partition_index}")
        if self._projected:
            parts.append(f", cols=[{', '.join(self.schema.names)}]")
        if self.ranges:
            rendered = ", ".join(
                f"{r.column} in [{r.low}, {r.high}]" for r in self.ranges
            )
            parts.append(f", prune: {rendered}")
        return "".join(parts) + ")"
