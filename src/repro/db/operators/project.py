"""Projection / map operator."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.db.expressions import ColumnRef, Expression
from repro.db.operators.base import (
    ExecutionContext,
    PhysicalOperator,
    UnaryOperator,
)
from repro.db.schema import Column, Schema
from repro.db.vector import VectorBatch


class ProjectOperator(UnaryOperator):
    """Computes a list of named expressions over each input vector."""

    morsel_streaming = True

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        expressions: list[Expression],
        names: list[str],
    ):
        columns = tuple(
            Column(name, expression.output_type(child.schema))
            for expression, name in zip(expressions, names)
        )
        super().__init__(context, Schema(columns), child)
        self.expressions = list(expressions)
        self.names = list(names)

    @property
    def ordering(self) -> tuple[str, ...]:
        # Ordering survives projection for the leading ordering columns
        # that pass through as bare column references (possibly renamed).
        passthrough: dict[str, str] = {}
        for expression, name in zip(self.expressions, self.names):
            if isinstance(expression, ColumnRef):
                passthrough.setdefault(expression.name.lower(), name)
        preserved: list[str] = []
        for key in self.child.ordering:
            new_name = passthrough.get(key.lower())
            if new_name is None:
                break
            preserved.append(new_name)
        return tuple(preserved)

    def _produce(self) -> Iterator[VectorBatch]:
        for batch in self.child.next_batches():
            arrays = []
            for expression, column in zip(self.expressions, self.schema):
                values = expression.evaluate(batch)
                arrays.append(
                    values.astype(column.sql_type.numpy_dtype, copy=False)
                    if values.dtype != np.dtype(object)
                    else values
                )
            yield VectorBatch(self.schema, arrays)

    def describe(self) -> str:
        rendered = ", ".join(
            f"{expression} AS {name}"
            for expression, name in zip(self.expressions, self.names)
        )
        return f"Project({rendered})"
