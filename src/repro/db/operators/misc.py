"""Small utility operators: LIMIT, UNION ALL, VALUES."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.db.operators.base import (
    ExecutionContext,
    PhysicalOperator,
    UnaryOperator,
)
from repro.db.schema import Schema
from repro.db.vector import VectorBatch
from repro.errors import ExecutionError


class LimitOperator(UnaryOperator):
    """Emits at most *limit* rows, then stops pulling from its child."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        limit: int,
        offset: int = 0,
    ):
        super().__init__(context, child.schema, child)
        if limit < 0 or offset < 0:
            raise ExecutionError("LIMIT/OFFSET must be non-negative")
        self.limit = limit
        self.offset = offset

    @property
    def ordering(self) -> tuple[str, ...]:
        return self.child.ordering

    def _produce(self) -> Iterator[VectorBatch]:
        to_skip = self.offset
        remaining = self.limit
        for batch in self.child.next_batches():
            if to_skip >= len(batch):
                to_skip -= len(batch)
                continue
            if to_skip:
                batch = batch.slice(to_skip, len(batch))
                to_skip = 0
            if remaining <= 0:
                return
            if len(batch) > remaining:
                batch = batch.slice(0, remaining)
            remaining -= len(batch)
            yield batch
            if remaining == 0:
                return

    def describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"


class UnionAll(PhysicalOperator):
    """Concatenates the outputs of its children (bag union)."""

    def __init__(
        self, context: ExecutionContext, inputs: list[PhysicalOperator]
    ):
        if not inputs:
            raise ExecutionError("UNION ALL needs at least one input")
        schema = inputs[0].schema
        for child in inputs[1:]:
            if child.schema.types != schema.types:
                raise ExecutionError("UNION ALL inputs have different types")
        super().__init__(context, schema)
        self.inputs = list(inputs)

    def open(self) -> None:
        super().open()
        for child in self.inputs:
            child.open()

    def close(self) -> None:
        for child in self.inputs:
            child.close()
        super().close()

    def children(self) -> list[PhysicalOperator]:
        return self.inputs

    def _produce(self) -> Iterator[VectorBatch]:
        for child in self.inputs:
            for batch in child.next_batches():
                yield batch.with_schema(self.schema)

    def describe(self) -> str:
        return f"UnionAll({len(self.inputs)} inputs)"


class ValuesOperator(PhysicalOperator):
    """Emits a fixed list of literal rows (INSERT ... VALUES source)."""

    def __init__(
        self, context: ExecutionContext, schema: Schema, rows: list[tuple]
    ):
        super().__init__(context, schema)
        self.rows = list(rows)

    def _produce(self) -> Iterator[VectorBatch]:
        for start in range(0, len(self.rows), self.context.vector_size):
            chunk = self.rows[start : start + self.context.vector_size]
            arrays = []
            for position, column in enumerate(self.schema):
                values = [row[position] for row in chunk]
                dtype = column.sql_type.numpy_dtype
                if dtype == np.dtype(object):
                    array = np.array(values, dtype=object)
                else:
                    array = np.asarray(values, dtype=dtype)
                arrays.append(array)
            yield VectorBatch(self.schema, arrays)

    def describe(self) -> str:
        return f"Values({len(self.rows)} rows)"


class RenameOperator(UnaryOperator):
    """Zero-cost relabelling of the child's columns.

    The planner uses this to qualify FROM-item columns with their
    binding name ("alias.column") so that joined relations keep unique
    column names.
    """

    morsel_streaming = True

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        names: list[str],
    ):
        super().__init__(context, child.schema.rename_all(names), child)
        self._name_map = {
            old.lower(): new
            for old, new in zip(child.schema.names, names)
        }

    @property
    def ordering(self) -> tuple[str, ...]:
        return tuple(
            self._name_map[name.lower()] for name in self.child.ordering
        )

    def _produce(self) -> Iterator[VectorBatch]:
        for batch in self.child.next_batches():
            yield batch.with_schema(self.schema)

    def describe(self) -> str:
        return f"Rename({', '.join(self.schema.names)})"
