"""The Database facade: parse, plan, execute.

This is the engine's public entry point.  It owns the catalog, applies
DDL/DML, and executes SELECT statements either serially or
partition-parallel (one pipeline per partition of the partitioned base
tables, see :mod:`repro.db.parallel`).
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np

from repro.db.catalog import Catalog, ModelMetadata, is_system_table_name
from repro.db.compile import CompiledKernelCache
from repro.db.introspect import (
    ActiveQueryRegistry,
    QueryLog,
    ResourceProfile,
    SystemSchema,
    metrics_to_prometheus,
)
from repro.db.introspect.log import LOG_FILE_NAME
from repro.db.operators import ExecutionContext, LimitOperator, SortOperator
from repro.db.operators.base import PhysicalOperator
from repro.db.expressions import ColumnRef
from repro.db.parallel import WorkerPool, run_plans
from repro.db.planner import ModelJoinFactory, Planner, PlannerOptions
from repro.db.profiler import QueryProfile, finalize_profile
from repro.db.resilience import CancellationToken, CircuitBreaker
from repro.db.schema import Column, Schema
from repro.db.sql.ast import (
    AlterModel,
    CreateModel,
    CreateTable,
    DropTable,
    Explain,
    InsertSelect,
    InsertValues,
    SelectStatement,
    Statement,
)
from repro.db.sql.parser import parse_statement
from repro.db.table import Table
from repro.db.tracing import MetricsRegistry, Tracer
from repro.db.types import SqlType, parse_type_name
from repro.db.udf import PythonUdf, register_udf
from repro.db.vector import VECTOR_SIZE, VectorBatch, concat_batches
from repro.errors import (
    CatalogError,
    CompiledKernelError,
    ExecutionError,
    PlanError,
    QueryCancelledError,
    QueryRejectedError,
    QueryTimeoutError,
    TypeMismatchError,
)


class Result:
    """The materialized result of a statement."""

    def __init__(
        self,
        schema: Schema,
        batches: list[VectorBatch],
        profile: QueryProfile,
    ):
        self.schema = schema
        self.batches = batches
        self.profile = profile
        self._rows: list[tuple] | None = None
        self._columns: dict[str, np.ndarray] = {}

    @classmethod
    def empty(cls, profile: QueryProfile | None = None) -> "Result":
        return cls(Schema(()), [], profile or QueryProfile())

    @property
    def row_count(self) -> int:
        return sum(len(batch) for batch in self.batches)

    @property
    def rows(self) -> list[tuple]:
        if self._rows is None:
            self._rows = [
                row for batch in self.batches for row in batch.to_rows()
            ]
        return self._rows

    def column(self, name: str) -> np.ndarray:
        """All values of one output column as a single array.

        The concatenation is cached per column, so repeated access
        (the bench harness reads the same column for every round) does
        not re-concatenate the batches every call.
        """
        key = self.schema.position_of(name)  # validates; canonical key
        cached = self._columns.get(name)
        if cached is not None:
            return cached
        if not self.batches:
            array = np.empty(0, dtype=self.schema.type_of(name).numpy_dtype)
        else:
            array = np.concatenate(
                [batch.column_at(key) for batch in self.batches]
            )
        self._columns[name] = array
        return array

    def to_dict(self) -> dict[str, np.ndarray]:
        return {name: self.column(name) for name in self.schema.names}

    def scalar(self):
        """The single value of a 1x1 result."""
        rows = self.rows
        if len(rows) != 1 or len(rows[0]) != 1:
            raise ExecutionError(
                f"scalar() requires a 1x1 result, got {len(rows)} rows"
            )
        return rows[0][0]


class _MaterializedSource(PhysicalOperator):
    """Feeds already-materialized batches into post-merge operators."""

    def __init__(self, context, schema: Schema, batches: list[VectorBatch]):
        super().__init__(context, schema)
        self._batches = batches

    def _produce(self):
        yield from self._batches


class Database:
    """An in-process database instance.

    Parameters mirror the paper's experimental setup: *parallelism* is
    the number of partition pipelines a parallel query uses (12 in the
    paper), *vector_size* the execution batch size (1024).
    """

    def __init__(
        self,
        parallelism: int = 1,
        vector_size: int = VECTOR_SIZE,
        planner_options: PlannerOptions | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        task_retries: int = 2,
        path: str | None = None,
        buffer_pool_bytes: int | None = None,
        slow_query_seconds: float | None = None,
        query_log_capacity: int = 256,
        collect_query_log: bool = True,
        shards: int = 0,
        shard_workers: int = 1,
    ):
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if shards < 0:
            raise ValueError("shards must be >= 0 (0 = single-process)")
        if shards > 64:
            raise ValueError("shards must be <= 64")
        if shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")
        self.catalog = Catalog()
        #: serializes catalog mutation against snapshot capture: writers
        #: (DDL/DML/checkpoint) hold it for the whole statement, readers
        #: hold it only for the instant :meth:`snapshot` copies the
        #: table list — so a snapshot never observes a half-applied
        #: write (reentrant, so a write statement can nest another)
        self.catalog_lock = threading.RLock()
        #: the serving front-end currently attached (if any); close()
        #: drains it first, and ``system.sessions`` reads through it
        self._server = None
        self.parallelism = parallelism
        self.vector_size = vector_size
        #: how many times a crashed partition pipeline is retried (on a
        #: rotated worker, with backoff) before the query fails
        self.task_retries = task_retries
        self.planner_options = planner_options or PlannerOptions()
        self._modeljoin_factory: ModelJoinFactory | None = None
        #: cost-based ModelJoin variant selector, installed by
        #: repro.core.attach (opaque at this layer; see
        #: repro.core.cost.selector)
        self.variant_selector = None
        self.last_profile: QueryProfile | None = None
        self._worker_pool: WorkerPool | None = None
        #: cross-query model build cache, installed by repro.core.attach
        #: (opaque at this layer; see repro.core.modeljoin.cache)
        self.model_cache = None
        #: engine-lifetime span producer; disabled (no-op) by default.
        #: Pass a shared enabled Tracer to trace several engines into
        #: one timeline (the bench sweeps do).
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: engine-lifetime metrics registry (latency percentiles, cache
        #: hit ratios, ... aggregated across queries)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: engine-lifetime cache of generated kernels, keyed by source
        #: text (the plan signature); shared across queries so repeated
        #: statements skip codegen entirely
        self.kernel_cache = CompiledKernelCache()
        #: circuit breaker for the compiled path: after repeated
        #: compile/runtime kernel failures the planner lowers fully
        #: interpreted for the cool-down period
        self.compile_breaker = CircuitBreaker(
            failure_threshold=3, reset_seconds=30.0
        )
        #: persistent storage engine; None for an in-memory database.
        #: With *path* set, tables restore from disk on open and
        #: :meth:`checkpoint` / :meth:`close` persist the catalog
        #: atomically (see docs/STORAGE.md).
        self.storage = None
        #: optional hook installed by repro.core.attach that saves and
        #: restores the model cache alongside checkpoints (opaque at
        #: this layer; see repro.core.modeljoin.persistence)
        self.model_cache_persistence = None
        if path is not None:
            from repro.db.storage import StorageEngine

            self.storage = StorageEngine(
                path,
                buffer_pool_bytes=buffer_pool_bytes,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            self.storage.open_into(self.catalog)
        #: queries at or above this latency are marked ``slow`` in the
        #: query log and counted by the ``query.slow`` metric (None =
        #: no slow-query marking)
        self.slow_query_seconds = slow_query_seconds
        #: False skips per-query profile collection and query logging
        #: entirely (the observe bench measures its overhead)
        self.collect_query_log = collect_query_log
        #: named circuit breakers, rendered by ``system.breakers``
        self.breakers = {"compile": self.compile_breaker}
        #: registry of queries currently executing — readable from any
        #: thread through ``system.active_queries``
        self.active_queries = ActiveQueryRegistry()
        #: ring buffer of finished queries (``system.queries``); for a
        #: persistent database the log is also appended to a JSONL
        #: file under the storage root and restored on reopen
        self.query_log = QueryLog(
            capacity=query_log_capacity,
            path=(
                self.storage.root / LOG_FILE_NAME
                if self.storage is not None
                else None
            ),
        )
        #: the ``system.*`` virtual-table provider (see
        #: :mod:`repro.db.introspect`)
        self.introspection = SystemSchema(self)
        self.catalog.attach_system_schema(self.introspection)
        #: configuration echoed as gauges so deployments can scrape
        #: the effective topology (docs/OBSERVABILITY.md)
        self.metrics.gauge("worker.pool_size").set(parallelism)
        self.metrics.gauge("shard.count").set(shards)
        #: multiprocess shard coordinator; None = single-process mode
        #: (the default — bit-identical to pre-sharding behavior).
        #: Started last so shard manifests can replace tables the local
        #: storage restore produced above (see docs/SHARDING.md).
        self.shard_workers = shard_workers
        self.sharding = None
        if shards:
            from repro.db.shard.coordinator import ShardCoordinator

            self.sharding = ShardCoordinator(
                self, shards, shard_workers=shard_workers, path=path
            )
            self.sharding.start()

    # ------------------------------------------------------------------
    # engine-lifetime resources
    # ------------------------------------------------------------------
    @property
    def worker_pool(self) -> WorkerPool:
        """The engine-lifetime execution thread pool (lazily started).

        Parallel queries reuse these threads, so pool startup cost is
        paid once per engine, not once per query.
        """
        if self._worker_pool is None:
            self._worker_pool = WorkerPool(self.parallelism)
        return self._worker_pool

    def checkpoint(self) -> dict:
        """Persist tables, models and the warm model cache to disk.

        Only valid for a database opened with ``path=``.  Data files
        are written first; the catalog manifest is swapped atomically
        last, so a crash mid-checkpoint leaves the previous consistent
        state (see docs/STORAGE.md).  Returns the committed manifest.
        """
        if self.storage is None:
            raise ExecutionError(
                "checkpoint() requires a database opened with path="
            )
        with self.catalog_lock:
            manifest = self.storage.checkpoint(self.catalog)
        if self.sharding is not None:
            # Shard-local slices checkpoint in their own processes;
            # the shard manifest (row routing, table versions) commits
            # alongside the coordinator manifest.
            self.sharding.checkpoint()
        if self.model_cache_persistence is not None:
            self.model_cache_persistence.save()
        return manifest

    def snapshot(self):
        """A pinned, immutable view of the current catalog (MVCC-lite).

        Captured under :attr:`catalog_lock`, so the snapshot is a
        consistent cut across all tables and partitions.  The caller
        must call ``release()`` (or use the snapshot as a context
        manager) so pinned checkpoint generations can be GC'd; the
        serving layer does this for every admitted read query.
        """
        from repro.db.snapshot import DatabaseSnapshot

        with self.catalog_lock:
            return DatabaseSnapshot(self)

    def attach_server(self, server) -> None:
        """Register the serving front-end (done by ``serve.Server``).

        Makes ``system.sessions`` / ``system.admission_queue`` render
        the server's state and lets :meth:`close` drain it first.
        """
        self._server = server

    def _drain_active_queries(self, drain_seconds: float) -> None:
        """Cancel every in-flight query and wait (bounded) for drain.

        Cancellation is cooperative: each query's token trips at its
        next morsel/operator checkpoint and the worker pool drains
        cleanly.  Queries without a token (plain single-caller use)
        are simply waited for.
        """
        for profile in self.active_queries.snapshot():
            token = getattr(profile, "cancellation", None)
            if token is not None:
                token.cancel("database closing")
        deadline = time.perf_counter() + max(drain_seconds, 0.0)
        while self.active_queries.snapshot():
            if time.perf_counter() >= deadline:
                break
            time.sleep(0.005)

    def close(self, drain_seconds: float = 5.0) -> None:
        """Release engine-lifetime resources (worker threads, caches).

        Safe under load: an attached serving front-end is closed first
        (new admissions rejected, queued queries shed), then every
        in-flight query is cancelled cooperatively and waited for up to
        *drain_seconds* — only then does the final checkpoint run and
        the worker pool shut down.  A persistent database checkpoints
        before teardown, so plain ``close()`` / ``with
        Database(path=...)`` is durable by default.
        """
        server = self._server
        if server is not None:
            self._server = None
            server.close(drain_seconds=drain_seconds)
        self._drain_active_queries(drain_seconds)
        if self.storage is not None:
            self.checkpoint()
        if self.sharding is not None:
            # After the drain no sharded query holds the dispatch lock,
            # so shutdown broadcasts immediately; a wedged or dead
            # shard is terminated within the deadline (never a hang).
            self.sharding.close(drain_seconds=drain_seconds)
        if self._worker_pool is not None:
            self._worker_pool.shutdown()
            self._worker_pool = None
        if self.model_cache is not None:
            self.model_cache.clear()
        self.kernel_cache.clear()
        self.query_log.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_tracing(self) -> Tracer:
        """Start recording spans; returns the engine's tracer."""
        self.tracer.enabled = True
        return self.tracer

    def disable_tracing(self) -> None:
        self.tracer.enabled = False

    def export_trace(self, path: str) -> int:
        """Write the recorded spans as Chrome-trace/Perfetto JSON.

        Returns the number of exported trace events.  Open the file at
        https://ui.perfetto.dev or in ``chrome://tracing``.
        """
        return self.tracer.export(path)

    def export_metrics_text(self) -> str:
        """The metrics registry in Prometheus text exposition format.

        Counters and gauges export as single samples, histograms as
        summaries (quantiles + ``_sum``/``_count``); all names carry
        the ``repro_`` prefix.  See docs/OBSERVABILITY.md.
        """
        return metrics_to_prometheus(self.metrics.snapshot())

    def _begin_query(
        self,
        sql_text: str,
        parallel: bool,
        session_id: str = "",
        tenant: str = "",
    ) -> ResourceProfile | None:
        """Open a resource profile and register it as an active query."""
        if not self.collect_query_log:
            return None
        collector = ResourceProfile(
            query_id=self.query_log.allocate_query_id(),
            sql=sql_text,
            started_at=time.time(),
            parallel=parallel,
            session_id=session_id,
            tenant=tenant,
        )
        self.active_queries.register(collector)
        return collector

    def _finish_query(
        self,
        collector: ResourceProfile | None,
        result: Result | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Finalize a resource profile and append it to the query log."""
        if collector is None:
            return
        try:
            if error is None:
                status = "ok"
            elif isinstance(error, QueryRejectedError):
                status = "rejected"
            elif isinstance(error, QueryCancelledError):
                # before QueryTimeoutError: cancelled is its subclass
                status = "cancelled"
            elif isinstance(error, QueryTimeoutError):
                status = "timeout"
            else:
                status = "error"
            collector.finish(
                status,
                error=error,
                rows_returned=result.row_count if result is not None else 0,
            )
            if (
                self.slow_query_seconds is not None
                and collector.latency_seconds >= self.slow_query_seconds
            ):
                collector.slow = True
                self.metrics.counter("query.slow").increment()
            self.query_log.record(collector.to_entry())
        finally:
            self.active_queries.deregister(collector.query_id)

    def _context(self, parallelism: int = 1) -> ExecutionContext:
        """A fresh execution context wired to the engine's tracer and
        metrics (operator timing switches on with the tracer)."""
        return ExecutionContext(
            vector_size=self.vector_size,
            parallelism=parallelism,
            tracer=self.tracer,
            metrics=self.metrics,
            operator_timing=self.tracer.enabled,
        )

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # catalog-level API
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Schema,
        num_partitions: int | None = None,
        partition_key: str | None = None,
        sort_key: tuple[str, ...] = (),
        replace: bool = False,
    ) -> Table:
        """Create a table programmatically (bulk loaders use this).

        On a sharded database every *partitioned* table (one with a
        ``partition_key``) is hash-sharded across the worker processes;
        unpartitioned tables — model tables, dimension tables — stay
        coordinator-local and replicate to shards on demand (the
        ModelJoin broadcast; see docs/SHARDING.md).
        """
        if self.sharding is not None and partition_key is not None:
            return self.sharding.create_sharded_table(
                name,
                schema,
                partition_key=partition_key,
                sort_key=sort_key,
                replace=replace,
            )
        table = Table(
            name,
            schema,
            num_partitions=num_partitions or 1,
            partition_key=partition_key,
            sort_key=sort_key,
        )
        self.catalog.create_table(table, replace=replace)
        return table

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def register_udf(self, udf: PythonUdf) -> PythonUdf:
        return register_udf(udf)

    def register_model(
        self, metadata: ModelMetadata, replace: bool = False
    ) -> None:
        """Register model-table semantics in the catalog (paper §5.5)."""
        self.catalog.register_model(metadata, replace=replace)

    def set_modeljoin_factory(self, factory: ModelJoinFactory) -> None:
        """Install the MODEL JOIN operator factory (done by repro.core)."""
        self._modeljoin_factory = factory

    def set_variant_selector(self, selector) -> None:
        """Install the cost-based ModelJoin variant selector (done by
        repro.core.attach); the planner consults it per query."""
        self.variant_selector = selector

    def _planner(
        self,
        use_compiled: bool | None = None,
        catalog: Catalog | None = None,
    ) -> Planner:
        options = self.planner_options
        if use_compiled is False and getattr(
            options, "use_compiled_kernels", True
        ):
            options = dataclasses.replace(
                options, use_compiled_kernels=False
            )
        return Planner(
            catalog if catalog is not None else self.catalog,
            options=options,
            modeljoin_factory=self._modeljoin_factory,
            variant_selector=self.variant_selector,
            tracer=self.tracer,
            metrics=self.metrics,
            kernel_cache=self.kernel_cache,
            compile_breaker=self.compile_breaker,
        )

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        parallel: bool = False,
        timeout_seconds: float | None = None,
        catalog: Catalog | None = None,
        cancellation: CancellationToken | None = None,
        session_id: str = "",
        tenant: str = "",
    ) -> Result:
        """Parse and execute one SQL statement.

        With ``parallel=True`` a SELECT runs one pipeline per partition
        of its partitioned base tables; the caller asserts the query is
        partition-compatible (see :mod:`repro.db.parallel`).

        ``timeout_seconds`` sets a per-query deadline: execution checks
        a cooperative cancellation token at every batch/morsel boundary
        and raises :class:`~repro.errors.QueryTimeoutError` once the
        deadline passes (the worker pool drains cleanly and stays
        usable).

        The serving layer passes *catalog* (a snapshot catalog so the
        query reads a pinned, immutable view), *cancellation* (a
        pre-built token carrying the session deadline — it takes
        precedence over *timeout_seconds*) and *session_id*/*tenant*
        (stamped on the query-log row and ``system.active_queries``).
        """
        statement = parse_statement(sql)
        return self.execute_statement(
            statement,
            parallel=parallel,
            timeout_seconds=timeout_seconds,
            sql_text=sql.strip(),
            catalog=catalog,
            cancellation=cancellation,
            session_id=session_id,
            tenant=tenant,
        )

    def execute_statement(
        self,
        statement: Statement,
        parallel: bool = False,
        timeout_seconds: float | None = None,
        sql_text: str | None = None,
        catalog: Catalog | None = None,
        cancellation: CancellationToken | None = None,
        session_id: str = "",
        tenant: str = "",
    ) -> Result:
        if sql_text is None:
            # Statements executed programmatically (no SQL text) are
            # still logged, under a synthetic marker.
            sql_text = f"<{type(statement).__name__}>"
        if isinstance(statement, Explain):
            return self._execute_explain(statement)
        if isinstance(statement, CreateTable):
            with self.catalog_lock:
                return self._execute_create_table(statement)
        if isinstance(statement, DropTable):
            with self.catalog_lock:
                if self.sharding is not None:
                    from repro.db.shard.tables import ShardedTable

                    existing = self.catalog.tables.get(
                        statement.table_name.lower()
                    )
                    if isinstance(existing, ShardedTable):
                        self.sharding.drop_table(statement.table_name)
                self.catalog.drop_table(
                    statement.table_name, if_exists=statement.if_exists
                )
            return Result.empty()
        if isinstance(statement, CreateModel):
            # NOT under the catalog lock: the executor locks briefly to
            # resolve the version and again to publish, but the training
            # loop itself runs unlocked so serving admissions and
            # snapshot captures proceed while a (re)train is in flight.
            from repro.db.train import execute_create_model

            return execute_create_model(self, statement, sql_text=sql_text)
        if isinstance(statement, AlterModel):
            from repro.db.train import execute_alter_model

            return execute_alter_model(self, statement, sql_text=sql_text)
        if isinstance(statement, InsertValues):
            with self.catalog_lock:
                return self._execute_insert_values(statement)
        if isinstance(statement, InsertSelect):
            with self.catalog_lock:
                return self._execute_insert_select(statement)
        if isinstance(statement, SelectStatement):
            return self._execute_select(
                statement,
                parallel=parallel,
                timeout_seconds=timeout_seconds,
                sql_text=sql_text,
                catalog=catalog,
                cancellation=cancellation,
                session_id=session_id,
                tenant=tenant,
            )
        raise PlanError(f"unsupported statement {type(statement).__name__}")

    def explain(self, sql: str) -> str:
        statement = parse_statement(sql)
        if isinstance(statement, Explain):
            statement = statement.statement
        if isinstance(statement, (CreateModel, AlterModel)):
            result = self._execute_explain(Explain(statement))
            return "\n".join(row[0] for row in result.rows)
        if not isinstance(statement, SelectStatement):
            raise PlanError(
                "EXPLAIN supports SELECT, CREATE MODEL and ALTER MODEL"
            )
        context = ExecutionContext(vector_size=self.vector_size)
        text = self._planner().explain(statement, context)
        return self._prepend_fragment_tree(statement, text)

    def _prepend_fragment_tree(
        self, statement: SelectStatement, text: str
    ) -> str:
        """Prefix EXPLAIN output with the shard fragment tree (if any)."""
        if self.sharding is None:
            return text
        fragment = self.sharding.plan_fragments(statement, self.catalog)
        if fragment is None:
            return text
        return self.sharding.explain_fragments(fragment) + "\n" + text

    def explain_analyze(
        self, sql: str, parallel: bool = False
    ) -> tuple[str, Result]:
        """Execute *sql* and return the plan annotated with per-operator
        stats (rows, batches, cumulative time), plus the result.

        With ``parallel=True`` the query runs one pipeline per
        partition and the per-partition operator stats are merged into
        a single rendered tree (query-global numbers, not one
        pipeline's share).
        """
        statement = parse_statement(sql)
        if isinstance(statement, Explain):
            statement = statement.statement
        if not isinstance(statement, SelectStatement):
            raise PlanError("EXPLAIN ANALYZE supports only SELECT")
        if parallel and self.parallelism > 1:
            return self._explain_analyze_parallel(statement, sql.strip())
        context = self._context()
        context.operator_timing = True
        collector = self._begin_query(sql.strip(), parallel=False)
        context.collector = collector
        if collector is not None:
            collector.counters = context.counters
        profile = QueryProfile(
            memory=context.memory,
            stopwatch=context.stopwatch,
            counters=context.counters,
        )
        started = time.perf_counter()
        try:
            with self.tracer.span(
                "query", category="query", args={"kind": "explain-analyze"}
            ):
                context.trace_parent = self.tracer.current_span_id()
                plan = self._planner().plan_select(statement, context)
                batches = list(plan.batches())
        except Exception as error:
            self._finish_query(collector, error=error)
            raise
        profile.wall_seconds = time.perf_counter() - started
        result = Result(plan.schema, batches, profile)
        profile.rows_returned = result.row_count
        finalize_profile(profile, self.metrics)
        self.last_profile = profile
        self._finish_query(collector, result=result)
        return plan.explain(stats=True), result

    def _explain_analyze_parallel(
        self, statement: SelectStatement, sql_text: str
    ) -> tuple[str, Result]:
        if statement.distinct:
            raise PlanError("DISTINCT is not supported in parallel mode")
        context = self._context(parallelism=self.parallelism)
        context.operator_timing = True
        collector = self._begin_query(sql_text, parallel=True)
        context.collector = collector
        if collector is not None:
            collector.counters = context.counters
        profile = QueryProfile(
            memory=context.memory,
            stopwatch=context.stopwatch,
            counters=context.counters,
        )
        collected: dict = {}
        started = time.perf_counter()
        try:
            with self.tracer.span(
                "query",
                category="query",
                args={"kind": "explain-analyze", "parallel": True},
            ):
                context.trace_parent = self.tracer.current_span_id()
                result = self._execute_select_parallel(
                    statement, context, profile, collect=collected
                )
        except Exception as error:
            self._finish_query(collector, error=error)
            raise
        profile.wall_seconds = time.perf_counter() - started
        profile.rows_returned = result.row_count
        finalize_profile(profile, self.metrics)
        self.last_profile = profile
        self._finish_query(collector, result=result)
        plans = collected["plans"]
        merged = plans[0]
        for other in plans[1:]:
            merged.merge_stats_from(other)
        lines = [
            f"Parallel: {len(plans)} pipelines "
            "(per-operator stats merged across pipelines)"
        ]
        coordinator = collected.get("coordinator")
        if coordinator is not None:
            lines.append("coordinator (post-merge):")
            lines.append(coordinator.explain(indent=2, stats=True))
            lines.append("per-pipeline plan:")
        lines.append(merged.explain(indent=2, stats=True))
        return "\n".join(lines), result

    # ------------------------------------------------------------------
    # statement handlers
    # ------------------------------------------------------------------
    def _execute_explain(self, statement: Explain) -> Result:
        inner = statement.statement
        if isinstance(inner, CreateModel):
            from repro.db.train import render_create_model_explain

            lines = render_create_model_explain(self, inner)
        elif isinstance(inner, AlterModel):
            lines = [
                f"AlterModel(model={inner.model_name.lower()}, "
                f"set_version={inner.version})"
            ]
        elif isinstance(inner, SelectStatement):
            context = ExecutionContext(vector_size=self.vector_size)
            lines = self._prepend_fragment_tree(
                inner, self._planner().explain(inner, context)
            ).splitlines()
        else:
            raise PlanError(
                "EXPLAIN supports SELECT, CREATE MODEL and ALTER MODEL"
            )
        schema = Schema((Column("plan", SqlType.VARCHAR),))
        batch = VectorBatch(schema, [np.array(lines, dtype=object)])
        return Result(schema, [batch], QueryProfile())

    def _execute_create_table(self, statement: CreateTable) -> Result:
        if statement.if_not_exists and self.catalog.has_table(
            statement.table_name
        ):
            return Result.empty()
        schema = Schema(
            tuple(
                Column(definition.name, parse_type_name(definition.type_name))
                for definition in statement.columns
            )
        )
        self.create_table(
            statement.table_name,
            schema,
            num_partitions=statement.num_partitions,
            partition_key=statement.partition_key,
            sort_key=statement.sort_key,
        )
        return Result.empty()

    @staticmethod
    def _check_writable(table_name: str) -> None:
        if is_system_table_name(table_name):
            raise CatalogError(
                f"cannot insert into {table_name!r}: "
                "the system schema is read-only"
            )

    def _execute_insert_values(self, statement: InsertValues) -> Result:
        self._check_writable(statement.table_name)
        table = self.catalog.table(statement.table_name)
        rows = self._reorder_rows(
            table.schema, statement.rows, statement.column_names
        )
        table.append_rows(rows)
        return Result.empty()

    @staticmethod
    def _reorder_rows(
        schema: Schema,
        rows: tuple[tuple[object, ...], ...],
        column_names: tuple[str, ...],
    ) -> list[tuple]:
        width = len(column_names) if column_names else len(schema)
        for row in rows:
            if len(row) != width:
                raise TypeMismatchError(
                    f"INSERT row has {len(row)} values, expected {width}"
                )
        if not column_names:
            return list(rows)
        if len(column_names) != len(schema):
            raise TypeMismatchError(
                "INSERT must provide values for all columns "
                f"({list(schema.names)})"
            )
        positions = [schema.position_of(name) for name in column_names]
        reordered = []
        for row in rows:
            target: list[object] = [None] * len(schema)
            for position, value in zip(positions, row):
                target[position] = value
            reordered.append(tuple(target))
        return reordered

    def _execute_insert_select(self, statement: InsertSelect) -> Result:
        if statement.column_names:
            raise PlanError(
                "INSERT ... SELECT with a column list is not supported"
            )
        self._check_writable(statement.table_name)
        table = self.catalog.table(statement.table_name)
        result = self._execute_select(statement.query, parallel=False)
        if len(result.schema) != len(table.schema):
            raise TypeMismatchError(
                f"INSERT SELECT produces {len(result.schema)} columns, "
                f"table {table.name} has {len(table.schema)}"
            )
        for batch in result.batches:
            coerced = [
                array.astype(column.sql_type.numpy_dtype, copy=False)
                if array.dtype != np.dtype(object)
                else array
                for array, column in zip(batch.arrays, table.schema)
            ]
            table.append_batch(VectorBatch(table.schema, coerced))
        return Result.empty(result.profile)

    def _execute_select(
        self,
        statement: SelectStatement,
        parallel: bool,
        timeout_seconds: float | None = None,
        sql_text: str | None = None,
        catalog: Catalog | None = None,
        cancellation: CancellationToken | None = None,
        session_id: str = "",
        tenant: str = "",
    ) -> Result:
        if cancellation is None and timeout_seconds is not None:
            cancellation = CancellationToken.with_timeout(timeout_seconds)
        if cancellation is None and self.sharding is not None:
            # Sharded queries always carry a token so close() (and any
            # explicit cancel) can abandon a cross-process gather
            # instead of blocking on a slow or dead shard.
            cancellation = CancellationToken()
        collector = self._begin_query(
            sql_text or f"<{type(statement).__name__}>",
            parallel=bool(parallel and self.parallelism > 1),
            session_id=session_id,
            tenant=tenant,
        )
        if collector is not None:
            # Exposed so close()/session teardown can cancel in-flight
            # queries through the active-query registry.
            collector.cancellation = cancellation
        try:
            try:
                result = self._execute_select_attempt(
                    statement, parallel, cancellation,
                    use_compiled=None, collector=collector,
                    catalog=catalog,
                )
            except CompiledKernelError as error:
                # One-shot fallback: a generated kernel failed (at
                # compile exec time or at runtime).  Record the failure
                # on the compile breaker — repeated failures disable
                # compilation engine-wide for the cool-down — and
                # re-execute fully interpreted, reusing the same
                # cancellation token so the original deadline still
                # applies.  Timeouts never take this path:
                # QueryTimeoutError is not a CompiledKernelError.
                self.metrics.counter("compile.fallback").increment()
                self.compile_breaker.record_failure()
                self.tracer.instant(
                    "compile-fallback",
                    category="fallback",
                    args={
                        "error": type(error).__name__,
                        "detail": str(error),
                    },
                )
                if collector is not None:
                    collector.fallback = True
                result = self._execute_select_attempt(
                    statement, parallel, cancellation,
                    use_compiled=False, collector=collector,
                    catalog=catalog,
                )
        except Exception as error:
            # Failed queries still land a log row, with the error's
            # taxonomy class (BindError, InjectedFaultError, ...).
            self._finish_query(collector, error=error)
            raise
        except BaseException:
            # KeyboardInterrupt/SystemExit: don't log a row, but never
            # leave a ghost entry in the active-query registry.
            if collector is not None:
                self.active_queries.deregister(collector.query_id)
            raise
        self._finish_query(collector, result=result)
        return result

    def _execute_select_attempt(
        self,
        statement: SelectStatement,
        parallel: bool,
        cancellation: CancellationToken | None,
        use_compiled: bool | None,
        collector: ResourceProfile | None = None,
        catalog: Catalog | None = None,
    ) -> Result:
        context = self._context(
            parallelism=self.parallelism if parallel else 1
        )
        context.cancellation = cancellation
        context.collector = collector
        if collector is not None:
            # A fallback re-execution rebinds the collector to the new
            # attempt's counters: the logged resources are those of the
            # attempt that produced (or failed to produce) the result.
            collector.counters = context.counters
        profile = QueryProfile(
            memory=context.memory,
            stopwatch=context.stopwatch,
            counters=context.counters,
        )
        started = time.perf_counter()
        try:
            with self.tracer.span(
                "query",
                category="query",
                args={"parallel": bool(parallel and self.parallelism > 1)},
            ):
                context.trace_parent = self.tracer.current_span_id()
                fragment = None
                if self.sharding is not None:
                    fragment = self.sharding.plan_fragments(
                        statement, catalog or self.catalog
                    )
                if fragment is not None:
                    schema, batches = self.sharding.execute_fragments(
                        fragment, context, catalog or self.catalog
                    )
                    result = Result(schema, batches, profile)
                elif parallel and self.parallelism > 1:
                    if statement.distinct:
                        raise PlanError(
                            "DISTINCT is not supported in parallel mode"
                        )
                    result = self._execute_select_parallel(
                        statement, context, profile,
                        use_compiled=use_compiled, catalog=catalog,
                    )
                else:
                    planner = self._planner(use_compiled, catalog=catalog)
                    prepared = planner.prepare(statement)
                    if collector is not None and prepared.selections:
                        collector.modeljoin_variant = (
                            prepared.selections[0].chosen
                        )
                    plan = planner.lower(prepared, context)
                    batches = list(plan.batches())
                    result = Result(plan.schema, batches, profile)
        except QueryTimeoutError:
            self.metrics.counter("query.timeouts").increment()
            raise
        profile.wall_seconds = time.perf_counter() - started
        profile.rows_returned = result.row_count
        finalize_profile(profile, self.metrics)
        self.last_profile = profile
        return result

    def _execute_select_parallel(
        self,
        statement: SelectStatement,
        context: ExecutionContext,
        profile: QueryProfile,
        collect: dict | None = None,
        use_compiled: bool | None = None,
        catalog: Catalog | None = None,
    ) -> Result:
        # ORDER BY / LIMIT are global operations: run the core of the
        # query per partition and apply them on the merged result.
        core = dataclasses.replace(
            statement, order_by=(), limit=None, offset=0
        )
        planner = self._planner(use_compiled, catalog=catalog)
        # Bind + optimize once; every partition pipeline is lowered from
        # the same prepared plan (one variant decision per statement).
        prepared = planner.prepare(core)
        if context.collector is not None and prepared.selections:
            context.collector.modeljoin_variant = (
                prepared.selections[0].chosen
            )
        plans = [
            planner.lower(prepared, context, partition_index=index)
            for index in range(self.parallelism)
        ]
        if collect is not None:
            collect["plans"] = plans
        schema, batches = run_plans(
            plans,
            pool=self.worker_pool,
            morsel_driven=True,
            plan_builder=lambda index: planner.lower(
                prepared, context, partition_index=index
            ),
            retries=self.task_retries,
        )
        if not statement.order_by and statement.limit is None:
            return Result(schema, batches, profile)
        merged = concat_batches(schema, batches)
        plan: PhysicalOperator = _MaterializedSource(context, schema, [merged])
        if statement.order_by:
            keys, ascending = [], []
            for item in statement.order_by:
                if not isinstance(item.expression, ColumnRef):
                    raise PlanError(
                        "ORDER BY supports only output column references"
                    )
                keys.append(ColumnRef(item.expression.name))
                ascending.append(item.ascending)
            plan = SortOperator(context, plan, keys, ascending)
        if statement.limit is not None:
            plan = LimitOperator(
                context, plan, statement.limit, statement.offset
            )
        if collect is not None:
            collect["coordinator"] = plan
        return Result(plan.schema, list(plan.batches()), profile)
