"""Query planner façade: AST -> logical plan -> rules -> physical plan.

Planning is a three-stage pipeline (see :mod:`repro.db.plan`):

1. **bind** — :class:`~repro.db.plan.logical.LogicalBinder` resolves
   the parsed statement into a typed logical-operator tree whose column
   references are fully qualified and whose nodes carry output names
   and estimated cardinalities.
2. **rewrite** — :class:`~repro.db.plan.rules.RuleEngine` applies the
   ordered rewrite rules (constant folding, predicate pushdown through
   joins and ModelJoin, join-key extraction, SMA range derivation,
   projection pushdown); every firing is recorded for EXPLAIN.
3. **lower** — :mod:`repro.db.plan.physical` turns the optimized tree
   into physical operators, picking the ModelJoin execution variant
   with the calibrated cost model (once per statement, before
   per-partition lowering).

``plan_select`` keeps the legacy one-shot signature; parallel
execution prepares once and lowers per partition.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.db.catalog import Catalog
from repro.db.compile import KernelCompiler
from repro.db.operators import ExecutionContext, PhysicalOperator
from repro.db.plan.logical import LogicalBinder, LogicalNode
from repro.db.plan.physical import (
    Lowering,
    VariantSelection,
    render_explain,
    select_variants,
)
from repro.db.plan.rules import RuleEngine, RuleFiring
from repro.db.sql.ast import SelectStatement
from repro.db.tracing import NULL_TRACER, MetricsRegistry, Tracer

#: signature of the MODEL JOIN operator factory registered by repro.core
ModelJoinFactory = Callable[..., PhysicalOperator]


@dataclass
class PlannerOptions:
    """Knobs controlling planning decisions (used by the ablations)."""

    #: use order-based aggregation when the input ordering allows it
    use_ordered_aggregation: bool = True
    #: use segmented (partially ordered) aggregation when the input is
    #: sorted by a proper prefix of the group keys — the paper §4.4
    #: pipelining optimization for the generated ModelJoin queries
    use_segmented_aggregation: bool = False
    #: extract SMA pruning ranges from pushed-down predicates
    use_block_pruning: bool = True
    #: run the logical rewrite rules (off = bind-then-lower verbatim,
    #: the baseline the optimizer benchmarks compare against)
    use_optimizer_rules: bool = True
    #: compile expressions and fuse filter→project→aggregate pipelines
    #: into generated kernels (off = fully interpreted execution, the
    #: bit-exactness baseline the compiled path is checked against)
    use_compiled_kernels: bool = True


@dataclass
class PreparedPlan:
    """A bound + optimized statement, ready to lower per partition."""

    statement: SelectStatement
    logical: LogicalNode
    firings: list[RuleFiring]
    selections: list[VariantSelection]

    def explain_logical(self) -> str:
        return self.logical.render()


class Planner:
    """Plans statements against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        options: PlannerOptions | None = None,
        modeljoin_factory: ModelJoinFactory | None = None,
        variant_selector=None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        kernel_cache=None,
        compile_breaker=None,
    ):
        self.catalog = catalog
        self.options = options or PlannerOptions()
        self.modeljoin_factory = modeljoin_factory
        #: duck-typed cost-based variant selector (installed through
        #: Database.set_variant_selector by repro.core.attach)
        self.variant_selector = variant_selector
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: CompiledKernelCache shared across plans (None = per-planner
        #: compilation without reuse) and the engine's one-shot breaker
        self.kernel_cache = kernel_cache
        self.compile_breaker = compile_breaker

    def _compiler(self) -> KernelCompiler | None:
        if not getattr(self.options, "use_compiled_kernels", True):
            return None
        breaker = self.compile_breaker
        if breaker is not None and breaker.is_open:
            return None
        return KernelCompiler(
            cache=self.kernel_cache,
            metrics=self.metrics,
            tracer=self.tracer,
            breaker=breaker,
        )

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def prepare(self, statement: SelectStatement) -> PreparedPlan:
        """Bind and optimize *statement* (partition-independent work)."""
        with self.tracer.span("optimizer.bind", category="planner"):
            binder = LogicalBinder(
                self.catalog,
                has_modeljoin_factory=self.modeljoin_factory is not None,
            )
            logical = binder.bind(statement)
        with self.tracer.span("optimizer.rewrite", category="planner"):
            logical, firings = RuleEngine(self.options).run(logical)
        with self.tracer.span(
            "optimizer.select_variant", category="planner"
        ):
            selections = select_variants(
                logical, self.variant_selector, metrics=self.metrics
            )
        return PreparedPlan(statement, logical, firings, selections)

    def lower(
        self,
        prepared: PreparedPlan,
        context: ExecutionContext,
        partition_index: int | None = None,
    ) -> PhysicalOperator:
        """Lower a prepared plan for one partition (or serially)."""
        with self.tracer.span("optimizer.lower", category="planner"):
            lowering = Lowering(
                context,
                self.options,
                self.modeljoin_factory,
                partition_index=partition_index,
                compiler=self._compiler(),
            )
            return lowering.lower(prepared.logical)

    # ------------------------------------------------------------------
    # legacy one-shot entry point
    # ------------------------------------------------------------------
    def plan_select(
        self,
        statement: SelectStatement,
        context: ExecutionContext,
        partition_index: int | None = None,
    ) -> PhysicalOperator:
        """Plan *statement*; with *partition_index* set, partitioned base
        tables are restricted to that partition (unpartitioned tables —
        e.g. the model table — are scanned fully, i.e. broadcast)."""
        prepared = self.prepare(statement)
        return self.lower(prepared, context, partition_index)

    def explain(
        self, statement: SelectStatement, context: ExecutionContext
    ) -> str:
        """The multi-section EXPLAIN (logical plan, fired rules,
        variant selection, physical plan)."""
        prepared = self.prepare(statement)
        physical = self.lower(prepared, context)
        return render_explain(prepared, physical)
