"""Query planner: AST -> physical operator tree.

Planning follows the classic heuristic pipeline of a vectorized engine:

1. FROM items are planned bottom-up; every item's columns are qualified
   as ``binding.column`` so joined relations keep unique names.
2. WHERE conjuncts are classified: single-relation conjuncts are pushed
   below the joins (and turned into SMA pruning ranges on base-table
   scans, paper Section 4.4); two-sided equality conjuncts become hash
   join keys; everything else is applied as a residual filter.
3. Joins are built left-deep in FROM order with the *right* input as
   the build side — in ModelJoin queries the model table is therefore
   built and the fact table streams (paper Section 5.1).
4. Aggregation picks the order-based strategy whenever the input's
   ordering property covers the group keys, otherwise hash aggregation.
5. A final projection computes the SELECT list.

The ``MODEL JOIN`` FROM extension is planned through a pluggable
factory so the core package can register the native operator without a
circular dependency.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.db.catalog import Catalog
from repro.db.column import ColumnRange
from repro.db.expressions import (
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    UnaryOp,
)
from repro.db.functions import has_function
from repro.db.operators import (
    AggregateSpec,
    CrossJoin,
    ExecutionContext,
    FilterOperator,
    HashAggregate,
    HashJoin,
    LimitOperator,
    OrderedAggregate,
    PhysicalOperator,
    ProjectOperator,
    SortOperator,
    TableScan,
)
from repro.db.operators.aggregate import SegmentedAggregate
from repro.db.operators.misc import RenameOperator
from repro.db.sql.ast import (
    FromItem,
    JoinRef,
    ModelJoinRef,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
)
from repro.db.sql.parser import is_aggregate_call
from repro.errors import BindError, PlanError

#: signature of the MODEL JOIN operator factory registered by repro.core
ModelJoinFactory = Callable[..., PhysicalOperator]


@dataclass
class PlannerOptions:
    """Knobs controlling planning decisions (used by the ablations)."""

    #: use order-based aggregation when the input ordering allows it
    use_ordered_aggregation: bool = True
    #: use segmented (partially ordered) aggregation when the input is
    #: sorted by a proper prefix of the group keys — the paper §4.4
    #: pipelining optimization for the generated ModelJoin queries
    use_segmented_aggregation: bool = False
    #: extract SMA pruning ranges from pushed-down predicates
    use_block_pruning: bool = True


@dataclass
class _Scope:
    """Name-resolution scope over the qualified columns of a relation."""

    qualified: dict[str, str] = field(default_factory=dict)
    by_bare_name: dict[str, list[str]] = field(default_factory=dict)

    def add(self, binding: str, column: str) -> None:
        qualified = f"{binding}.{column}"
        self.qualified[qualified.lower()] = qualified
        self.by_bare_name.setdefault(column.lower(), []).append(qualified)

    def resolve(self, name: str) -> str:
        key = name.lower()
        if key in self.qualified:
            return self.qualified[key]
        candidates = self.by_bare_name.get(key, [])
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise BindError(f"column {name!r} not found")
        raise BindError(
            f"column {name!r} is ambiguous: {sorted(candidates)}"
        )


class Planner:
    """Plans statements against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        options: PlannerOptions | None = None,
        modeljoin_factory: ModelJoinFactory | None = None,
    ):
        self.catalog = catalog
        self.options = options or PlannerOptions()
        self.modeljoin_factory = modeljoin_factory

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def plan_select(
        self,
        statement: SelectStatement,
        context: ExecutionContext,
        partition_index: int | None = None,
    ) -> PhysicalOperator:
        """Plan *statement*; with *partition_index* set, partitioned base
        tables are restricted to that partition (unpartitioned tables —
        e.g. the model table — are scanned fully, i.e. broadcast)."""
        conjuncts = (
            _split_conjuncts(statement.where) if statement.where else []
        )
        plan, scope, scans, pushed = self._plan_from(
            statement.from_items, conjuncts, context, partition_index
        )
        resolved_conjuncts = [
            _resolve_expression(conjunct, scope) for conjunct in conjuncts
        ]
        # Pruning ranges are derived only now, against the *complete*
        # scope, so unqualified names cannot mis-resolve to the wrong
        # table while later FROM items are still unbound.  Conjuncts
        # already pushed below a MODEL JOIN still contribute ranges.
        if self.options.use_block_pruning:
            for binding, scan in scans.items():
                scan.ranges = _extract_ranges(
                    resolved_conjuncts, binding, scan.table.schema
                )
        remaining_conjuncts = [
            conjunct
            for index, conjunct in enumerate(resolved_conjuncts)
            if index not in pushed
        ]
        plan, leftover = self._apply_joins_filters(
            plan, scope, remaining_conjuncts, context
        )
        if leftover:
            plan = FilterOperator(context, plan, _conjoin(leftover))

        group_exprs = [
            _resolve_expression(expression, scope)
            for expression in statement.group_by
        ]
        select_exprs, select_names = self._resolve_select_list(
            statement.select_items, scope, plan
        )
        having = (
            _resolve_expression(statement.having, scope)
            if statement.having is not None
            else None
        )
        has_aggregates = any(
            _contains_aggregate(expression) for expression in select_exprs
        ) or (having is not None and _contains_aggregate(having))
        if group_exprs or has_aggregates:
            plan = self._plan_aggregation(
                plan, group_exprs, select_exprs, select_names, having, context
            )
        else:
            plan = ProjectOperator(context, plan, select_exprs, select_names)

        if statement.distinct:
            plan = HashAggregate(
                context,
                plan,
                [ColumnRef(name) for name in plan.schema.names],
                list(plan.schema.names),
                [],
            )
        if statement.order_by:
            plan = self._plan_order_by(plan, statement.order_by, context)
        if statement.limit is not None:
            plan = LimitOperator(
                context, plan, statement.limit, statement.offset
            )
        return plan

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _plan_from(
        self,
        from_items: tuple[FromItem, ...],
        conjuncts: list[Expression],
        context: ExecutionContext,
        partition_index: int | None,
    ) -> tuple[
        list[tuple[PhysicalOperator, set[str]]],
        _Scope,
        dict[str, TableScan],
        set[int],
    ]:
        """Plan each FROM item into a qualified operator.

        Returns the list of (operator, bindings) pairs still to be
        joined, the complete scope, the base-table scans by binding
        name (so pruning ranges can be attached afterwards), and the
        indices of WHERE conjuncts that were already pushed below a
        MODEL JOIN (the Raven-style early-pruning cross optimization).
        """
        scope = _Scope()
        scans: dict[str, TableScan] = {}
        pushed: set[int] = set()
        planned: list[tuple[PhysicalOperator, set[str]]] = []
        for item in from_items:
            operator, bindings = self._plan_from_item(
                item, scope, conjuncts, context, partition_index, scans,
                pushed,
            )
            planned.append((operator, bindings))
        return planned, scope, scans, pushed

    def _plan_from_item(
        self,
        item: FromItem,
        scope: _Scope,
        conjuncts: list[Expression],
        context: ExecutionContext,
        partition_index: int | None,
        scans: dict[str, TableScan],
        pushed: set[int],
    ) -> tuple[PhysicalOperator, set[str]]:
        if isinstance(item, TableRef):
            return self._plan_table_ref(
                item, scope, context, partition_index, scans
            )
        if isinstance(item, SubqueryRef):
            inner = self.plan_select(item.query, context, partition_index)
            binding = item.alias.lower()
            names = [f"{binding}.{name}" for name in inner.schema.names]
            for name in inner.schema.names:
                scope.add(binding, name)
            return RenameOperator(context, inner, names), {binding}
        if isinstance(item, JoinRef):
            left, left_bindings = self._plan_from_item(
                item.left, scope, conjuncts, context, partition_index,
                scans, pushed,
            )
            right, right_bindings = self._plan_from_item(
                item.right, scope, conjuncts, context, partition_index,
                scans, pushed,
            )
            condition = _resolve_expression(item.condition, scope)
            joined = self._join_pair(
                left, left_bindings, right, right_bindings, [condition], context
            )
            return joined, left_bindings | right_bindings
        if isinstance(item, ModelJoinRef):
            return self._plan_model_join(
                item, scope, conjuncts, context, partition_index, scans,
                pushed,
            )
        raise PlanError(f"unsupported FROM item {type(item).__name__}")

    def _plan_table_ref(
        self,
        item: TableRef,
        scope: _Scope,
        context: ExecutionContext,
        partition_index: int | None,
        scans: dict[str, TableScan],
    ) -> tuple[PhysicalOperator, set[str]]:
        table = self.catalog.table(item.table_name)
        binding = item.binding_name.lower()
        scan_partition = partition_index
        if partition_index is not None and table.num_partitions == 1:
            scan_partition = None  # broadcast unpartitioned tables
        scan = TableScan(context, table, partition_index=scan_partition)
        scans[binding] = scan
        names = [f"{binding}.{name}" for name in table.schema.names]
        for name in table.schema.names:
            scope.add(binding, name)
        return RenameOperator(context, scan, names), {binding}

    def _plan_model_join(
        self,
        item: ModelJoinRef,
        scope: _Scope,
        conjuncts: list[Expression],
        context: ExecutionContext,
        partition_index: int | None,
        scans: dict[str, TableScan],
        pushed: set[int],
    ) -> tuple[PhysicalOperator, set[str]]:
        if self.modeljoin_factory is None:
            raise PlanError(
                "MODEL JOIN is not available: no ModelJoin operator factory "
                "is registered (import repro.core or use Database from "
                "repro, not repro.db)"
            )
        left, left_bindings = self._plan_from_item(
            item.left, scope, conjuncts, context, partition_index, scans,
            pushed,
        )
        # Raven-style cross optimization (paper §3, "early pruning"):
        # predicates that only touch the input flow run *before* the
        # inference, so filtered-out tuples are never scored.  Only
        # conjuncts whose references are all explicitly qualified with
        # the left side's bindings are pushed — unqualified names could
        # still belong to a FROM item that is not bound yet.
        pushable: list[int] = []
        for index, conjunct in enumerate(conjuncts):
            if index in pushed:
                continue
            references = conjunct.referenced_columns()
            if references and all(
                "." in name
                and name.split(".", 1)[0].lower() in left_bindings
                for name in references
            ):
                pushable.append(index)
        if pushable:
            predicate = _conjoin(
                [
                    _resolve_expression(conjuncts[index], scope)
                    for index in pushable
                ]
            )
            left = FilterOperator(context, left, predicate)
            pushed.update(pushable)
        metadata = self.catalog.model(item.model_name)
        model_table = self.catalog.table(metadata.table_name)
        input_columns = [
            scope.resolve(name) for name in item.input_columns
        ] or None
        operator = self.modeljoin_factory(
            context=context,
            child=left,
            metadata=metadata,
            model_table=model_table,
            input_columns=input_columns,
            output_prefix=f"{item.model_name.lower()}.{item.output_prefix}",
            partition_index=partition_index,
        )
        binding = item.model_name.lower()
        for name in operator.schema.names:
            if name.lower().startswith(binding + "."):
                scope.add(binding, name.split(".", 1)[1])
        return operator, left_bindings | {binding}

    # ------------------------------------------------------------------
    # joins and filters
    # ------------------------------------------------------------------
    def _apply_joins_filters(
        self,
        planned: list[tuple[PhysicalOperator, set[str]]],
        scope: _Scope,
        conjuncts: list[Expression],
        context: ExecutionContext,
    ) -> tuple[PhysicalOperator, list[Expression]]:
        remaining = list(conjuncts)
        # Push single-relation predicates down to their item.
        for index, (operator, bindings) in enumerate(planned):
            mine = [
                conjunct
                for conjunct in remaining
                if _bindings_of(conjunct) and _bindings_of(conjunct) <= bindings
            ]
            if mine:
                planned[index] = (
                    FilterOperator(context, operator, _conjoin(mine)),
                    bindings,
                )
                remaining = [c for c in remaining if c not in mine]
        current, current_bindings = planned[0]
        for operator, bindings in planned[1:]:
            usable = [
                conjunct
                for conjunct in remaining
                if _bindings_of(conjunct)
                <= (current_bindings | bindings)
            ]
            current = self._join_pair(
                current, current_bindings, operator, bindings, usable, context
            )
            remaining = [c for c in remaining if c not in usable]
            current_bindings = current_bindings | bindings
        return current, remaining

    def _join_pair(
        self,
        left: PhysicalOperator,
        left_bindings: set[str],
        right: PhysicalOperator,
        right_bindings: set[str],
        conjuncts: list[Expression],
        context: ExecutionContext,
    ) -> PhysicalOperator:
        left_keys: list[Expression] = []
        right_keys: list[Expression] = []
        residual: list[Expression] = []
        for conjunct in conjuncts:
            pair = _equi_key_pair(conjunct, left_bindings, right_bindings)
            if pair is not None:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
            else:
                residual.append(conjunct)
        residual_expr = _conjoin(residual) if residual else None
        if left_keys:
            return HashJoin(
                context, left, right, left_keys, right_keys, residual_expr
            )
        joined: PhysicalOperator = CrossJoin(context, left, right)
        if residual_expr is not None:
            joined = FilterOperator(context, joined, residual_expr)
        return joined

    # ------------------------------------------------------------------
    # SELECT list / aggregation
    # ------------------------------------------------------------------
    def _resolve_select_list(
        self,
        items: tuple[SelectItem, ...],
        scope: _Scope,
        plan: PhysicalOperator,
    ) -> tuple[list[Expression], list[str]]:
        expressions: list[Expression] = []
        names: list[str] = []
        for item in items:
            if isinstance(item.expression, Star):
                qualifier = (
                    item.expression.qualifier.lower()
                    if item.expression.qualifier
                    else None
                )
                star_names = self._expand_star(plan, qualifier)
                for qualified in star_names:
                    expressions.append(ColumnRef(qualified))
                    names.append(_bare_name(qualified, names))
                continue
            expression = _resolve_expression(item.expression, scope)
            expressions.append(expression)
            if item.alias:
                names.append(item.alias)
            elif isinstance(expression, ColumnRef):
                names.append(_bare_name(expression.name, names))
            else:
                names.append(f"col{len(names)}")
        lowered = [name.lower() for name in names]
        if len(set(lowered)) != len(lowered):
            raise PlanError(f"duplicate output column names: {names}")
        return expressions, names

    def _expand_star(
        self, plan: PhysicalOperator, qualifier: str | None
    ) -> list[str]:
        names = []
        for name in plan.schema.names:
            binding = name.split(".", 1)[0].lower() if "." in name else ""
            if qualifier is None or binding == qualifier:
                names.append(name)
        if not names:
            raise BindError(f"no columns match {qualifier}.*")
        return names

    def _plan_aggregation(
        self,
        plan: PhysicalOperator,
        group_exprs: list[Expression],
        select_exprs: list[Expression],
        select_names: list[str],
        having: Expression | None,
        context: ExecutionContext,
    ) -> PhysicalOperator:
        if not group_exprs:
            raise PlanError(
                "global aggregation (no GROUP BY) is not supported; "
                "add a constant group key"
            )
        group_names = [f"__g{i}" for i in range(len(group_exprs))]
        aggregates: list[AggregateSpec] = []

        def rewrite(expression: Expression) -> Expression:
            for slot, group_expr in enumerate(group_exprs):
                if expression == group_expr:
                    return ColumnRef(group_names[slot])
            if is_aggregate_call(expression):
                argument = None
                if expression.arguments:
                    if len(expression.arguments) != 1:
                        raise PlanError(
                            f"{expression.name} takes exactly one argument"
                        )
                    argument = expression.arguments[0]
                    if _contains_aggregate(argument):
                        raise PlanError("nested aggregates are not allowed")
                name = f"__a{len(aggregates)}"
                aggregates.append(
                    AggregateSpec(expression.name, argument, name)
                )
                return ColumnRef(name)
            return _rebuild(expression, rewrite)

        rewritten_select = [rewrite(expression) for expression in select_exprs]
        rewritten_having = rewrite(having) if having is not None else None
        generated = set(group_names) | {spec.name for spec in aggregates}
        for expression, name in zip(rewritten_select, select_names):
            stray = expression.referenced_columns() - generated
            if stray:
                raise PlanError(
                    f"column(s) {sorted(stray)} in select item {name!r} "
                    "appear neither in GROUP BY nor inside an aggregate"
                )
        aggregate_operator = self._choose_aggregate(
            plan, group_exprs, group_names, aggregates, context
        )
        result: PhysicalOperator = aggregate_operator
        if rewritten_having is not None:
            result = FilterOperator(context, result, rewritten_having)
        return ProjectOperator(context, result, rewritten_select, select_names)

    def _choose_aggregate(
        self,
        plan: PhysicalOperator,
        group_exprs: list[Expression],
        group_names: list[str],
        aggregates: list[AggregateSpec],
        context: ExecutionContext,
    ) -> PhysicalOperator:
        if self.options.use_ordered_aggregation and all(
            isinstance(expression, ColumnRef) for expression in group_exprs
        ):
            keys = {
                expression.name.lower() for expression in group_exprs
            }
            prefix = {
                name.lower() for name in plan.ordering[: len(keys)]
            }
            if prefix == keys:
                return OrderedAggregate(
                    context, plan, group_exprs, group_names, aggregates
                )
        if self.options.use_segmented_aggregation:
            segmented = self._try_segmented_aggregate(
                plan, group_exprs, group_names, aggregates, context
            )
            if segmented is not None:
                return segmented
        return HashAggregate(
            context, plan, group_exprs, group_names, aggregates
        )

    def _try_segmented_aggregate(
        self,
        plan: PhysicalOperator,
        group_exprs: list[Expression],
        group_names: list[str],
        aggregates: list[AggregateSpec],
        context: ExecutionContext,
    ) -> PhysicalOperator | None:
        """Use SegmentedAggregate when the input ordering covers a
        proper, non-empty prefix of the group keys (paper §4.4)."""
        bare = {}
        for index, expression in enumerate(group_exprs):
            if isinstance(expression, ColumnRef):
                bare.setdefault(expression.name.lower(), index)
        prefix_indices: list[int] = []
        seen: set[int] = set()
        for name in plan.ordering:
            index = bare.get(name.lower())
            if index is None or index in seen:
                break
            prefix_indices.append(index)
            seen.add(index)
        if not prefix_indices or len(prefix_indices) >= len(group_exprs):
            return None
        order = prefix_indices + [
            index
            for index in range(len(group_exprs))
            if index not in seen
        ]
        return SegmentedAggregate(
            context,
            plan,
            [group_exprs[index] for index in order],
            [group_names[index] for index in order],
            aggregates,
            prefix_length=len(prefix_indices),
        )

    def _plan_order_by(
        self,
        plan: PhysicalOperator,
        order_by: tuple[OrderItem, ...],
        context: ExecutionContext,
    ) -> PhysicalOperator:
        keys: list[ColumnRef] = []
        ascending: list[bool] = []
        for item in order_by:
            if not isinstance(item.expression, ColumnRef):
                raise PlanError(
                    "ORDER BY supports only output column references"
                )
            name = item.expression.name
            plan.schema.position_of(name)  # validate
            keys.append(ColumnRef(name))
            ascending.append(item.ascending)
        # Skip the sort if the required order is already guaranteed.
        wanted = tuple(key.name.lower() for key in keys)
        have = tuple(name.lower() for name in plan.ordering)
        if all(ascending) and have[: len(wanted)] == wanted:
            return plan
        return SortOperator(context, plan, keys, ascending)


# ----------------------------------------------------------------------
# expression utilities
# ----------------------------------------------------------------------
def _split_conjuncts(expression: Expression) -> list[Expression]:
    if isinstance(expression, BinaryOp) and expression.operator == "AND":
        return _split_conjuncts(expression.left) + _split_conjuncts(
            expression.right
        )
    return [expression]


def _conjoin(conjuncts: list[Expression]) -> Expression:
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = BinaryOp("AND", result, conjunct)
    return result


def _rebuild(
    expression: Expression, transform: Callable[[Expression], Expression]
) -> Expression:
    """Rebuild *expression* with *transform* applied to its children."""
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.operator,
            transform(expression.left),
            transform(expression.right),
        )
    if isinstance(expression, UnaryOp):
        return UnaryOp(expression.operator, transform(expression.operand))
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name,
            tuple(transform(argument) for argument in expression.arguments),
        )
    if isinstance(expression, CaseWhen):
        return CaseWhen(
            tuple(
                (transform(condition), transform(value))
                for condition, value in expression.branches
            ),
            transform(expression.otherwise)
            if expression.otherwise is not None
            else None,
        )
    if isinstance(expression, Cast):
        return Cast(transform(expression.operand), expression.target)
    return expression


def _resolve_expression(expression: Expression, scope: _Scope) -> Expression:
    """Resolve all column references in *expression* against *scope*."""

    def transform(node: Expression) -> Expression:
        if isinstance(node, ColumnRef):
            return ColumnRef(scope.resolve(node.name))
        if isinstance(node, FunctionCall) and not has_function(node.name):
            if node.name not in ("SUM", "COUNT", "MIN", "MAX", "AVG"):
                raise BindError(f"unknown function {node.name!r}")
        return _rebuild(node, transform)

    return transform(expression)


def _bindings_of(expression: Expression) -> set[str]:
    """Binding names referenced by a fully resolved expression."""
    return {
        name.split(".", 1)[0]
        for name in expression.referenced_columns()
        if "." in name
    }


def _contains_aggregate(expression: Expression) -> bool:
    if is_aggregate_call(expression):
        return True
    found = False

    def transform(node: Expression) -> Expression:
        nonlocal found
        if is_aggregate_call(node):
            found = True
            return node
        return _rebuild(node, transform)

    _rebuild(expression, transform)
    return found


def _equi_key_pair(
    conjunct: Expression, left_bindings: set[str], right_bindings: set[str]
) -> tuple[Expression, Expression] | None:
    """If *conjunct* is ``left_expr = right_expr`` across the two sides,
    return the (left, right) key expressions, else None."""
    if not isinstance(conjunct, BinaryOp) or conjunct.operator != "=":
        return None
    first = _bindings_of(conjunct.left)
    second = _bindings_of(conjunct.right)
    if not first or not second:
        return None
    if first <= left_bindings and second <= right_bindings:
        return conjunct.left, conjunct.right
    if first <= right_bindings and second <= left_bindings:
        return conjunct.right, conjunct.left
    return None


def _extract_ranges(
    conjuncts: list[Expression],
    binding: str,
    table_schema,
) -> list[ColumnRange]:
    """Turn pushable comparisons with literals into SMA pruning ranges.

    Works on fully *resolved* conjuncts, whose column references are
    all qualified — a reference belongs to this scan iff its qualifier
    is *binding*.
    """
    ranges: dict[str, ColumnRange] = {}
    for conjunct in conjuncts:
        extracted = _range_of_conjunct(conjunct, binding)
        if extracted is None:
            continue
        if not table_schema.has_column(extracted.column):
            continue
        key = extracted.column.lower()
        if key in ranges:
            ranges[key] = ranges[key].intersect(extracted)
        else:
            ranges[key] = extracted
    return list(ranges.values())


def _range_of_conjunct(
    conjunct: Expression, binding: str
) -> ColumnRange | None:
    if not isinstance(conjunct, BinaryOp):
        return None
    operator = conjunct.operator
    left, right = conjunct.left, conjunct.right
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        operator = flipped.get(operator, operator)
        left, right = right, left
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return None
    if not isinstance(right.value, (int, float)) or isinstance(
        right.value, bool
    ):
        return None
    item_binding, _, column = left.name.partition(".")
    if not column or item_binding.lower() != binding:
        return None
    value = float(right.value)
    if operator == "=":
        return ColumnRange(column, value, value)
    if operator == "<":
        return ColumnRange(column, None, value)
    if operator == "<=":
        return ColumnRange(column, None, value)
    if operator == ">":
        return ColumnRange(column, value, None)
    if operator == ">=":
        return ColumnRange(column, value, None)
    return None


def _bare_name(qualified: str, taken: list[str]) -> str:
    bare = qualified.split(".", 1)[1] if "." in qualified else qualified
    lowered = [name.lower() for name in taken]
    if bare.lower() not in lowered:
        return bare
    # Collision (e.g. SELECT * over a join with same-named columns):
    # fall back to a disambiguated name.
    candidate = qualified.replace(".", "_")
    suffix = 0
    while candidate.lower() in lowered:
        suffix += 1
        candidate = f"{qualified.replace('.', '_')}_{suffix}"
    return candidate
