"""Python user-defined functions with an explicit marshalling boundary.

Approach (1) of the paper runs model inference inside a Python UDF.  In
Actian Vector, calling a UDF crosses the engine/interpreter boundary:
column vectors are converted to Python structures, the interpreter runs,
and results are converted back.  Vectorized UDFs (Kläbe et al., CIDR'22)
amortize this to once per 1024-tuple vector; tuple-at-a-time UDFs pay it
per row.

Our engine *is* Python, so the boundary would be free by accident.  To
preserve the cost structure the paper measures, UDF invocation really
marshals: each vector is serialized row-wise into an interchange buffer
and parsed back into Python lists on the UDF side (and the results take
the reverse trip).  This is real per-value CPU work, not a sleep —
disable it with ``marshal=False`` for the ablation benchmark.
"""

from __future__ import annotations

import struct
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.db.functions import ScalarFunction, register_function
from repro.db.types import SqlType
from repro.errors import ExecutionError


@dataclass
class UdfStatistics:
    """Counters a UDF accumulates across calls (for tests/benches)."""

    calls: int = 0
    rows: int = 0


@dataclass
class PythonUdf:
    """A registered Python UDF.

    *function* receives one Python list per argument (vectorized mode)
    or one scalar per argument (tuple-at-a-time mode) and must return a
    list of results / a single result respectively.
    """

    name: str
    arity: int
    function: Callable
    result_type: SqlType = SqlType.DOUBLE
    vectorized: bool = True
    marshal: bool = True
    statistics: UdfStatistics | None = None

    def __post_init__(self) -> None:
        if self.statistics is None:
            self.statistics = UdfStatistics()

    def __call__(self, *arrays: np.ndarray) -> np.ndarray:
        if len(arrays) != self.arity:
            raise ExecutionError(
                f"UDF {self.name} expects {self.arity} arguments, "
                f"got {len(arrays)}"
            )
        length = len(arrays[0]) if arrays else 0
        self.statistics.rows += length
        if self.vectorized:
            self.statistics.calls += 1
            return self._call_vectorized(arrays, length)
        return self._call_per_tuple(arrays, length)

    def _call_vectorized(
        self, arrays: tuple[np.ndarray, ...], length: int
    ) -> np.ndarray:
        if self.marshal:
            # The engine/interpreter boundary serializes each vector
            # row-wise through an interchange buffer and parses it back
            # on the UDF side (and the same for the results) — the
            # "data conversions and data transport between the engine
            # and the Python environment" the paper names as the UDF
            # variant's overhead (§6.2.1).  This is real per-value CPU
            # work of the same kind the ODBC simulation pays, which is
            # what puts UDF and TF(Python) in the same performance
            # class in Figure 8.
            row_format = "<" + "d" * len(arrays)
            packer = struct.Struct(row_format)
            wire = bytearray()
            for row in zip(*(array.tolist() for array in arrays)):
                wire += packer.pack(*(float(value) for value in row))
            columns = [[] for _ in arrays]
            for values in struct.iter_unpack(row_format, bytes(wire)):
                for slot, value in enumerate(values):
                    columns[slot].append(value)
            arguments = columns
        else:
            arguments = list(arrays)
        results = self.function(*arguments)
        if self.marshal:
            result_list = [float(value) for value in results]
            out_wire = struct.pack(
                f"<{len(result_list)}d", *result_list
            )
            results = list(
                struct.unpack(f"<{len(result_list)}d", out_wire)
            )
        output = np.asarray(results, dtype=self.result_type.numpy_dtype)
        if len(output) != length:
            raise ExecutionError(
                f"UDF {self.name} returned {len(output)} values "
                f"for {length} input rows"
            )
        return output

    def _call_per_tuple(
        self, arrays: tuple[np.ndarray, ...], length: int
    ) -> np.ndarray:
        rows = zip(*(array.tolist() for array in arrays))
        results = []
        for row in rows:
            self.statistics.calls += 1
            results.append(self.function(*row))
        return np.asarray(results, dtype=self.result_type.numpy_dtype)

    def as_scalar_function(self) -> ScalarFunction:
        """Adapter so the expression evaluator can call this UDF."""
        result_type = self.result_type

        def type_rule(argument_types: list[SqlType]) -> SqlType:
            return result_type

        return ScalarFunction(self.name, self.arity, self, type_rule)


def register_udf(udf: PythonUdf) -> PythonUdf:
    """Make *udf* callable from SQL expressions."""
    register_function(udf.as_scalar_function())
    return udf
