"""Hyperparameter parsing/validation for ``CREATE MODEL``.

The ``WITH (key = literal, ...)`` clause maps onto a
:class:`TrainingSpec`; everything has a sane default so
``CREATE MODEL m AS TRAIN DENSE(1) ON (SELECT ...)`` works bare.
The spec is part of the determinism contract (docs/TRAINING.md):
training is a pure function of ``(seed, data, hyperparameters)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.sql.ast import CreateModel, LayerSpec
from repro.errors import TrainingError
from repro.nn.activations import supported_activations
from repro.nn.backward import LOSS_FUNCTIONS


@dataclass(frozen=True)
class TrainingSpec:
    """Validated hyperparameters of one training run."""

    epochs: int = 20
    batch_size: int = 32
    learning_rate: float = 0.01
    momentum: float = 0.9
    seed: int = 0
    loss: str = "mse"

    @classmethod
    def from_options(
        cls, options: tuple[tuple[str, object], ...]
    ) -> "TrainingSpec":
        values: dict[str, object] = {}
        for key, value in options:
            name = {"lr": "learning_rate"}.get(key, key)
            if name in values:
                raise TrainingError(f"duplicate WITH option {key!r}")
            if name in ("epochs", "batch_size", "seed"):
                if not isinstance(value, int) or isinstance(value, bool):
                    raise TrainingError(
                        f"WITH option {key!r} must be an integer, "
                        f"got {value!r}"
                    )
                if name != "seed" and value < 1:
                    raise TrainingError(
                        f"WITH option {key!r} must be >= 1, got {value}"
                    )
                values[name] = value
            elif name in ("learning_rate", "momentum"):
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise TrainingError(
                        f"WITH option {key!r} must be a number, "
                        f"got {value!r}"
                    )
                number = float(value)
                if name == "learning_rate" and number <= 0.0:
                    raise TrainingError("learning rate must be > 0")
                if name == "momentum" and not 0.0 <= number < 1.0:
                    raise TrainingError("momentum must be in [0, 1)")
                values[name] = number
            elif name == "loss":
                if (
                    not isinstance(value, str)
                    or value.lower() not in LOSS_FUNCTIONS
                ):
                    raise TrainingError(
                        f"unknown loss {value!r}; "
                        f"supported: {sorted(LOSS_FUNCTIONS)}"
                    )
                values[name] = value.lower()
            else:
                raise TrainingError(
                    f"unknown WITH option {key!r}; supported: epochs, "
                    "batch_size, lr, momentum, seed, loss"
                )
        return cls(**values)

    def describe(self) -> str:
        return (
            f"epochs={self.epochs}, batch_size={self.batch_size}, "
            f"lr={self.learning_rate}, momentum={self.momentum}, "
            f"seed={self.seed}, loss={self.loss}"
        )


def validate_layers(layers: tuple[LayerSpec, ...]) -> None:
    if not layers:
        raise TrainingError("CREATE MODEL needs at least one layer")
    for layer in layers:
        if layer.units < 1:
            raise TrainingError(
                f"layer must have at least one unit, got {layer.units}"
            )
        if layer.activation not in supported_activations():
            raise TrainingError(
                f"unknown activation {layer.activation!r}; "
                f"supported: {list(supported_activations())}"
            )


def describe_arch(statement: CreateModel) -> str:
    """``dense(8 relu, 1 sigmoid)`` — the catalog/EXPLAIN arch string."""
    parts = ", ".join(
        f"{layer.units} {layer.activation}" for layer in statement.layers
    )
    return f"dense({parts})"
