"""The native minibatch-SGD training operator.

Consumes the materialized feature/label arrays of the source query
(planned and executed by the regular pipeline — pushdown, compiled
kernels and persistent scans all apply) and trains a dense stack with
the :class:`repro.nn.backward.DenseBackward` device-kernel stepper.

Determinism contract: the minibatch schedule is drawn from
``np.random.default_rng(seed)`` exactly like
:func:`repro.nn.training.fit` (one ``permutation`` per epoch), every
kernel is float32 NumPy, and the ``train.step`` fault site fires
*before* the forward pass — so a retried batch reruns against
untouched weights and an injected fault never perturbs the result.
"""

from __future__ import annotations

import time

import numpy as np

from repro.db import faults
from repro.db.train.spec import TrainingSpec
from repro.errors import InjectedFaultError, TrainingError
from repro.nn.backward import DenseBackward, WorkspaceArena
from repro.nn.model import Sequential


class TrainOperator:
    """Runs one ``CREATE MODEL`` training loop to completion.

    Mutates *model*'s weights in place and returns the per-epoch loss
    trajectory.  ``retries`` bounds how many injected/transient batch
    failures are retried (bit-exact — see module docstring) before the
    whole run fails; the executor guarantees a failed run publishes
    nothing.
    """

    def __init__(
        self,
        model: Sequential,
        spec: TrainingSpec,
        device=None,
        arena=None,
        tracer=None,
        metrics=None,
        retries: int = 2,
        cancellation=None,
    ):
        if device is None:
            from repro.device.host import HostDevice

            device = HostDevice()
        self.model = model
        self.spec = spec
        self.device = device
        self.arena = arena if arena is not None else WorkspaceArena()
        self.tracer = tracer
        self.metrics = metrics
        self.retries = retries
        self.cancellation = cancellation
        self.retried_batches = 0
        self.total_batches = 0

    def run(self, features: np.ndarray, labels: np.ndarray) -> list[float]:
        spec = self.spec
        count = len(features)
        if count < 1:
            raise TrainingError(
                "CREATE MODEL source query returned no rows"
            )
        stepper = DenseBackward(
            self.model,
            self.device,
            self.arena,
            learning_rate=spec.learning_rate,
            momentum=spec.momentum,
            loss=spec.loss,
        )
        rng = np.random.default_rng(spec.seed)
        losses: list[float] = []
        with self._span(
            "train",
            args={
                "rows": count,
                "epochs": spec.epochs,
                "batch_size": spec.batch_size,
                "loss": spec.loss,
            },
        ):
            for epoch in range(spec.epochs):
                started = time.perf_counter()
                order = rng.permutation(count)
                epoch_loss = 0.0
                batches = 0
                with self._span("train.epoch", args={"epoch": epoch}):
                    for start in range(0, count, spec.batch_size):
                        index = order[start : start + spec.batch_size]
                        x = np.ascontiguousarray(features[index])
                        y = np.ascontiguousarray(labels[index])
                        epoch_loss += self._step(stepper, x, y)
                        batches += 1
                losses.append(epoch_loss / max(batches, 1))
                if self.metrics is not None:
                    self.metrics.counter("training.epochs").increment()
                    self.metrics.counter(
                        "training.batches"
                    ).increment(batches)
                    self.metrics.histogram(
                        "training.epoch_seconds"
                    ).observe(time.perf_counter() - started)
        return losses

    def _step(
        self, stepper: DenseBackward, x: np.ndarray, y: np.ndarray
    ) -> float:
        """One minibatch step behind the ``train.step`` fault site."""
        attempts = 0
        while True:
            if self.cancellation is not None:
                self.cancellation.check()
            if faults.ACTIVE is not None:
                try:
                    faults.ACTIVE.fire("train.step")
                except InjectedFaultError:
                    attempts += 1
                    self.retried_batches += 1
                    if self.metrics is not None:
                        self.metrics.counter(
                            "training.retries"
                        ).increment()
                    if self.tracer is not None:
                        self.tracer.instant(
                            "train-step-retry",
                            category="train",
                            args={"attempt": attempts},
                        )
                    if attempts > self.retries:
                        raise
                    continue
            self.total_batches += 1
            return stepper.train_batch(x, y)

    def _span(self, name: str, args: dict):
        if self.tracer is not None:
            return self.tracer.span(name, category="train", args=args)
        import contextlib

        return contextlib.nullcontext()
