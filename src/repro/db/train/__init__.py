"""In-database training and the model lifecycle (docs/TRAINING.md).

``CREATE MODEL <name> [VERSION v] AS TRAIN DENSE(...) ON (SELECT
features..., label FROM ...) WITH (epochs=..., ...)`` plans and runs
the source query through the regular pipeline, trains a dense stack
with device-kernel minibatch SGD (:mod:`repro.nn.backward`), writes
the result as a standard one-row-per-edge model table and registers
it in the versioned model catalog (``system.models``).  ``AS
RETRAIN`` trains the next version without publishing; ``ALTER MODEL
... SET VERSION`` publishes atomically under the catalog lock so
snapshot-pinned queries keep the old version while new admissions
pick up the new one.
"""

from repro.db.train.executor import (
    execute_alter_model,
    execute_create_model,
    render_create_model_explain,
    source_fingerprint,
    version_table_name,
    weight_checksum,
)
from repro.db.train.operator import TrainOperator
from repro.db.train.spec import TrainingSpec, describe_arch

__all__ = [
    "TrainOperator",
    "TrainingSpec",
    "describe_arch",
    "execute_alter_model",
    "execute_create_model",
    "render_create_model_explain",
    "source_fingerprint",
    "version_table_name",
    "weight_checksum",
]
