"""Executing ``CREATE MODEL`` / ``ALTER MODEL`` statements.

Locking protocol (critical for retrain-and-swap under live traffic):
the catalog lock is held only to *resolve* the target version and,
after training finishes, to *publish* (write the weight table +
register the catalog record) — never across the training loop itself.
Serving admissions and snapshot captures therefore proceed normally
while a retrain runs; in-flight snapshot-pinned queries keep the old
version, and the publish (or an explicit ``ALTER MODEL ... SET
VERSION``) is a single atomic cut.

Publication is all-or-nothing: a failure between the weight-table
write and the catalog registration drops the table again, so a failed
``CREATE MODEL`` never leaves a partial model behind (tested with the
``train.step`` fault site and a crash-kill between the two steps).
"""

from __future__ import annotations

import time
import zlib

import numpy as np

from repro.db.catalog import Catalog, ModelVersionRecord
from repro.db.operators import ExecutionContext
from repro.db.schema import Column, Schema
from repro.db.sql.ast import AlterModel, CreateModel
from repro.db.train.operator import TrainOperator
from repro.db.train.spec import (
    TrainingSpec,
    describe_arch,
    validate_layers,
)
from repro.db.types import SqlType
from repro.db.vector import VectorBatch
from repro.errors import TrainingError
from repro.nn.layers import Dense
from repro.nn.model import Sequential


def version_table_name(model_name: str, version: int) -> str:
    """The per-version weight table: distinct table per version, so the
    ModelJoin build cache keys per version for free (distinct uid)."""
    return f"{model_name.lower()}__v{version}"


def weight_checksum(model: Sequential) -> int:
    """CRC32 chained over every layer's kernel and bias bytes."""
    value = 0
    for layer in model.layers:
        value = zlib.crc32(
            np.ascontiguousarray(layer.kernel).tobytes(), value
        )
        value = zlib.crc32(
            np.ascontiguousarray(layer.bias).tobytes(), value
        )
    return value


def source_fingerprint(statement: CreateModel) -> str:
    """A stable fingerprint of the training source query."""
    return f"{zlib.crc32(repr(statement.query).encode()):08x}"


def _resolve_version(catalog: Catalog, statement: CreateModel) -> int:
    """Pick (and validate) the version this run will produce.

    ``AS TRAIN`` requires a free model name and defaults to version 1;
    ``AS RETRAIN`` requires an existing model and defaults to
    ``latest + 1``.  Called under the catalog lock.
    """
    key = statement.model_name.lower()
    versions = catalog.model_versions.get(key, {})
    if statement.retrain:
        if not versions and not catalog.has_model(key):
            raise TrainingError(
                f"cannot RETRAIN {statement.model_name!r}: "
                "model is not registered (use CREATE MODEL ... AS TRAIN)"
            )
        if statement.version is not None:
            version = statement.version
        else:
            version = (max(versions) + 1) if versions else 1
    else:
        if versions or catalog.has_model(key):
            raise TrainingError(
                f"model {statement.model_name!r} already exists; "
                "use CREATE MODEL ... AS RETRAIN to train a new version"
            )
        version = statement.version if statement.version is not None else 1
    if version < 1:
        raise TrainingError(f"model version must be >= 1, got {version}")
    if version in versions:
        raise TrainingError(
            f"model {statement.model_name!r} already has a "
            f"version {version}"
        )
    return version


def _training_data(result) -> tuple[np.ndarray, np.ndarray]:
    """Split the source result: last column = label, rest = features."""
    names = list(result.schema.names)
    if len(names) < 2:
        raise TrainingError(
            "CREATE MODEL source query must produce at least two "
            "columns (features..., label)"
        )
    for name in names:
        if not result.schema.type_of(name).is_numeric:
            raise TrainingError(
                f"training column {name!r} is not numeric"
            )
    features = np.column_stack(
        [result.column(name) for name in names[:-1]]
    ).astype(np.float32)
    labels = np.asarray(
        result.column(names[-1]), dtype=np.float32
    ).reshape(-1, 1)
    return features, labels


def _build_model(
    statement: CreateModel, input_width: int, seed: int
) -> Sequential:
    layers = [
        Dense(layer.units, activation=layer.activation)
        for layer in statement.layers
    ]
    return Sequential(layers, input_width=input_width, seed=seed)


def _summary_result(record: ModelVersionRecord, batches: int):
    from repro.db.engine import Result
    from repro.db.profiler import QueryProfile

    schema = Schema(
        (
            Column("model", SqlType.VARCHAR),
            Column("version", SqlType.INTEGER),
            Column("table_name", SqlType.VARCHAR),
            Column("epochs", SqlType.INTEGER),
            Column("batches", SqlType.INTEGER),
            Column("final_loss", SqlType.DOUBLE),
            Column("weight_checksum", SqlType.VARCHAR),
        )
    )
    batch = VectorBatch(
        schema,
        [
            np.array([record.model_name], dtype=object),
            np.array([record.version], dtype=np.int64),
            np.array([record.metadata.table_name], dtype=object),
            np.array([record.epochs], dtype=np.int64),
            np.array([batches], dtype=np.int64),
            np.array([record.final_loss], dtype=np.float64),
            np.array([f"{record.weight_checksum:08x}"], dtype=object),
        ],
    )
    return Result(schema, [batch], QueryProfile())


def execute_create_model(database, statement: CreateModel, sql_text=None):
    collector = database._begin_query(
        sql_text or "<CreateModel>", parallel=False
    )
    try:
        result = _run_create_model(database, statement)
    except Exception as error:
        database.metrics.counter("training.failures").increment()
        database._finish_query(collector, error=error)
        raise
    database._finish_query(collector, result=result)
    return result


def _run_create_model(database, statement: CreateModel):
    validate_layers(statement.layers)
    spec = TrainingSpec.from_options(statement.options)
    with database.catalog_lock:
        version = _resolve_version(database.catalog, statement)
    database.metrics.counter("training.runs").increment()

    # 1. Source query through the regular pipeline (unlocked).
    source = database._execute_select(statement.query, parallel=False)
    features, labels = _training_data(source)

    # 2. Train (unlocked — serving traffic proceeds meanwhile).
    model = _build_model(statement, features.shape[1], spec.seed)
    arena = None
    try:
        from repro.core.modeljoin.inference import BufferArena

        arena = BufferArena(max(spec.batch_size, 1))
    except ImportError:  # bare repro.db usage; operator self-provisions
        pass
    operator = TrainOperator(
        model,
        spec,
        arena=arena,
        tracer=database.tracer,
        metrics=database.metrics,
        retries=database.task_retries,
    )
    losses = operator.run(features, labels)

    # 3. Publish atomically (brief lock).
    table_name = version_table_name(statement.model_name, version)
    with database.catalog_lock:
        # A concurrent CREATE MODEL may have claimed the version while
        # we trained: re-validate before touching the catalog.
        versions = database.catalog.model_versions.get(
            statement.model_name.lower(), {}
        )
        if version in versions:
            raise TrainingError(
                f"model {statement.model_name!r} version {version} was "
                "created concurrently; retry with a fresh version"
            )
        record = _publish(
            database, statement, spec, model, table_name, version, losses
        )
    return _summary_result(record, operator.total_batches)


def _publish(
    database,
    statement: CreateModel,
    spec: TrainingSpec,
    model: Sequential,
    table_name: str,
    version: int,
    losses: list[float],
) -> ModelVersionRecord:
    """Weight table + catalog record, all-or-nothing (lock held)."""
    try:
        from repro.core.ml_to_sql.loader import load_model_table
        from repro.core.registry import model_metadata
    except ImportError as error:  # pragma: no cover - core ships with db
        raise TrainingError(
            "CREATE MODEL requires the repro.core runtime "
            "(connect through repro.connect)"
        ) from error
    load_model_table(database, table_name, model)
    try:
        metadata = model_metadata(
            statement.model_name.lower(), table_name, model
        )
        record = ModelVersionRecord(
            model_name=statement.model_name.lower(),
            version=version,
            metadata=metadata,
            created_at=time.time(),
            epochs=spec.epochs,
            batch_size=spec.batch_size,
            learning_rate=spec.learning_rate,
            seed=spec.seed,
            loss_name=spec.loss,
            final_loss=losses[-1],
            weight_checksum=weight_checksum(model),
            source_fingerprint=source_fingerprint(statement),
            arch=describe_arch(statement),
        )
        database.catalog.register_model_version(
            record, make_current=not statement.retrain
        )
    except BaseException:
        # Never leave a weight table without its catalog entry: drop
        # what we just wrote, then surface the original failure.
        database.catalog.drop_table(table_name, if_exists=True)
        raise
    return record


def execute_alter_model(database, statement: AlterModel, sql_text=None):
    from repro.db.engine import Result

    collector = database._begin_query(
        sql_text or "<AlterModel>", parallel=False
    )
    try:
        with database.catalog_lock:
            database.catalog.set_current_version(
                statement.model_name, statement.version
            )
        database.metrics.counter("training.swaps").increment()
    except Exception as error:
        database._finish_query(collector, error=error)
        raise
    result = Result.empty()
    database._finish_query(collector, result=result)
    return result


def render_create_model_explain(database, statement: CreateModel):
    """EXPLAIN lines for a CREATE MODEL: the training plan on top of
    the source query's regular plan (incl. ``== Compiled Code ==``)."""
    validate_layers(statement.layers)
    spec = TrainingSpec.from_options(statement.options)
    with database.catalog_lock:
        version = _resolve_version(database.catalog, statement)
    mode = "retrain" if statement.retrain else "train"
    lines = [
        f"CreateModel(name={statement.model_name.lower()}, "
        f"version={version}, mode={mode})",
        f"  TrainOperator(arch={describe_arch(statement)}, "
        f"{spec.describe()})",
        "  Source:",
    ]
    context = ExecutionContext(vector_size=database.vector_size)
    plan_text = database._planner().explain(statement.query, context)
    lines.extend(
        "    " + line for line in plan_text.splitlines()
    )
    return lines
