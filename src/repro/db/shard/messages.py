"""Picklable wire messages between the coordinator and shard workers.

Every request travels as ``(request_id, message)`` over a duplex
:class:`multiprocessing.connection.Connection`; the worker echoes the
id back as ``(request_id, response)``.  Ids let the coordinator discard
stale responses after an abandoned gather (cancellation mid-query) so
the pipe re-synchronizes without restarting the process.

All payloads are plain dataclasses over picklable engine types:
schemas, AST statements, :class:`~repro.db.catalog.ModelMetadata` and
NumPy arrays all pickle natively (see ``tests/db/test_pickle_fragments``
for the property tests backing this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.catalog import ModelMetadata
from repro.db.schema import Schema
from repro.db.sql.ast import SelectStatement


@dataclass(frozen=True)
class WorkerConfig:
    """Spawn-time configuration for one shard worker process."""

    shard_id: int
    shard_count: int
    #: worker-local thread parallelism (``shard_workers`` knob)
    parallelism: int = 1
    vector_size: int = 1024
    task_retries: int = 2
    #: storage directory for this shard, None for in-memory shards
    path: str | None = None
    #: picklable planner knobs forwarded verbatim (PlannerOptions is a
    #: plain dataclass of bools)
    planner_options: object | None = None


@dataclass(frozen=True)
class CreateTableRequest:
    """Create the shard-local slice of a sharded table."""

    name: str
    #: (column name, SQL type name) pairs — Schema re-built worker-side
    columns: tuple[tuple[str, str], ...]
    partition_key: str | None = None
    #: worker-local partition count (enables intra-shard parallelism)
    num_partitions: int = 1
    sort_key: tuple[str, ...] = ()
    replace: bool = False


@dataclass(frozen=True)
class DropTableRequest:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class AppendRequest:
    """Bulk-append routed rows to a shard-local table."""

    name: str
    column_names: tuple[str, ...]
    arrays: tuple[np.ndarray, ...]


@dataclass(frozen=True)
class ReplicaLoadRequest:
    """Broadcast (or refresh) a full copy of a replicated table.

    The coordinator ships small unpartitioned tables — model tables,
    dimension tables — on demand before the first sharded query that
    reads them, keyed by the coordinator table's ``(uid, version)`` so
    an unchanged replica is never re-sent.
    """

    name: str
    columns: tuple[tuple[str, str], ...]
    column_names: tuple[str, ...]
    arrays: tuple[np.ndarray, ...]
    sort_key: tuple[str, ...] = ()


@dataclass(frozen=True)
class RegisterModelRequest:
    metadata: ModelMetadata
    replace: bool = True


@dataclass(frozen=True)
class ExecuteRequest:
    """Run one plan fragment (an AST SELECT) on the shard's local data."""

    statement: SelectStatement
    #: run partition-parallel inside the worker (the coordinator only
    #: sets this when the fragment is partition-compatible)
    parallel: bool = False
    #: remaining query deadline, forwarded from the coordinator token
    timeout_seconds: float | None = None


@dataclass(frozen=True)
class StatsRequest:
    """Snapshot worker-side catalog sizes and scan metrics."""


@dataclass(frozen=True)
class CheckpointRequest:
    """Persist the shard-local storage (no-op for in-memory shards)."""


@dataclass(frozen=True)
class ShutdownRequest:
    """Close the worker database (checkpointing) and exit the process."""


@dataclass(frozen=True)
class OkResponse:
    payload: object = None


@dataclass(frozen=True)
class ResultResponse:
    """A fragment's materialized result plus its profile counters."""

    schema: Schema
    #: one consolidated column array per schema column
    arrays: tuple[np.ndarray, ...]
    row_count: int
    #: the fragment's profile counters (scan.rows_read, morsels, ...)
    counters: dict = field(default_factory=dict)
    wall_seconds: float = 0.0


@dataclass(frozen=True)
class ErrorResponse:
    """A worker-side failure, re-raised by type at the coordinator.

    ``error_class`` names a type in :mod:`repro.errors`; unknown names
    degrade to :class:`~repro.errors.ShardError` (same convention as the
    serving wire protocol).
    """

    error_class: str
    message: str


def raise_error(response: ErrorResponse) -> None:
    """Re-raise a worker error with its original taxonomy type."""
    import repro.errors as _errors

    error_type = getattr(_errors, response.error_class, _errors.ShardError)
    if not (
        isinstance(error_type, type)
        and issubclass(error_type, BaseException)
    ):
        error_type = _errors.ShardError
    raise error_type(response.message)
