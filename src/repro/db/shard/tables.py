"""Coordinator-side stand-in for a table whose rows live on shards.

A :class:`ShardedTable` sits in the coordinator catalog under the
table's name so binding, EXPLAIN and ``system.tables`` keep working
unchanged, but it stores no rows locally: appends hash-route whole
batches to the owning shard processes (the same ``abs(hash) % n`` rule
:class:`~repro.db.table.Table` uses for local partitions, so a table
sharded N ways places every row exactly where an N-partition local
table would), and scanning it at the coordinator is a planning bug that
raises instead of silently returning zero rows.
"""

from __future__ import annotations

import numpy as np

from repro.db.schema import Schema
from repro.db.table import Table
from repro.db.vector import VectorBatch
from repro.errors import ShardError


class ShardedTable(Table):
    """A catalog stub routing appends to the shard that owns each row."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        partition_key: str,
        coordinator,
        sort_key: tuple[str, ...] = (),
    ):
        # One empty local partition: enough for the binder/lowering to
        # build (never-executed) coordinator plans and for EXPLAIN.
        super().__init__(
            name,
            schema,
            num_partitions=1,
            partition_key=partition_key,
            sort_key=sort_key,
        )
        self._coordinator = coordinator
        self.shard_count = coordinator.shard_count
        #: routed-row accounting, kept coordinator-side so row_count /
        #: cost estimates never need a cross-process round trip
        self.rows_per_shard = [0] * self.shard_count

    @property
    def row_count(self) -> int:  # type: ignore[override]
        return sum(self.rows_per_shard)

    def append_batch(self, batch: VectorBatch) -> None:
        if len(batch) == 0:
            return
        self.version += 1
        keys = batch.column(self.partition_key)
        if keys.dtype == object:
            hashes = np.fromiter(
                (hash(key) for key in keys),
                dtype=np.int64,
                count=len(keys),
            )
        else:
            hashes = keys.astype(np.int64, copy=False)
        assignment = np.abs(hashes) % self.shard_count
        for shard_id in range(self.shard_count):
            mask = assignment == shard_id
            if not mask.any():
                continue
            routed = batch.filter(mask)
            self._coordinator.append_to_shard(shard_id, self.name, routed)
            self.rows_per_shard[shard_id] += len(routed)

    def scan(self, ranges=None, vector_size=1024):  # type: ignore[override]
        raise ShardError(
            f"table {self.name!r} is sharded across "
            f"{self.shard_count} processes and cannot be scanned at "
            "the coordinator; this query should have been dispatched "
            "through the shard coordinator"
        )

    def scan_partition(self, partition_index, ranges=None, vector_size=1024):
        raise ShardError(
            f"table {self.name!r} is sharded and has no "
            "coordinator-local partitions to scan"
        )

    def __getstate__(self) -> dict:
        # The stub is never shipped to workers (fragments reference
        # tables by name), but snapshots/pickles of the catalog must
        # not drag a process handle along.
        state = self.__dict__.copy()
        state["_coordinator"] = None
        return state
