"""Shard worker process: an attached engine behind a message pipe.

Each shard is a full single-process :class:`~repro.db.engine.Database`
(own catalog, own BufferPool, own worker threads, own storage
directory) created through :func:`repro.core.attach.connect`, so every
engine feature — compiled kernels, the model cache, the planner's
variant selection — works shard-locally without special cases.  The
worker answers requests from :mod:`repro.db.shard.messages` in a
strictly ordered loop; ordering per pipe is the consistency model
(a CREATE always precedes the APPENDs that follow it on the same pipe).
"""

from __future__ import annotations

from repro.db.schema import Column, Schema
from repro.db.shard.messages import (
    AppendRequest,
    CheckpointRequest,
    CreateTableRequest,
    DropTableRequest,
    ErrorResponse,
    ExecuteRequest,
    OkResponse,
    RegisterModelRequest,
    ReplicaLoadRequest,
    ResultResponse,
    ShutdownRequest,
    StatsRequest,
    WorkerConfig,
)
from repro.db.types import parse_type_name
from repro.db.vector import VectorBatch, concat_batches
from repro.errors import ReproError


def _schema_from_columns(columns) -> Schema:
    return Schema(
        tuple(
            Column(name, parse_type_name(type_name))
            for name, type_name in columns
        )
    )


class ShardWorker:
    """Request dispatch for one shard process (testable in-process)."""

    def __init__(self, config: WorkerConfig):
        from repro.core.attach import connect

        self.config = config
        self.database = connect(
            parallelism=max(config.parallelism, 1),
            vector_size=config.vector_size,
            planner_options=config.planner_options,
            task_retries=config.task_retries,
            path=config.path,
            query_log_capacity=64,
        )
        self.database.metrics.gauge("shard.id").set(config.shard_id)

    # ------------------------------------------------------------------
    # request handlers
    # ------------------------------------------------------------------
    def handle(self, message):
        handler = self._HANDLERS.get(type(message))
        if handler is None:
            return ErrorResponse(
                "ShardError", f"unknown request {type(message).__name__}"
            )
        try:
            return handler(self, message)
        except ReproError as error:
            return ErrorResponse(type(error).__name__, str(error))
        except Exception as error:  # engine bug — keep the worker alive
            return ErrorResponse(
                "ShardError", f"{type(error).__name__}: {error}"
            )

    def _create_table(self, message: CreateTableRequest):
        self.database.create_table(
            message.name,
            _schema_from_columns(message.columns),
            num_partitions=message.num_partitions,
            partition_key=message.partition_key,
            sort_key=message.sort_key,
            replace=message.replace,
        )
        return OkResponse()

    def _drop_table(self, message: DropTableRequest):
        with self.database.catalog_lock:
            self.database.catalog.drop_table(
                message.name, if_exists=message.if_exists
            )
        return OkResponse()

    def _append(self, message: AppendRequest):
        table = self.database.table(message.name)
        batch = VectorBatch.from_dict(
            table.schema, dict(zip(message.column_names, message.arrays))
        )
        table.append_batch(batch)
        return OkResponse(payload=len(batch))

    def _load_replica(self, message: ReplicaLoadRequest):
        # Full refresh: the replica's contents are authoritative at the
        # coordinator, so a version bump replaces the local copy.
        table = self.database.create_table(
            message.name,
            _schema_from_columns(message.columns),
            sort_key=message.sort_key,
            replace=True,
        )
        if message.arrays:
            table.append_batch(
                VectorBatch.from_dict(
                    table.schema,
                    dict(zip(message.column_names, message.arrays)),
                )
            )
        return OkResponse(payload=table.row_count)

    def _register_model(self, message: RegisterModelRequest):
        self.database.register_model(
            message.metadata, replace=message.replace
        )
        return OkResponse()

    def _execute(self, message: ExecuteRequest):
        import time

        started = time.perf_counter()
        result = self.database.execute_statement(
            message.statement,
            parallel=message.parallel,
            timeout_seconds=message.timeout_seconds,
        )
        counters = (
            result.profile.counters.snapshot()
            if result.profile is not None
            else {}
        )
        # Fold the fragment's scan counters into the worker's lifetime
        # metrics so StatsRequest (-> system.shards) sees cumulative
        # per-shard scan.* values across queries.
        for name, value in counters.items():
            if "worker-" in name:
                continue
            self.database.metrics.counter(name).increment(value)
        if result.batches:
            merged = concat_batches(result.schema, result.batches)
            arrays = tuple(merged.arrays)
        else:
            arrays = ()
        return ResultResponse(
            schema=result.schema,
            arrays=arrays,
            row_count=result.row_count,
            counters=counters,
            wall_seconds=time.perf_counter() - started,
        )

    def _stats(self, _message: StatsRequest):
        database = self.database
        flat: dict[str, float] = {}
        for name, rendered in database.metrics.snapshot().items():
            if rendered.get("type") in ("counter", "gauge"):
                flat[name] = rendered["value"]
        tables = {
            table.name: table.row_count
            for table in database.catalog.tables.values()
        }
        return OkResponse(
            payload={
                "metrics": flat,
                "tables": tables,
                "rows": sum(tables.values()),
            }
        )

    def _checkpoint(self, _message: CheckpointRequest):
        if self.database.storage is not None:
            self.database.checkpoint()
        return OkResponse()

    _HANDLERS = {
        CreateTableRequest: _create_table,
        DropTableRequest: _drop_table,
        AppendRequest: _append,
        ReplicaLoadRequest: _load_replica,
        RegisterModelRequest: _register_model,
        ExecuteRequest: _execute,
        StatsRequest: _stats,
        CheckpointRequest: _checkpoint,
    }


def shard_worker_main(connection, config: WorkerConfig) -> None:
    """Process entry point: serve requests until shutdown or pipe EOF."""
    worker = ShardWorker(config)
    closed = False
    try:
        while True:
            try:
                request_id, message = connection.recv()
            except (EOFError, OSError):
                # Coordinator died or closed the pipe: exit cleanly,
                # checkpointing persistent state.
                break
            if isinstance(message, ShutdownRequest):
                try:
                    worker.database.close(drain_seconds=1.0)
                finally:
                    closed = True
                    try:
                        connection.send((request_id, OkResponse()))
                    except (BrokenPipeError, OSError):
                        pass
                return
            response = worker.handle(message)
            try:
                connection.send((request_id, response))
            except (BrokenPipeError, OSError):
                break
    finally:
        if not closed:
            try:
                worker.database.close(drain_seconds=1.0)
            except Exception:
                pass
