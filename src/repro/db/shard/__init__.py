"""Multiprocess sharded execution (shared-nothing shards).

The coordinator engine plans, routes and merges; each shard is a full
attached engine in its own process owning a hash partition of every
sharded table.  See docs/SHARDING.md for the architecture tour.
"""

from repro.db.shard.coordinator import ShardCoordinator, ShardHandle
from repro.db.shard.fragments import (
    FragmentPlan,
    build_merge_plan,
    plan_select_fragments,
)
from repro.db.shard.messages import WorkerConfig
from repro.db.shard.tables import ShardedTable
from repro.db.shard.worker import ShardWorker, shard_worker_main

__all__ = [
    "FragmentPlan",
    "ShardCoordinator",
    "ShardHandle",
    "ShardWorker",
    "ShardedTable",
    "WorkerConfig",
    "build_merge_plan",
    "plan_select_fragments",
    "shard_worker_main",
]
