"""The shard coordinator: spawn, route, gather, merge, drain.

Owned by a :class:`~repro.db.engine.Database` opened with ``shards=N``.
The coordinator spawns N worker *processes* (start method ``spawn`` —
safe next to the engine's threads), each running its own attached
engine over a private slice of every sharded table.  The coordinating
engine keeps acting as planner and merger:

- DDL/DML broadcast: CREATE/DROP mirror to every shard; appends to a
  sharded table hash-route per row (see
  :class:`~repro.db.shard.tables.ShardedTable`).
- Replicated tables (no partition key) stay coordinator-local and sync
  to shards lazily before the first fragment that reads them, keyed by
  ``(uid, version)`` — the ModelJoin's model-table broadcast, so every
  shard builds the model from its local copy and infers locally.
- SELECTs over sharded tables are fragment-planned
  (:mod:`repro.db.shard.fragments`), dispatched, gathered through a
  :class:`~repro.db.plan.physical.GatherExchange` and merged locally.

Failure semantics: a dead shard process surfaces as
:class:`~repro.errors.ShardCrashError` at the next pipe interaction
(``Connection`` EOF or the process sentinel firing mid-gather) — never
a hang.  The coordinator then stays up but degraded: later sharded
queries fail fast with the same type, and ``close(drain_seconds=)``
still drains, shuts down the survivors and reaps the corpse.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from multiprocessing import connection as mp_connection
from pathlib import Path

from repro.db.plan.physical import (
    GatherExchange,
    choose_worker_parallelism,
    render_fragment_tree,
)
from repro.db.shard.fragments import (
    FragmentPlan,
    build_merge_plan,
    plan_select_fragments,
)
from repro.db.shard.messages import (
    AppendRequest,
    CheckpointRequest,
    CreateTableRequest,
    DropTableRequest,
    ErrorResponse,
    ExecuteRequest,
    OkResponse,
    RegisterModelRequest,
    ReplicaLoadRequest,
    ResultResponse,
    ShutdownRequest,
    StatsRequest,
    WorkerConfig,
    raise_error,
)
from repro.db.shard.tables import ShardedTable
from repro.db.vector import VectorBatch, concat_batches
from repro.errors import CatalogError, ShardCrashError, ShardError

MANIFEST_NAME = "shards.json"


class ShardHandle:
    """One worker process and its request pipe."""

    def __init__(self, shard_id: int, process, conn):
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.alive = True
        #: last stats payload, kept so system.shards can render a dead
        #: shard's final numbers
        self.last_stats: dict = {}

    def mark_dead(self) -> None:
        self.alive = False


class ShardCoordinator:
    """Shared-nothing shard fleet behind one coordinating engine."""

    def __init__(
        self,
        database,
        shard_count: int,
        shard_workers: int = 1,
        path: str | None = None,
    ):
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")
        self._database = database
        self.shard_count = shard_count
        self.shard_workers = shard_workers
        self.root = Path(path) / "shards" if path is not None else None
        self.handles: list[ShardHandle] = []
        #: serializes pipe traffic: one sharded statement (or broadcast)
        #: in flight at a time; intra-query parallelism comes from the
        #: shard processes themselves
        self._lock = threading.Lock()
        self._next_request_id = 0
        #: request ids abandoned mid-gather (cancellation/crash); their
        #: late responses are drained and discarded before the next send
        self._stale_ids: set[int] = set()
        #: per shard: replica/model versions already shipped
        self._replica_versions: list[dict] = [
            {} for _ in range(shard_count)
        ]
        self._model_versions: list[dict] = [{} for _ in range(shard_count)]
        self._closed = False
        self.queries_dispatched = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        manifest = self._load_manifest()
        context = multiprocessing.get_context("spawn")
        options = self._database.planner_options
        for shard_id in range(self.shard_count):
            shard_path = None
            if self.root is not None:
                shard_path = str(self.root / f"shard-{shard_id}")
            config = WorkerConfig(
                shard_id=shard_id,
                shard_count=self.shard_count,
                parallelism=self.shard_workers,
                vector_size=self._database.vector_size,
                task_retries=self._database.task_retries,
                path=shard_path,
                planner_options=options,
            )
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_entry,
                args=(child_conn, config),
                name=f"repro-shard-{shard_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.handles.append(
                ShardHandle(shard_id, process, parent_conn)
            )
        if manifest is not None:
            self._restore_from_manifest(manifest)

    def _load_manifest(self) -> dict | None:
        if self.root is None:
            return None
        path = self.root / MANIFEST_NAME
        if not path.exists():
            self.root.mkdir(parents=True, exist_ok=True)
            return None
        manifest = json.loads(path.read_text())
        if manifest.get("shard_count") != self.shard_count:
            raise CatalogError(
                f"database was sharded {manifest.get('shard_count')} "
                f"ways but was reopened with shards={self.shard_count}; "
                "shard counts must match (resharding is not supported)"
            )
        return manifest

    def _restore_from_manifest(self, manifest: dict) -> None:
        from repro.db.schema import Column, Schema
        from repro.db.table import ensure_uid_floor
        from repro.db.types import parse_type_name

        for entry in manifest.get("tables", []):
            schema = Schema(
                tuple(
                    Column(name, parse_type_name(type_name))
                    for name, type_name in entry["columns"]
                )
            )
            table = ShardedTable(
                entry["name"],
                schema,
                partition_key=entry["partition_key"],
                coordinator=self,
                sort_key=tuple(entry.get("sort_key", ())),
            )
            table.rows_per_shard = list(entry["rows_per_shard"])
            table.uid = entry["uid"]
            table.version = entry["version"]
            ensure_uid_floor(entry["uid"] + 1)
            # Replace the empty stub the coordinator's own storage
            # restored for this name (sharded rows live on the shards).
            self._database.catalog.create_table(table, replace=True)

    def save_manifest(self) -> None:
        if self.root is None:
            return
        tables = []
        for table in self._database.catalog.tables.values():
            if not isinstance(table, ShardedTable):
                continue
            tables.append(
                {
                    "name": table.name,
                    "columns": [
                        [column.name, column.sql_type.value]
                        for column in table.schema
                    ],
                    "partition_key": table.partition_key,
                    "sort_key": list(table.sort_key),
                    "rows_per_shard": list(table.rows_per_shard),
                    "uid": table.uid,
                    "version": table.version,
                }
            )
        manifest = {
            "shard_count": self.shard_count,
            "shard_workers": self.shard_workers,
            "tables": tables,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / MANIFEST_NAME
        temporary = path.with_suffix(".tmp")
        temporary.write_text(json.dumps(manifest, indent=2))
        os.replace(temporary, path)

    def checkpoint(self) -> None:
        """Checkpoint every *surviving* shard and save the manifest.

        Best-effort by design: a dead shard cannot be checkpointed (its
        own storage is still consistent as of its last checkpoint), and
        durability of the survivors must not hinge on it — so crashes
        are recorded, not raised, and the manifest is always saved.
        """
        with self._lock:
            self._drain_stale_locked()
            pending = {}
            for handle in self.handles:
                if not handle.alive:
                    continue
                try:
                    pending[handle.shard_id] = self._send_locked(
                        handle, CheckpointRequest()
                    )
                except ShardCrashError:
                    continue
            try:
                self._gather_locked(pending)
            except ShardCrashError:
                pass
        self.save_manifest()

    def close(self, drain_seconds: float = 5.0) -> None:
        """Shut the fleet down within (roughly) *drain_seconds*.

        Acquires the dispatch lock with a bounded wait (in-flight
        queries were already cancelled by the engine's drain), sends
        every live shard a shutdown — workers checkpoint and exit —
        then escalates terminate()/kill() on stragglers so close never
        hangs on a wedged shard.
        """
        if self._closed:
            return
        self._closed = True
        deadline = time.perf_counter() + max(drain_seconds, 0.1)
        locked = self._lock.acquire(timeout=max(drain_seconds, 0.1))
        try:
            for handle in self.handles:
                if not handle.alive or not handle.process.is_alive():
                    continue
                try:
                    handle.conn.send(
                        (self._allocate_id(), ShutdownRequest())
                    )
                except (BrokenPipeError, OSError):
                    handle.mark_dead()
            for handle in self.handles:
                # Keep draining the pipe while waiting: a worker can be
                # blocked mid-send on a large abandoned response (pipe
                # buffer full) and will only reach the shutdown request
                # once its response is consumed.
                while (
                    handle.process.is_alive()
                    and time.perf_counter() < deadline
                ):
                    try:
                        if handle.conn.poll(0.02):
                            handle.conn.recv()
                            continue
                    except (EOFError, OSError):
                        break
                    handle.process.join(timeout=0.02)
                handle.process.join(
                    timeout=max(deadline - time.perf_counter(), 0.05)
                )
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
                if handle.process.is_alive():  # pragma: no cover
                    handle.process.kill()
                    handle.process.join(timeout=1.0)
                handle.mark_dead()
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
        finally:
            if locked:
                self._lock.release()

    def kill_shard(self, shard_id: int) -> None:
        """Chaos hook: SIGKILL one shard process (no cleanup)."""
        handle = self.handles[shard_id]
        if handle.process.pid is not None and handle.process.is_alive():
            os.kill(handle.process.pid, signal.SIGKILL)
            handle.process.join(timeout=5.0)

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _allocate_id(self) -> int:
        self._next_request_id += 1
        return self._next_request_id

    def _live_handles(self) -> list[ShardHandle]:
        if self._closed:
            raise ShardError("the shard coordinator is closed")
        dead = [h.shard_id for h in self.handles if not h.alive]
        if dead:
            raise ShardCrashError(
                f"shard(s) {dead} are down; the coordinator is degraded "
                "(restart the database to recover)"
            )
        return self.handles

    def _drain_stale_locked(self) -> None:
        if not self._stale_ids:
            return
        for handle in self.handles:
            if not handle.alive:
                continue
            try:
                while handle.conn.poll(0):
                    request_id, _payload = handle.conn.recv()
                    self._stale_ids.discard(request_id)
            except (EOFError, OSError):
                handle.mark_dead()

    def _send_locked(self, handle: ShardHandle, message) -> int:
        request_id = self._allocate_id()
        try:
            handle.conn.send((request_id, message))
        except (BrokenPipeError, OSError) as error:
            handle.mark_dead()
            raise ShardCrashError(
                f"shard {handle.shard_id} is unreachable "
                f"({type(error).__name__}); its process likely died"
            ) from error
        return request_id

    def _gather_locked(
        self, pending: dict[int, int], cancellation=None
    ) -> dict[int, object]:
        """Collect one response per pending shard (id -> request id).

        Polls pipes *and* process sentinels so a SIGKILLed shard is
        detected even when it never wrote a byte; checks the
        cancellation token between polls so a cancelled coordinator
        abandons the gather (responses become stale) instead of
        blocking on slow shards.
        """
        results: dict[int, object] = {}
        errors: list[ErrorResponse] = []
        try:
            while pending:
                if cancellation is not None:
                    cancellation.check()
                watch = {}
                for shard_id in pending:
                    handle = self.handles[shard_id]
                    watch[handle.conn] = handle
                    watch[handle.process.sentinel] = handle
                ready = mp_connection.wait(list(watch), timeout=0.05)
                for waitable in ready:
                    handle = watch[waitable]
                    if handle.shard_id not in pending:
                        continue
                    if not handle.conn.poll(0):
                        if not handle.process.is_alive():
                            handle.mark_dead()
                            raise ShardCrashError(
                                f"shard {handle.shard_id} process died "
                                "mid-query (pid "
                                f"{handle.process.pid}, exit code "
                                f"{handle.process.exitcode})"
                            )
                        continue
                    try:
                        request_id, payload = handle.conn.recv()
                    except (EOFError, OSError) as error:
                        handle.mark_dead()
                        raise ShardCrashError(
                            f"shard {handle.shard_id} closed its pipe "
                            "mid-query; its process died"
                        ) from error
                    if request_id in self._stale_ids:
                        self._stale_ids.discard(request_id)
                        continue
                    if request_id != pending[handle.shard_id]:
                        raise ShardError(
                            f"shard {handle.shard_id} answered request "
                            f"{request_id}, expected "
                            f"{pending[handle.shard_id]} "
                            "(protocol desynchronized)"
                        )
                    del pending[handle.shard_id]
                    if isinstance(payload, ErrorResponse):
                        errors.append(payload)
                    else:
                        results[handle.shard_id] = payload
        except BaseException:
            # Cancellation, crash or protocol error: whatever is still
            # outstanding will arrive later — mark stale for the next
            # dispatch to drain.
            self._stale_ids.update(pending.values())
            raise
        if errors:
            raise_error(errors[0])
        return results

    def _broadcast_locked(self, message, cancellation=None) -> dict:
        pending = {
            handle.shard_id: self._send_locked(handle, message)
            for handle in self._live_handles()
        }
        return self._gather_locked(pending, cancellation)

    def broadcast(self, message) -> dict:
        with self._lock:
            self._drain_stale_locked()
            return self._broadcast_locked(message)

    # ------------------------------------------------------------------
    # DDL / DML mirroring
    # ------------------------------------------------------------------
    def create_sharded_table(
        self,
        name: str,
        schema,
        partition_key: str,
        sort_key: tuple[str, ...] = (),
        replace: bool = False,
    ) -> ShardedTable:
        """Create the coordinator stub and the shard-local slices."""
        columns = tuple(
            (column.name, column.sql_type.value) for column in schema
        )
        self.broadcast(
            CreateTableRequest(
                name=name,
                columns=columns,
                partition_key=partition_key,
                num_partitions=self.shard_workers,
                sort_key=sort_key,
                replace=replace,
            )
        )
        table = ShardedTable(
            name,
            schema,
            partition_key=partition_key,
            coordinator=self,
            sort_key=sort_key,
        )
        self._database.catalog.create_table(table, replace=replace)
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        self.broadcast(DropTableRequest(name=name, if_exists=True))
        for versions in self._replica_versions:
            versions.pop(name.lower(), None)

    def append_to_shard(
        self, shard_id: int, name: str, batch: VectorBatch
    ) -> None:
        message = AppendRequest(
            name=name,
            column_names=tuple(batch.schema.names),
            arrays=tuple(batch.arrays),
        )
        with self._lock:
            self._drain_stale_locked()
            handle = self._live_handles()[shard_id]
            request_id = self._send_locked(handle, message)
            self._gather_locked({shard_id: request_id})

    # ------------------------------------------------------------------
    # replica / model sync (the ModelJoin broadcast)
    # ------------------------------------------------------------------
    def _sync_fragment_inputs_locked(
        self, fragment: FragmentPlan, catalog
    ) -> None:
        table_names = list(fragment.replicated_tables)
        model_requests: dict[str, object] = {}
        for model_name in fragment.model_names:
            metadata = catalog.models.get(model_name.lower())
            if metadata is None:
                continue  # binder will raise the canonical error
            table_names.append(metadata.table_name)
            for shard_id in range(self.shard_count):
                if (
                    self._model_versions[shard_id].get(model_name.lower())
                    != metadata
                ):
                    model_requests[model_name.lower()] = metadata
                    break
        for name in dict.fromkeys(table_names):
            key = name.lower()
            if key not in catalog.tables:
                continue
            table = catalog.tables[key]
            if isinstance(table, ShardedTable):
                continue
            stamp = (table.uid, table.version)
            stale = [
                shard_id
                for shard_id in range(self.shard_count)
                if self._replica_versions[shard_id].get(key) != stamp
            ]
            if not stale:
                continue
            batches = list(table.scan())
            if batches:
                merged = concat_batches(table.schema, batches)
                arrays = tuple(merged.arrays)
            else:
                arrays = ()
            message = ReplicaLoadRequest(
                name=table.name,
                columns=tuple(
                    (column.name, column.sql_type.value)
                    for column in table.schema
                ),
                column_names=tuple(table.schema.names),
                arrays=arrays,
                sort_key=table.sort_key,
            )
            pending = {}
            for shard_id in stale:
                handle = self.handles[shard_id]
                pending[shard_id] = self._send_locked(handle, message)
            self._gather_locked(pending)
            for shard_id in stale:
                self._replica_versions[shard_id][key] = stamp
            self._database.metrics.counter(
                "shard.replica_broadcasts"
            ).increment(len(stale))
        for key, metadata in model_requests.items():
            self._broadcast_locked(
                RegisterModelRequest(metadata=metadata, replace=True)
            )
            for shard_id in range(self.shard_count):
                self._model_versions[shard_id][key] = metadata

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def plan_fragments(self, statement, catalog=None) -> FragmentPlan | None:
        return plan_select_fragments(
            statement, catalog or self._database.catalog
        )

    def execute_fragments(
        self, fragment: FragmentPlan, context, catalog
    ):
        """Dispatch the fragment, gather, merge; returns (schema, batches)."""
        cancellation = context.cancellation
        per_shard = fragment.estimated_rows // max(self.shard_count, 1)
        parallel = (
            fragment.parallel_safe
            and choose_worker_parallelism(per_shard, self.shard_workers) > 1
        )
        timeout = None
        if cancellation is not None:
            timeout = cancellation.remaining_seconds()
        request = ExecuteRequest(
            statement=fragment.shard_statement,
            parallel=parallel,
            timeout_seconds=timeout,
        )
        with self._lock:
            self._drain_stale_locked()
            self._sync_fragment_inputs_locked(fragment, catalog)
            pending = {
                handle.shard_id: self._send_locked(handle, request)
                for handle in self._live_handles()
            }
            responses = self._gather_locked(pending, cancellation)
        self.queries_dispatched += 1
        self._database.metrics.counter("shard.queries").increment()
        sources: list[list[VectorBatch]] = []
        schema = None
        for shard_id in range(self.shard_count):
            response: ResultResponse = responses[shard_id]
            schema = response.schema
            if response.arrays:
                sources.append(
                    [VectorBatch(response.schema, list(response.arrays))]
                )
            else:
                sources.append([])
            for name, value in response.counters.items():
                if "worker-" in name:
                    continue
                context.counters.increment(name, value)
                context.counters.increment(f"{name}.shard-{shard_id}", value)
        gather = GatherExchange(context, schema, sources)
        plan = build_merge_plan(context, fragment, gather)
        return plan.schema, list(plan.batches())

    def explain_fragments(self, fragment: FragmentPlan) -> str:
        return render_fragment_tree(
            fragment, self.shard_count, self.shard_workers
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def refresh_stats(self) -> None:
        """Pull fresh per-shard stats and mirror them into metrics."""
        live = [h for h in self.handles if h.alive and not self._closed]
        if not live:
            return
        try:
            with self._lock:
                self._drain_stale_locked()
                pending = {
                    handle.shard_id: self._send_locked(
                        handle, StatsRequest()
                    )
                    for handle in live
                    if handle.alive
                }
                responses = self._gather_locked(pending)
        except (ShardError, ShardCrashError):
            return  # dead shards keep their last snapshot
        metrics = self._database.metrics
        for shard_id, response in responses.items():
            payload: dict = response.payload
            self.handles[shard_id].last_stats = payload
            for name in (
                "scan.rows_read",
                "scan.bytes_read",
                "query.count",
            ):
                value = payload["metrics"].get(name)
                if value is not None:
                    metrics.gauge(f"shard.{shard_id}.{name}").set(value)

    def shard_rows(self) -> list[tuple]:
        """Rows for ``system.shards`` (one per shard, dead included)."""
        self.refresh_stats()
        rows = []
        for handle in self.handles:
            stats = handle.last_stats or {"metrics": {}, "rows": 0}
            metrics = stats.get("metrics", {})
            rows.append(
                (
                    handle.shard_id,
                    handle.process.pid or -1,
                    bool(handle.alive and handle.process.is_alive()),
                    int(stats.get("rows", 0)),
                    int(len(stats.get("tables", {}))),
                    int(metrics.get("query.count", 0)),
                    int(metrics.get("scan.rows_read", 0)),
                    int(metrics.get("scan.bytes_read", 0)),
                    int(metrics.get("scan.morsels", 0)),
                )
            )
        return rows


def _worker_entry(connection, config: WorkerConfig) -> None:
    from repro.db.shard.worker import shard_worker_main

    shard_worker_main(connection, config)
