"""Fragment planning: split one SELECT into shard fragments + a merge.

The coordinator ships the *shard statement* (a picklable AST
``SelectStatement``) to every shard, gathers the per-shard results
through a :class:`~repro.db.plan.physical.GatherExchange`, and finishes
the query with a coordinator-local merge pipeline described by the
:class:`FragmentPlan`.

Two merge strategies exist:

``concat``
    The shard results are already final rows: either the query has no
    aggregation, or every group is wholly owned by one shard because
    the GROUP BY keys include the sharded table's partition key.  The
    disjoint-groups path is the important one for bit-exactness — each
    group's rows fold in the same order as single-process execution, so
    even floating-point SUM/AVG match to the last bit.

``partial``
    General aggregation: every aggregate in the select list (and
    HAVING) is decomposed into shard-local partials (``AVG`` becomes
    ``SUM`` + ``COUNT``) that the coordinator re-aggregates with the
    standard :class:`~repro.db.operators.HashAggregate` and projects
    back to the original output expressions.  Merge order across
    shards is not the single-process fold order, so float results are
    exact only for exactly-representable values (see
    ``tests/db/test_partition_merge.py``).

ORDER BY / LIMIT / OFFSET / DISTINCT are always stripped from the shard
statement and re-applied at the coordinator (global operations).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.db.catalog import Catalog, is_system_table_name
from repro.db.expressions import BinaryOp, ColumnRef, Expression, FunctionCall
from repro.db.operators import (
    FilterOperator,
    HashAggregate,
    LimitOperator,
    ProjectOperator,
    SortOperator,
)
from repro.db.operators.aggregate import AggregateSpec
from repro.db.plan.logical import contains_aggregate, rebuild
from repro.db.shard.tables import ShardedTable
from repro.db.sql.ast import (
    FromItem,
    JoinRef,
    ModelJoinRef,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
)
from repro.db.sql.parser import is_aggregate_call
from repro.errors import PlanError, ShardError


@dataclass
class FragmentPlan:
    """One sharded SELECT: the shard fragment plus its merge recipe."""

    shard_statement: SelectStatement
    #: "concat" | "partial"
    merge: str
    #: the (single) sharded base table the fragment scans
    sharded_table: str
    #: replicated tables the fragment also reads (synced to shards
    #: before dispatch) and models it invokes
    replicated_tables: tuple[str, ...] = ()
    model_names: tuple[str, ...] = ()
    #: "partial" merge: group key aliases (__k0..), merge aggregates
    #: over the partial columns, and the final projection restoring the
    #: original output expressions/names
    group_names: tuple[str, ...] = ()
    merge_specs: tuple[AggregateSpec, ...] = ()
    final_exprs: tuple[Expression, ...] = ()
    final_names: tuple[str, ...] = ()
    #: HAVING rewritten over the merged columns (partial merge only)
    having: Expression | None = None
    #: global operations re-applied at the coordinator
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int = 0
    distinct: bool = False
    #: whether the fragment may run partition-parallel inside a worker
    parallel_safe: bool = True
    estimated_rows: int = 0
    notes: list[str] = field(default_factory=list)


def referenced_tables(from_items: tuple[FromItem, ...]) -> list[TableRef]:
    """All base-table references, recursively through joins/subqueries."""
    refs: list[TableRef] = []
    for item in from_items:
        if isinstance(item, TableRef):
            refs.append(item)
        elif isinstance(item, JoinRef):
            refs.extend(referenced_tables((item.left, item.right)))
        elif isinstance(item, ModelJoinRef):
            refs.extend(referenced_tables((item.left,)))
        elif isinstance(item, SubqueryRef):
            refs.extend(referenced_tables(item.query.from_items))
    return refs


def referenced_models(from_items: tuple[FromItem, ...]) -> list[str]:
    names: list[str] = []
    for item in from_items:
        if isinstance(item, ModelJoinRef):
            names.append(item.model_name)
            names.extend(referenced_models((item.left,)))
        elif isinstance(item, JoinRef):
            names.extend(referenced_models((item.left, item.right)))
        elif isinstance(item, SubqueryRef):
            names.extend(referenced_models(item.query.from_items))
    return names


def _subqueries(from_items: tuple[FromItem, ...]) -> list[SelectStatement]:
    queries: list[SelectStatement] = []
    for item in from_items:
        if isinstance(item, SubqueryRef):
            queries.append(item.query)
            queries.extend(_subqueries(item.query.from_items))
        elif isinstance(item, JoinRef):
            queries.extend(_subqueries((item.left, item.right)))
        elif isinstance(item, ModelJoinRef):
            queries.extend(_subqueries((item.left,)))
    return queries


def _tail(name: str) -> str:
    return name.rsplit(".", 1)[-1].lower()


def _qualifier(name: str) -> str | None:
    if "." in name:
        return name.split(".", 1)[0].lower()
    return None


def _statement_has_aggregates(statement: SelectStatement) -> bool:
    for item in statement.select_items:
        if isinstance(item.expression, Star):
            continue
        if contains_aggregate(item.expression):
            return True
    return bool(statement.group_by) or statement.having is not None


def _groups_disjoint_by_shard_key(
    statement: SelectStatement, partition_key: str, bindings: set[str]
) -> bool:
    """Whether every group lives wholly on one shard.

    True when some GROUP BY key is a bare reference to the sharded
    table's partition key (rows of one group share the partition key
    value, hence hash to the same shard).  Qualified references must
    name a binding of the sharded table — ``dim.k`` must not match a
    fact-table partition key that happens to share the name.
    """
    for expression in statement.group_by:
        if not isinstance(expression, ColumnRef):
            continue
        if _tail(expression.name) != partition_key.lower():
            continue
        qualifier = _qualifier(expression.name)
        if qualifier is None or qualifier in bindings:
            return True
    return False


def plan_select_fragments(
    statement: SelectStatement, catalog: Catalog
) -> FragmentPlan | None:
    """Plan sharded execution for *statement*, or None to run locally.

    Raises :class:`~repro.errors.ShardError` for statements that read
    sharded tables but cannot be distributed (two sharded tables,
    ``system.*`` mixed in, aggregating subqueries).
    """
    refs = referenced_tables(statement.from_items)
    sharded_refs: list[TableRef] = []
    replicated: list[str] = []
    system_refs: list[str] = []
    for ref in refs:
        if is_system_table_name(ref.table_name):
            system_refs.append(ref.table_name)
            continue
        if not catalog.has_table(ref.table_name):
            # Let the binder produce its canonical CatalogError.
            return None
        table = catalog.table(ref.table_name)
        if isinstance(table, ShardedTable):
            sharded_refs.append(ref)
        else:
            replicated.append(ref.table_name)
    if not sharded_refs:
        return None
    if system_refs:
        raise ShardError(
            "cannot combine sharded tables with system tables in one "
            f"query (system tables are coordinator-local): {system_refs}"
        )
    sharded_names = {ref.table_name.lower() for ref in sharded_refs}
    if len(sharded_names) > 1:
        raise ShardError(
            "queries joining two sharded tables need a repartition "
            f"exchange, which is not supported yet: {sorted(sharded_names)}"
        )
    for subquery in _subqueries(statement.from_items):
        if (
            _statement_has_aggregates(subquery)
            or subquery.distinct
            or subquery.limit is not None
            or subquery.order_by
        ):
            raise ShardError(
                "subqueries with aggregation, DISTINCT, ORDER BY or "
                "LIMIT over sharded tables are not supported; "
                "materialize the inner query first"
            )
    sharded_ref = sharded_refs[0]
    table = catalog.table(sharded_ref.table_name)
    bindings = {
        ref.binding_name.lower()
        for ref in sharded_refs
        if ref.table_name.lower() == sharded_ref.table_name.lower()
    }
    plan = FragmentPlan(
        shard_statement=statement,
        merge="concat",
        sharded_table=table.name,
        replicated_tables=tuple(dict.fromkeys(replicated)),
        model_names=tuple(
            dict.fromkeys(referenced_models(statement.from_items))
        ),
        order_by=statement.order_by,
        limit=statement.limit,
        offset=statement.offset,
        distinct=statement.distinct,
        estimated_rows=table.row_count,
    )
    core = dataclasses.replace(
        statement, order_by=(), limit=None, offset=0, distinct=False
    )
    has_aggregates = _statement_has_aggregates(statement)
    if not has_aggregates:
        plan.shard_statement = core
        plan.parallel_safe = True
        return plan
    if _groups_disjoint_by_shard_key(
        statement, table.partition_key, bindings
    ):
        # Each group is wholly owned by one shard: shard-local results
        # (HAVING included) are final; the merge is a plain concat and
        # stays bit-exact because per-group fold order is preserved.
        plan.shard_statement = core
        plan.parallel_safe = True
        plan.notes.append(
            f"groups disjoint by partition key {table.partition_key!r}"
        )
        return plan
    _decompose_aggregation(plan, core)
    return plan


def _decompose_aggregation(
    plan: FragmentPlan, statement: SelectStatement
) -> None:
    """Rewrite *statement* into shard partials + a coordinator merge."""
    if not statement.group_by:
        raise PlanError(
            "global aggregation (no GROUP BY) is not supported; "
            "add a constant group key"
        )
    group_names = [f"__k{i}" for i in range(len(statement.group_by))]
    partial_items: list[SelectItem] = []
    merge_specs: list[AggregateSpec] = []
    replacements: dict[FunctionCall, Expression] = {}

    def partial(function: str, argument, merge_function: str) -> ColumnRef:
        name = f"__p{len(partial_items)}"
        arguments = () if argument is None else (argument,)
        partial_items.append(
            SelectItem(FunctionCall(function, arguments), name)
        )
        merge_specs.append(
            AggregateSpec(merge_function, ColumnRef(name), name)
        )
        return ColumnRef(name)

    def rewrite(expression: Expression) -> Expression:
        for slot, group_expr in enumerate(statement.group_by):
            if _matches_group(expression, group_expr):
                return ColumnRef(group_names[slot])
        if is_aggregate_call(expression):
            cached = replacements.get(expression)
            if cached is not None:
                return cached
            argument = None
            if expression.arguments:
                if len(expression.arguments) != 1:
                    raise PlanError(
                        f"{expression.name} takes exactly one argument"
                    )
                argument = expression.arguments[0]
                if contains_aggregate(argument):
                    raise PlanError("nested aggregates are not allowed")
            function = expression.name.upper()
            if function == "AVG":
                # AVG is not mergeable; decompose into SUM/COUNT
                # partials and divide after the merge (division always
                # yields DOUBLE, matching AVG's output type).
                total = partial("SUM", argument, "SUM")
                count = partial("COUNT", argument, "SUM")
                replacement: Expression = BinaryOp("/", total, count)
            elif function in ("SUM", "COUNT"):
                replacement = partial(function, argument, "SUM")
            else:  # MIN / MAX merge with themselves
                replacement = partial(function, argument, function)
            replacements[expression] = replacement
            return replacement
        return rebuild(expression, rewrite)

    final_exprs: list[Expression] = []
    final_names: list[str] = []
    for item in statement.select_items:
        if isinstance(item.expression, Star):
            raise PlanError(
                "SELECT * cannot be combined with GROUP BY"
            )
        final_exprs.append(rewrite(item.expression))
        if item.alias:
            final_names.append(item.alias)
        elif isinstance(item.expression, ColumnRef):
            final_names.append(item.expression.name.rsplit(".", 1)[-1])
        else:
            final_names.append(f"col{len(final_names)}")
    having = None
    if statement.having is not None:
        having = rewrite(statement.having)
    plan.merge = "partial"
    plan.group_names = tuple(group_names)
    plan.merge_specs = tuple(merge_specs)
    plan.final_exprs = tuple(final_exprs)
    plan.final_names = tuple(final_names)
    plan.having = having
    # Partial aggregation is not partition-compatible inside a worker
    # (the same group may span worker-local partitions), so the
    # fragment runs one pipeline per shard process.
    plan.parallel_safe = False
    plan.shard_statement = dataclasses.replace(
        statement,
        select_items=tuple(
            SelectItem(group_expr, group_names[slot])
            for slot, group_expr in enumerate(statement.group_by)
        )
        + tuple(partial_items),
        having=None,
    )
    plan.notes.append(
        f"decomposed {len(merge_specs)} partial aggregate(s)"
    )


def _matches_group(expression: Expression, group_expr: Expression) -> bool:
    if expression == group_expr:
        return True
    # Qualification-insensitive column match: the binder resolves
    # ``k`` and ``t.k`` to the same column, so the AST-level rewrite
    # must treat them as the same group key.
    if isinstance(expression, ColumnRef) and isinstance(
        group_expr, ColumnRef
    ):
        return _tail(expression.name) == _tail(group_expr.name)
    return False


def build_merge_plan(context, fragment: FragmentPlan, source):
    """The coordinator merge pipeline above a GatherExchange *source*."""
    plan = source
    if fragment.merge == "partial":
        plan = HashAggregate(
            context,
            plan,
            [ColumnRef(name) for name in fragment.group_names],
            list(fragment.group_names),
            list(fragment.merge_specs),
        )
        if fragment.having is not None:
            plan = FilterOperator(context, plan, fragment.having)
        plan = ProjectOperator(
            context,
            plan,
            list(fragment.final_exprs),
            list(fragment.final_names),
        )
    if fragment.distinct:
        plan = HashAggregate(
            context,
            plan,
            [ColumnRef(name) for name in plan.schema.names],
            list(plan.schema.names),
            [],
        )
    if fragment.order_by:
        keys, ascending = [], []
        for item in fragment.order_by:
            if not isinstance(item.expression, ColumnRef):
                raise PlanError(
                    "ORDER BY supports only output column references"
                )
            keys.append(ColumnRef(item.expression.name.rsplit(".", 1)[-1]))
            ascending.append(item.ascending)
        plan = SortOperator(context, plan, keys, ascending)
    if fragment.limit is not None:
        plan = LimitOperator(context, plan, fragment.limit, fragment.offset)
    return plan
