"""Logical plan IR and the binder that produces it from the AST.

The binder resolves *every* column reference against the complete scope
of the statement before any rewriting happens.  That is what makes the
optimizer's pushdowns safe: once ``id < 10`` has been resolved to
``f.id < 10`` there is no residual ambiguity, so the predicate can be
moved below a join or a ModelJoin freely (the old single-pass planner
had to keep unqualified predicates above the MODEL JOIN because later
FROM items were still unbound).

Logical nodes carry their qualified output names and an estimated
cardinality; both are recomputed bottom-up after every rewrite pass.
The rendering deliberately uses *logical* operator names ("Join",
"OrderBy", "Aggregate") — strategy names like HashJoin or
OrderedAggregate only appear in the physical plan.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.db.catalog import Catalog, ModelMetadata
from repro.db.column import ColumnRange
from repro.db.expressions import (
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    UnaryOp,
)
from repro.db.functions import has_function
from repro.db.operators import AggregateSpec
from repro.db.sql.ast import (
    FromItem,
    JoinRef,
    ModelJoinRef,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
)
from repro.db.sql.parser import is_aggregate_call
from repro.db.table import Table
from repro.errors import BindError, PlanError

# ----------------------------------------------------------------------
# logical operator tree
# ----------------------------------------------------------------------


class LogicalNode:
    """Base class of logical plan operators."""

    def __init__(self) -> None:
        #: estimated output cardinality (heuristic, recomputed after
        #: every rewrite pass; drives ModelJoin variant selection)
        self.estimated_rows: float = 0.0

    def children(self) -> list["LogicalNode"]:
        return []

    def output_names(self) -> list[str]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def estimate(self) -> float:
        """This node's cardinality, assuming children are up to date."""
        children = self.children()
        return children[0].estimated_rows if children else 0.0

    def render(self, indent: int = 0) -> str:
        """Human-readable logical tree (the EXPLAIN logical section)."""
        line = (
            " " * indent
            + self.describe()
            + f"  [~{int(round(self.estimated_rows))} rows]"
        )
        rendered = [line]
        for child in self.children():
            rendered.append(child.render(indent + 2))
        return "\n".join(rendered)


def _zone_map_row_estimate(table, ranges) -> int | None:
    """Rows surviving block pruning, or None for memory tables.

    Disk-resident tables persist per-block zone maps in their column
    file footers, so counting the rows of the blocks that survive the
    derived SMA ranges is exact block-granular cardinality — and free:
    footers are metadata, no block payload is read.  Memory tables
    keep the generic selectivity guess (their stats exist too, but the
    cheap heuristic has the right fidelity for data that was never
    sized for I/O).
    """
    if not getattr(table, "disk_resident", False):
        return None
    surviving = 0
    for partition in table.partitions:
        for block in partition.blocks():
            if block.may_match(table.schema, ranges):
                surviving += block.length
    return surviving


class LogicalScan(LogicalNode):
    """Base-table scan; *columns* are the fetched bare column names."""

    def __init__(self, table: Table, binding: str, columns: list[str]):
        super().__init__()
        self.table = table
        self.binding = binding
        self.columns = list(columns)
        self.ranges: list[ColumnRange] = []

    def output_names(self) -> list[str]:
        return [f"{self.binding}.{name}" for name in self.columns]

    def estimate(self) -> float:
        rows = float(self.table.row_count)
        if self.ranges:
            surviving = _zone_map_row_estimate(self.table, self.ranges)
            if surviving is not None:
                return float(surviving)
        for _ in self.ranges:
            rows *= 0.5
        return rows

    def describe(self) -> str:
        parts = [f"Scan({self.table.name}"]
        if len(self.columns) < len(self.table.schema):
            parts.append(f", cols=[{', '.join(self.columns)}]")
        if self.ranges:
            rendered = ", ".join(
                f"{r.column} in [{r.low}, {r.high}]" for r in self.ranges
            )
            parts.append(f", prune: {rendered}")
        return "".join(parts) + ")"


class LogicalSubquery(LogicalNode):
    """A FROM-list subquery; *inner* is its own bound query block."""

    def __init__(self, binding: str, inner: LogicalNode):
        super().__init__()
        self.binding = binding
        self.inner = inner

    def children(self) -> list[LogicalNode]:
        return [self.inner]

    def output_names(self) -> list[str]:
        return [
            f"{self.binding}.{name}" for name in self.inner.output_names()
        ]

    def describe(self) -> str:
        return f"Subquery({self.binding})"


class LogicalFilter(LogicalNode):
    def __init__(self, child: LogicalNode, conjuncts: list[Expression]):
        super().__init__()
        self.child = child
        self.conjuncts = list(conjuncts)

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def estimate(self) -> float:
        rows = self.child.estimated_rows
        for conjunct in self.conjuncts:
            rows *= _selectivity(conjunct)
        return max(rows, 1.0)

    def describe(self) -> str:
        rendered = " AND ".join(str(c) for c in self.conjuncts)
        return f"Filter({rendered})"


class LogicalJoin(LogicalNode):
    """Inner join; conjuncts start unclassified and the join-key rule
    splits them into hash-key pairs and a residual predicate."""

    def __init__(
        self,
        left: LogicalNode,
        right: LogicalNode,
        conjuncts: list[Expression] | None = None,
    ):
        super().__init__()
        self.left = left
        self.right = right
        self.conjuncts: list[Expression] = list(conjuncts or [])
        self.left_keys: list[Expression] = []
        self.right_keys: list[Expression] = []
        self.residual: list[Expression] = []

    def children(self) -> list[LogicalNode]:
        return [self.left, self.right]

    def output_names(self) -> list[str]:
        return self.left.output_names() + self.right.output_names()

    def estimate(self) -> float:
        left = self.left.estimated_rows
        right = self.right.estimated_rows
        if self.left_keys:
            rows = max(left, right)
        elif self.conjuncts:
            rows = left * right * 0.5
        else:
            rows = left * right
        for _ in self.residual:
            rows *= 0.5
        return max(rows, 1.0)

    def describe(self) -> str:
        if self.left_keys:
            keys = ", ".join(
                f"{left} = {right}"
                for left, right in zip(self.left_keys, self.right_keys)
            )
            base = f"Join(keys: {keys}"
            if self.residual:
                rendered = " AND ".join(str(c) for c in self.residual)
                base += f", residual: {rendered}"
            return base + ")"
        if self.conjuncts:
            rendered = " AND ".join(str(c) for c in self.conjuncts)
            return f"Join(on: {rendered})"
        return "Join(cross)"


class LogicalModelJoin(LogicalNode):
    """The MODEL JOIN extension as a first-class logical operator."""

    def __init__(
        self,
        child: LogicalNode,
        model_name: str,
        metadata: ModelMetadata,
        model_table: Table,
        input_columns: list[str] | None,
        output_prefix: str,
        variant_override: str | None = None,
        version: int | None = None,
    ):
        super().__init__()
        self.child = child
        self.model_name = model_name
        self.metadata = metadata
        self.model_table = model_table
        self.input_columns = input_columns
        self.output_prefix = output_prefix
        self.variant_override = variant_override
        self.version = version
        #: filled by the planner's variant-selection step (physical.py)
        self.selection = None

    @property
    def binding(self) -> str:
        return self.model_name.lower()

    def prediction_names(self) -> list[str]:
        return [
            f"{self.binding}.{self.output_prefix}_{index}"
            for index in range(self.metadata.output_width)
        ]

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def output_names(self) -> list[str]:
        return self.child.output_names() + self.prediction_names()

    def describe(self) -> str:
        inputs = (
            ", ".join(self.input_columns) if self.input_columns else "auto"
        )
        base = f"ModelJoin(model={self.metadata.model_name}, inputs=[{inputs}]"
        if self.version is not None:
            base += f", version={self.version}"
        if self.variant_override:
            base += f", variant={self.variant_override}"
        elif self.selection is not None:
            base += f", variant={self.selection.chosen}"
        return base + ")"


class LogicalProject(LogicalNode):
    def __init__(
        self,
        child: LogicalNode,
        expressions: list[Expression],
        names: list[str],
    ):
        super().__init__()
        self.child = child
        self.expressions = list(expressions)
        self.names = list(names)

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def output_names(self) -> list[str]:
        return list(self.names)

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"


class LogicalAggregate(LogicalNode):
    def __init__(
        self,
        child: LogicalNode,
        group_exprs: list[Expression],
        group_names: list[str],
        aggregates: list[AggregateSpec],
    ):
        super().__init__()
        self.child = child
        self.group_exprs = list(group_exprs)
        self.group_names = list(group_names)
        self.aggregates = list(aggregates)

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def output_names(self) -> list[str]:
        return self.group_names + [spec.name for spec in self.aggregates]

    def estimate(self) -> float:
        return max(self.child.estimated_rows / 10.0, 1.0)

    def describe(self) -> str:
        groups = ", ".join(str(e) for e in self.group_exprs)
        aggs = ", ".join(
            f"{spec.function}({spec.argument if spec.argument else '*'})"
            for spec in self.aggregates
        )
        return f"Aggregate(group=[{groups}], aggs=[{aggs}])"


class LogicalDistinct(LogicalNode):
    def __init__(self, child: LogicalNode):
        super().__init__()
        self.child = child

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def estimate(self) -> float:
        return max(self.child.estimated_rows * 0.5, 1.0)

    def describe(self) -> str:
        return "Distinct"


class LogicalOrderBy(LogicalNode):
    """Rendered as "OrderBy": "Sort" is a physical-strategy name and
    the physical plan may elide it entirely (sort-order elision)."""

    def __init__(
        self, child: LogicalNode, keys: list[str], ascending: list[bool]
    ):
        super().__init__()
        self.child = child
        self.keys = list(keys)
        self.ascending = list(ascending)

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def describe(self) -> str:
        rendered = ", ".join(
            f"{key} {'asc' if asc else 'desc'}"
            for key, asc in zip(self.keys, self.ascending)
        )
        return f"OrderBy({rendered})"


class LogicalLimit(LogicalNode):
    def __init__(self, child: LogicalNode, limit: int, offset: int = 0):
        super().__init__()
        self.child = child
        self.limit = limit
        self.offset = offset

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def estimate(self) -> float:
        return min(float(self.limit), self.child.estimated_rows)

    def describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"


def recompute_estimates(node: LogicalNode) -> None:
    """Refresh cardinality estimates bottom-up."""
    for child in node.children():
        recompute_estimates(child)
    node.estimated_rows = node.estimate()


def walk(
    node: LogicalNode, into_subqueries: bool = True
) -> list[LogicalNode]:
    """All nodes of the tree, parents before children."""
    nodes = [node]
    if isinstance(node, LogicalSubquery) and not into_subqueries:
        return nodes
    for child in node.children():
        nodes.extend(walk(child, into_subqueries))
    return nodes


def _selectivity(conjunct: Expression) -> float:
    if isinstance(conjunct, BinaryOp):
        if conjunct.operator == "=":
            return 0.1
        if conjunct.operator in ("<", "<=", ">", ">="):
            return 0.3
    return 0.5


# ----------------------------------------------------------------------
# name resolution
# ----------------------------------------------------------------------
@dataclass
class Scope:
    """Name-resolution scope over the qualified columns of a relation."""

    qualified: dict[str, str] = field(default_factory=dict)
    by_bare_name: dict[str, list[str]] = field(default_factory=dict)

    def add(self, binding: str, column: str) -> None:
        qualified = f"{binding}.{column}"
        self.qualified[qualified.lower()] = qualified
        self.by_bare_name.setdefault(column.lower(), []).append(qualified)

    def resolve(self, name: str) -> str:
        key = name.lower()
        if key in self.qualified:
            return self.qualified[key]
        candidates = self.by_bare_name.get(key, [])
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise BindError(f"column {name!r} not found")
        raise BindError(
            f"column {name!r} is ambiguous: {sorted(candidates)}"
        )


# ----------------------------------------------------------------------
# expression utilities (shared by binder, rules and lowering)
# ----------------------------------------------------------------------
def split_conjuncts(expression: Expression) -> list[Expression]:
    if isinstance(expression, BinaryOp) and expression.operator == "AND":
        return split_conjuncts(expression.left) + split_conjuncts(
            expression.right
        )
    return [expression]


def conjoin(conjuncts: list[Expression]) -> Expression:
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = BinaryOp("AND", result, conjunct)
    return result


def rebuild(
    expression: Expression, transform: Callable[[Expression], Expression]
) -> Expression:
    """Rebuild *expression* with *transform* applied to its children."""
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.operator,
            transform(expression.left),
            transform(expression.right),
        )
    if isinstance(expression, UnaryOp):
        return UnaryOp(expression.operator, transform(expression.operand))
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name,
            tuple(transform(argument) for argument in expression.arguments),
        )
    if isinstance(expression, CaseWhen):
        return CaseWhen(
            tuple(
                (transform(condition), transform(value))
                for condition, value in expression.branches
            ),
            transform(expression.otherwise)
            if expression.otherwise is not None
            else None,
        )
    if isinstance(expression, Cast):
        return Cast(transform(expression.operand), expression.target)
    return expression


def resolve_expression(expression: Expression, scope: Scope) -> Expression:
    """Resolve all column references in *expression* against *scope*."""

    def transform(node: Expression) -> Expression:
        if isinstance(node, ColumnRef):
            return ColumnRef(scope.resolve(node.name))
        if isinstance(node, FunctionCall) and not has_function(node.name):
            if node.name not in ("SUM", "COUNT", "MIN", "MAX", "AVG"):
                raise BindError(f"unknown function {node.name!r}")
        return rebuild(node, transform)

    return transform(expression)


def bindings_of(expression: Expression) -> set[str]:
    """Binding names referenced by a fully resolved expression."""
    return {
        name.split(".", 1)[0]
        for name in expression.referenced_columns()
        if "." in name
    }


def contains_aggregate(expression: Expression) -> bool:
    if is_aggregate_call(expression):
        return True
    found = False

    def transform(node: Expression) -> Expression:
        nonlocal found
        if is_aggregate_call(node):
            found = True
            return node
        return rebuild(node, transform)

    rebuild(expression, transform)
    return found


def equi_key_pair(
    conjunct: Expression, left_bindings: set[str], right_bindings: set[str]
) -> tuple[Expression, Expression] | None:
    """If *conjunct* is ``left_expr = right_expr`` across the two sides,
    return the (left, right) key expressions, else None."""
    if not isinstance(conjunct, BinaryOp) or conjunct.operator != "=":
        return None
    first = bindings_of(conjunct.left)
    second = bindings_of(conjunct.right)
    if not first or not second:
        return None
    if first <= left_bindings and second <= right_bindings:
        return conjunct.left, conjunct.right
    if first <= right_bindings and second <= left_bindings:
        return conjunct.right, conjunct.left
    return None


def extract_ranges(
    conjuncts: list[Expression],
    binding: str,
    table_schema,
) -> list[ColumnRange]:
    """Turn pushable comparisons with literals into SMA pruning ranges.

    Works on fully *resolved* conjuncts, whose column references are
    all qualified — a reference belongs to this scan iff its qualifier
    is *binding*.
    """
    ranges: dict[str, ColumnRange] = {}
    for conjunct in conjuncts:
        extracted = range_of_conjunct(conjunct, binding)
        if extracted is None:
            continue
        if not table_schema.has_column(extracted.column):
            continue
        key = extracted.column.lower()
        if key in ranges:
            ranges[key] = ranges[key].intersect(extracted)
        else:
            ranges[key] = extracted
    return list(ranges.values())


def range_of_conjunct(
    conjunct: Expression, binding: str
) -> ColumnRange | None:
    if not isinstance(conjunct, BinaryOp):
        return None
    operator = conjunct.operator
    left, right = conjunct.left, conjunct.right
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        operator = flipped.get(operator, operator)
        left, right = right, left
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return None
    if not isinstance(right.value, (int, float)) or isinstance(
        right.value, bool
    ):
        return None
    item_binding, _, column = left.name.partition(".")
    if not column or item_binding.lower() != binding:
        return None
    value = float(right.value)
    if operator == "=":
        return ColumnRange(column, value, value)
    if operator == "<":
        return ColumnRange(column, None, value)
    if operator == "<=":
        return ColumnRange(column, None, value)
    if operator == ">":
        return ColumnRange(column, value, None)
    if operator == ">=":
        return ColumnRange(column, value, None)
    return None


def bare_name(qualified: str, taken: list[str]) -> str:
    bare = qualified.split(".", 1)[1] if "." in qualified else qualified
    lowered = [name.lower() for name in taken]
    if bare.lower() not in lowered:
        return bare
    # Collision (e.g. SELECT * over a join with same-named columns):
    # fall back to a disambiguated name.
    candidate = qualified.replace(".", "_")
    suffix = 0
    while candidate.lower() in lowered:
        suffix += 1
        candidate = f"{qualified.replace('.', '_')}_{suffix}"
    return candidate


# ----------------------------------------------------------------------
# binder: AST -> logical tree
# ----------------------------------------------------------------------
class LogicalBinder:
    """Binds a SELECT statement into a resolved logical tree."""

    def __init__(self, catalog: Catalog, has_modeljoin_factory: bool):
        self.catalog = catalog
        self.has_modeljoin_factory = has_modeljoin_factory

    def bind(self, statement: SelectStatement) -> LogicalNode:
        scope = Scope()
        items = [
            self._bind_from_item(item, scope)
            for item in statement.from_items
        ]
        root = items[0]
        for item in items[1:]:
            root = LogicalJoin(root, item)
        conjuncts = (
            split_conjuncts(statement.where) if statement.where else []
        )
        resolved = [
            resolve_expression(conjunct, scope) for conjunct in conjuncts
        ]
        if resolved:
            root = LogicalFilter(root, resolved)

        group_exprs = [
            resolve_expression(expression, scope)
            for expression in statement.group_by
        ]
        select_exprs, select_names = self._resolve_select_list(
            statement.select_items, scope, root
        )
        having = (
            resolve_expression(statement.having, scope)
            if statement.having is not None
            else None
        )
        has_aggregates = any(
            contains_aggregate(expression) for expression in select_exprs
        ) or (having is not None and contains_aggregate(having))
        if group_exprs or has_aggregates:
            root = self._bind_aggregation(
                root, group_exprs, select_exprs, select_names, having
            )
        else:
            root = LogicalProject(root, select_exprs, select_names)

        if statement.distinct:
            root = LogicalDistinct(root)
        if statement.order_by:
            root = self._bind_order_by(root, statement.order_by)
        if statement.limit is not None:
            root = LogicalLimit(root, statement.limit, statement.offset)
        recompute_estimates(root)
        return root

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _bind_from_item(self, item: FromItem, scope: Scope) -> LogicalNode:
        if isinstance(item, TableRef):
            table = self.catalog.table(item.table_name)
            binding = item.binding_name.lower()
            for name in table.schema.names:
                scope.add(binding, name)
            return LogicalScan(table, binding, list(table.schema.names))
        if isinstance(item, SubqueryRef):
            inner = self.bind(item.query)
            binding = item.alias.lower()
            for name in inner.output_names():
                scope.add(binding, name)
            return LogicalSubquery(binding, inner)
        if isinstance(item, JoinRef):
            left = self._bind_from_item(item.left, scope)
            right = self._bind_from_item(item.right, scope)
            # The ON condition is resolved mid-FROM against the partial
            # scope, preserving ANSI name-visibility semantics.
            condition = resolve_expression(item.condition, scope)
            return LogicalJoin(left, right, [condition])
        if isinstance(item, ModelJoinRef):
            return self._bind_model_join(item, scope)
        raise PlanError(f"unsupported FROM item {type(item).__name__}")

    def _bind_model_join(
        self, item: ModelJoinRef, scope: Scope
    ) -> LogicalNode:
        if not self.has_modeljoin_factory:
            raise PlanError(
                "MODEL JOIN is not available: no ModelJoin operator factory "
                "is registered (import repro.core or use Database from "
                "repro, not repro.db)"
            )
        left = self._bind_from_item(item.left, scope)
        version = getattr(item, "version", None)
        metadata = self.catalog.model(item.model_name, version)
        model_table = self.catalog.table(metadata.table_name)
        input_columns = [
            scope.resolve(name) for name in item.input_columns
        ] or None
        node = LogicalModelJoin(
            left,
            item.model_name,
            metadata,
            model_table,
            input_columns,
            item.output_prefix,
            variant_override=getattr(item, "variant", None),
            version=version,
        )
        for index in range(metadata.output_width):
            scope.add(node.binding, f"{item.output_prefix}_{index}")
        return node

    # ------------------------------------------------------------------
    # SELECT list / aggregation / ORDER BY
    # ------------------------------------------------------------------
    def _resolve_select_list(
        self,
        items: tuple[SelectItem, ...],
        scope: Scope,
        root: LogicalNode,
    ) -> tuple[list[Expression], list[str]]:
        expressions: list[Expression] = []
        names: list[str] = []
        for item in items:
            if isinstance(item.expression, Star):
                qualifier = (
                    item.expression.qualifier.lower()
                    if item.expression.qualifier
                    else None
                )
                for qualified in self._expand_star(root, qualifier):
                    expressions.append(ColumnRef(qualified))
                    names.append(bare_name(qualified, names))
                continue
            expression = resolve_expression(item.expression, scope)
            expressions.append(expression)
            if item.alias:
                names.append(item.alias)
            elif isinstance(expression, ColumnRef):
                names.append(bare_name(expression.name, names))
            else:
                names.append(f"col{len(names)}")
        lowered = [name.lower() for name in names]
        if len(set(lowered)) != len(lowered):
            raise PlanError(f"duplicate output column names: {names}")
        return expressions, names

    @staticmethod
    def _expand_star(root: LogicalNode, qualifier: str | None) -> list[str]:
        names = []
        for name in root.output_names():
            binding = name.split(".", 1)[0].lower() if "." in name else ""
            if qualifier is None or binding == qualifier:
                names.append(name)
        if not names:
            raise BindError(f"no columns match {qualifier}.*")
        return names

    def _bind_aggregation(
        self,
        root: LogicalNode,
        group_exprs: list[Expression],
        select_exprs: list[Expression],
        select_names: list[str],
        having: Expression | None,
    ) -> LogicalNode:
        if not group_exprs:
            raise PlanError(
                "global aggregation (no GROUP BY) is not supported; "
                "add a constant group key"
            )
        group_names = [f"__g{i}" for i in range(len(group_exprs))]
        aggregates: list[AggregateSpec] = []

        def rewrite(expression: Expression) -> Expression:
            for slot, group_expr in enumerate(group_exprs):
                if expression == group_expr:
                    return ColumnRef(group_names[slot])
            if is_aggregate_call(expression):
                argument = None
                if expression.arguments:
                    if len(expression.arguments) != 1:
                        raise PlanError(
                            f"{expression.name} takes exactly one argument"
                        )
                    argument = expression.arguments[0]
                    if contains_aggregate(argument):
                        raise PlanError("nested aggregates are not allowed")
                name = f"__a{len(aggregates)}"
                aggregates.append(
                    AggregateSpec(expression.name, argument, name)
                )
                return ColumnRef(name)
            return rebuild(expression, rewrite)

        rewritten_select = [rewrite(expression) for expression in select_exprs]
        rewritten_having = rewrite(having) if having is not None else None
        generated = set(group_names) | {spec.name for spec in aggregates}
        for expression, name in zip(rewritten_select, select_names):
            stray = expression.referenced_columns() - generated
            if stray:
                raise PlanError(
                    f"column(s) {sorted(stray)} in select item {name!r} "
                    "appear neither in GROUP BY nor inside an aggregate"
                )
        result: LogicalNode = LogicalAggregate(
            root, group_exprs, group_names, aggregates
        )
        if rewritten_having is not None:
            result = LogicalFilter(
                result, split_conjuncts(rewritten_having)
            )
        return LogicalProject(result, rewritten_select, select_names)

    @staticmethod
    def _bind_order_by(
        root: LogicalNode, order_by: tuple[OrderItem, ...]
    ) -> LogicalNode:
        available = {name.lower(): name for name in root.output_names()}
        keys: list[str] = []
        ascending: list[bool] = []
        for item in order_by:
            if not isinstance(item.expression, ColumnRef):
                raise PlanError(
                    "ORDER BY supports only output column references"
                )
            name = item.expression.name
            if name.lower() not in available:
                raise BindError(
                    f"column {name!r} not found; "
                    f"available: {list(root.output_names())}"
                )
            keys.append(name)
            ascending.append(item.ascending)
        return LogicalOrderBy(root, keys, ascending)
