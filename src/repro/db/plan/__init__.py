"""The planning pipeline: logical plan IR, rewrite rules, lowering.

Planning is split into three layers (see docs/ARCHITECTURE.md):

1. :mod:`repro.db.plan.logical` — the binder turns a parsed
   ``SelectStatement`` into a typed logical-operator tree whose column
   references are fully resolved against the complete scope and whose
   nodes carry output names and estimated cardinalities.
2. :mod:`repro.db.plan.rules` — an ordered rewrite-rule engine
   (constant folding, predicate pushdown through joins *and* through
   ModelJoin, join-key extraction, SMA range derivation, projection
   pushdown into scans).  Every firing is recorded so EXPLAIN can show
   what the optimizer did.
3. :mod:`repro.db.plan.physical` — lowering to physical operators,
   including cost-based selection of the ModelJoin execution variant.
"""

from repro.db.plan.logical import LogicalBinder, LogicalNode
from repro.db.plan.physical import (
    IN_PLAN_VARIANTS,
    VariantEstimate,
    VariantSelection,
)
from repro.db.plan.rules import RuleEngine, RuleFiring

__all__ = [
    "IN_PLAN_VARIANTS",
    "LogicalBinder",
    "LogicalNode",
    "RuleEngine",
    "RuleFiring",
    "VariantEstimate",
    "VariantSelection",
]
