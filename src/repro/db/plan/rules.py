"""Ordered rewrite rules over the logical plan.

Every rule is a function ``(root, firings) -> root`` that mutates or
replaces parts of the tree and records a :class:`RuleFiring` for every
change it makes, so EXPLAIN can show exactly what the optimizer did.

Rule order matters and is fixed:

1. ``constant-folding``      — evaluate literal arithmetic at plan time.
2. ``predicate-pushdown``    — sink filter conjuncts below joins and
   below ModelJoin when they only touch pass-through columns (the
   Raven-style early-pruning optimization: filtered-out tuples are
   never scored by the model).
3. ``join-key-extraction``   — classify join conjuncts into hash-key
   equality pairs and a residual predicate.
4. ``sma-range-derivation``  — derive SMA/zone-map pruning ranges on
   base-table scans from pushed comparison predicates (paper §4.4).
5. ``projection-pushdown``   — restrict every base-table scan to the
   columns the query actually references.

Subqueries are optimized as independent regions first and then treated
as opaque leaves, mirroring the recursive structure of binding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.expressions import BinaryOp, Expression, Literal, UnaryOp
from repro.db.plan.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalModelJoin,
    LogicalNode,
    LogicalOrderBy,
    LogicalProject,
    LogicalScan,
    LogicalSubquery,
    bindings_of,
    equi_key_pair,
    extract_ranges,
    rebuild,
    recompute_estimates,
    walk,
)


@dataclass(frozen=True)
class RuleFiring:
    """One recorded application of a rewrite rule."""

    rule: str
    detail: str


class RuleEngine:
    """Applies the ordered rule list to a bound logical tree."""

    def __init__(self, options) -> None:
        self.options = options

    def run(
        self, root: LogicalNode
    ) -> tuple[LogicalNode, list[RuleFiring]]:
        firings: list[RuleFiring] = []
        if not getattr(self.options, "use_optimizer_rules", True):
            return root, firings
        root = self._run_region(root, firings)
        recompute_estimates(root)
        return root, firings

    def _run_region(
        self, root: LogicalNode, firings: list[RuleFiring]
    ) -> LogicalNode:
        # Optimize nested query blocks first, each in its own region so
        # binding names cannot collide across nesting levels.
        for node in walk(root, into_subqueries=False):
            if isinstance(node, LogicalSubquery):
                node.inner = self._run_region(node.inner, firings)
        root = _fold_constants(root, firings)
        root = _push_predicates(root, firings)
        _extract_join_keys(root, firings)
        if getattr(self.options, "use_block_pruning", True):
            _derive_sma_ranges(root, firings)
        _push_projections(root, firings)
        return root


# ----------------------------------------------------------------------
# rule 1: constant folding
# ----------------------------------------------------------------------
def _fold_constants(
    root: LogicalNode, firings: list[RuleFiring]
) -> LogicalNode:
    def fold(expression: Expression) -> Expression:
        expression = rebuild(expression, fold)
        if (
            isinstance(expression, BinaryOp)
            and isinstance(expression.left, Literal)
            and isinstance(expression.right, Literal)
            and expression.operator in ("+", "-", "*", "/")
            and _is_number(expression.left.value)
            and _is_number(expression.right.value)
        ):
            if expression.operator == "/" and expression.right.value == 0:
                return expression
            folded = Literal.of(
                _evaluate(
                    expression.operator,
                    expression.left.value,
                    expression.right.value,
                )
            )
            firings.append(
                RuleFiring(
                    "constant-folding", f"{expression} -> {folded}"
                )
            )
            return folded
        if (
            isinstance(expression, UnaryOp)
            and expression.operator == "-"
            and isinstance(expression.operand, Literal)
            and _is_number(expression.operand.value)
        ):
            folded = Literal.of(-expression.operand.value)
            firings.append(
                RuleFiring(
                    "constant-folding", f"{expression} -> {folded}"
                )
            )
            return folded
        return expression

    for node in walk(root, into_subqueries=False):
        if isinstance(node, LogicalFilter):
            node.conjuncts = [fold(c) for c in node.conjuncts]
        elif isinstance(node, LogicalJoin):
            node.conjuncts = [fold(c) for c in node.conjuncts]
        elif isinstance(node, LogicalProject):
            node.expressions = [fold(e) for e in node.expressions]
        elif isinstance(node, LogicalAggregate):
            node.group_exprs = [fold(e) for e in node.group_exprs]
    return root


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _evaluate(operator: str, left, right):
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    return left / right


# ----------------------------------------------------------------------
# rule 2: predicate pushdown
# ----------------------------------------------------------------------
def _push_predicates(
    root: LogicalNode, firings: list[RuleFiring]
) -> LogicalNode:
    def visit(node: LogicalNode) -> LogicalNode:
        for index, child in enumerate(list(node.children())):
            replaced = visit(child)
            if replaced is not child:
                _replace_child(node, index, replaced)
        if isinstance(node, LogicalFilter):
            kept: list[Expression] = []
            for conjunct in node.conjuncts:
                if not _sink(node.child, conjunct, firings):
                    kept.append(conjunct)
            if not kept:
                return node.child
            node.conjuncts = kept
        return node

    return visit(root)


def _sink(
    node: LogicalNode, conjunct: Expression, firings: list[RuleFiring]
) -> bool:
    """Try to absorb *conjunct* at or below *node*; True on success."""
    references = bindings_of(conjunct)
    if not references:
        return False
    if isinstance(node, LogicalFilter):
        if _sink(node.child, conjunct, firings):
            return True
        node.conjuncts.append(conjunct)
        return True
    if isinstance(node, LogicalJoin):
        left_names = _binding_set(node.left)
        right_names = _binding_set(node.right)
        if references <= left_names:
            _sink_or_wrap(node, 0, node.left, conjunct, firings)
            firings.append(
                RuleFiring(
                    "predicate-pushdown",
                    f"pushed {conjunct} below join (left side)",
                )
            )
            return True
        if references <= right_names:
            _sink_or_wrap(node, 1, node.right, conjunct, firings)
            firings.append(
                RuleFiring(
                    "predicate-pushdown",
                    f"pushed {conjunct} below join (right side)",
                )
            )
            return True
        if references <= (left_names | right_names):
            node.conjuncts.append(conjunct)
            firings.append(
                RuleFiring(
                    "predicate-pushdown",
                    f"merged {conjunct} into join condition",
                )
            )
            return True
        return False
    if isinstance(node, LogicalModelJoin):
        # Pass-through-column predicates run *before* inference so the
        # filtered-out tuples are never scored (Raven early pruning).
        pass_through = {
            name.split(".", 1)[0].lower()
            for name in node.child.output_names()
            if "." in name
        }
        if references <= pass_through:
            _sink_or_wrap(node, 0, node.child, conjunct, firings)
            firings.append(
                RuleFiring(
                    "predicate-pushdown",
                    f"pushed {conjunct} below "
                    f"ModelJoin({node.metadata.model_name})",
                )
            )
            return True
        return False
    return False


def _sink_or_wrap(
    parent: LogicalNode,
    child_index: int,
    child: LogicalNode,
    conjunct: Expression,
    firings: list[RuleFiring],
) -> None:
    if not _sink(child, conjunct, firings):
        _replace_child(
            parent, child_index, LogicalFilter(child, [conjunct])
        )


def _replace_child(
    parent: LogicalNode, index: int, replacement: LogicalNode
) -> None:
    if isinstance(parent, LogicalJoin):
        if index == 0:
            parent.left = replacement
        else:
            parent.right = replacement
    elif isinstance(parent, LogicalSubquery):
        parent.inner = replacement
    elif hasattr(parent, "child"):
        parent.child = replacement
    else:  # pragma: no cover - all parent node types are covered above
        raise AssertionError(f"cannot replace child of {parent!r}")


def _binding_set(node: LogicalNode) -> set[str]:
    return {
        name.split(".", 1)[0].lower()
        for name in node.output_names()
        if "." in name
    }


# ----------------------------------------------------------------------
# rule 3: join-key extraction
# ----------------------------------------------------------------------
def _extract_join_keys(
    root: LogicalNode, firings: list[RuleFiring]
) -> None:
    for node in walk(root, into_subqueries=False):
        if not isinstance(node, LogicalJoin) or not node.conjuncts:
            continue
        left_bindings = _binding_set(node.left)
        right_bindings = _binding_set(node.right)
        residual: list[Expression] = []
        for conjunct in node.conjuncts:
            pair = equi_key_pair(conjunct, left_bindings, right_bindings)
            if pair is not None:
                node.left_keys.append(pair[0])
                node.right_keys.append(pair[1])
                firings.append(
                    RuleFiring(
                        "join-key-extraction",
                        f"hash key {pair[0]} = {pair[1]}",
                    )
                )
            else:
                residual.append(conjunct)
        node.residual = residual
        node.conjuncts = []


# ----------------------------------------------------------------------
# rule 4: SMA range derivation
# ----------------------------------------------------------------------
def _derive_sma_ranges(
    root: LogicalNode, firings: list[RuleFiring]
) -> None:
    conjuncts: list[Expression] = []
    for node in walk(root, into_subqueries=False):
        if isinstance(node, LogicalFilter):
            conjuncts.extend(node.conjuncts)
    if not conjuncts:
        return
    for node in walk(root, into_subqueries=False):
        if not isinstance(node, LogicalScan):
            continue
        ranges = extract_ranges(conjuncts, node.binding, node.table.schema)
        if ranges:
            node.ranges = ranges
            rendered = ", ".join(
                f"{r.column} in [{r.low}, {r.high}]" for r in ranges
            )
            firings.append(
                RuleFiring(
                    "sma-range-derivation",
                    f"scan {node.binding}: {rendered}",
                )
            )


# ----------------------------------------------------------------------
# rule 5: projection pushdown
# ----------------------------------------------------------------------
def _push_projections(
    root: LogicalNode, firings: list[RuleFiring]
) -> None:
    _require(root, None, firings)


def _require(
    node: LogicalNode,
    required: set[str] | None,
    firings: list[RuleFiring],
) -> None:
    """Propagate the set of required qualified names (lower-cased) down
    the tree; ``None`` means "everything" (e.g. below Distinct of *)."""
    if isinstance(node, LogicalProject):
        needed = _refs(node.expressions)
        _require(node.child, needed, firings)
    elif isinstance(node, LogicalFilter):
        needed = _union(required, _refs(node.conjuncts))
        _require(node.child, needed, firings)
    elif isinstance(node, LogicalOrderBy):
        needed = _union(
            required, {key.lower() for key in node.keys}
        )
        _require(node.child, needed, firings)
    elif isinstance(node, LogicalAggregate):
        needed = _refs(node.group_exprs)
        for spec in node.aggregates:
            if spec.argument is not None:
                needed |= _refs([spec.argument])
        _require(node.child, needed, firings)
    elif isinstance(node, LogicalJoin):
        needed = _union(required, _refs(node.left_keys))
        needed = _union(needed, _refs(node.right_keys))
        needed = _union(needed, _refs(node.residual))
        needed = _union(needed, _refs(node.conjuncts))
        _require(node.left, needed, firings)
        _require(node.right, needed, firings)
    elif isinstance(node, LogicalModelJoin):
        if node.input_columns is None:
            # The physical operator picks its input columns from the
            # child schema (first FLOAT columns), so the child must
            # keep every column it produces today.
            _require(node.child, None, firings)
        else:
            needed = _union(
                required,
                {name.lower() for name in node.input_columns},
            )
            _require(node.child, needed, firings)
    elif isinstance(node, LogicalSubquery):
        # The inner region was already optimized independently; its
        # projection list defines the subquery's contract.
        return
    elif isinstance(node, LogicalScan):
        if required is None:
            return
        keep = [
            name
            for name in node.columns
            if f"{node.binding}.{name}".lower() in required
        ]
        if not keep:
            keep = [node.columns[0]]
        if len(keep) < len(node.columns):
            firings.append(
                RuleFiring(
                    "projection-pushdown",
                    f"scan {node.binding}: fetch {len(keep)}/"
                    f"{len(node.columns)} columns",
                )
            )
            node.columns = keep
    else:
        for child in node.children():
            _require(child, required, firings)


def _refs(expressions: list[Expression]) -> set[str]:
    names: set[str] = set()
    for expression in expressions:
        names |= {
            name.lower() for name in expression.referenced_columns()
        }
    return names


def _union(
    required: set[str] | None, extra: set[str]
) -> set[str] | None:
    if required is None:
        return None
    return required | extra
