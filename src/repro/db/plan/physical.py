"""Lowering: logical plan -> physical operators, with cost-based
selection of the ModelJoin execution variant.

The variant decision happens once per statement (in
``select_variants``), *before* per-partition lowering, so all
partition pipelines of a parallel query execute the same variant.  A
pluggable selector (installed by ``repro.core.attach``; see
``repro.core.cost.selector``) ranks all execution variants the system
implements — native CPU/GPU, ML-To-SQL, runtime API, UDF, external —
by predicted runtime from the calibrated inference cost model and the
optimizer's input-cardinality estimate.  Only the native variants can
run *inside* a query plan; the full ranking is still recorded on the
plan because EXPLAIN prints it and the resilience layer executes it as
its fallback chain.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.db.compile import (
    FusedPipeline,
    KernelOutput,
    KernelSpec,
    project_outputs,
)
from repro.db.expressions import ColumnRef
from repro.db.operators import (
    CrossJoin,
    ExecutionContext,
    FilterOperator,
    HashAggregate,
    HashJoin,
    LimitOperator,
    OrderedAggregate,
    PhysicalOperator,
    ProjectOperator,
    SortOperator,
    TableScan,
)
from repro.db.operators.aggregate import SegmentedAggregate
from repro.db.operators.misc import RenameOperator
from repro.db.plan.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalModelJoin,
    LogicalNode,
    LogicalOrderBy,
    LogicalProject,
    LogicalScan,
    LogicalSubquery,
    conjoin,
    walk,
)
from repro.errors import PlanError

#: variants that can execute inside a physical query plan; the others
#: (ml-to-sql, runtime-api, udf, external) run through their dedicated
#: runners outside the Volcano pipeline
IN_PLAN_VARIANTS = ("native-cpu", "native-gpu")

#: every execution variant the system implements, canonical order
ALL_VARIANTS = (
    "native-cpu",
    "native-gpu",
    "ml-to-sql",
    "runtime-api",
    "udf",
    "external",
)


@dataclass(frozen=True)
class VariantEstimate:
    """Predicted cost of one ModelJoin execution variant."""

    variant: str
    predicted_seconds: float
    in_plan: bool


@dataclass(frozen=True)
class VariantSelection:
    """The optimizer's per-query ModelJoin variant decision."""

    model_name: str
    tuples: int
    flops_per_tuple: float
    estimates: tuple[VariantEstimate, ...]
    chosen: str
    reason: str

    def ranked(self) -> tuple[VariantEstimate, ...]:
        return tuple(
            sorted(self.estimates, key=lambda e: e.predicted_seconds)
        )


def select_variants(root: LogicalNode, selector, metrics=None):
    """Pick the execution variant for every ModelJoin in the plan.

    Mutates each :class:`LogicalModelJoin` node's ``selection`` and
    returns the list of selections.  *selector* is duck-typed (see
    ``repro.core.cost.selector.CostBasedVariantSelector``) or None,
    in which case the native CPU operator is used unconditionally.
    """
    selections: list[VariantSelection] = []
    for node in walk(root):
        if not isinstance(node, LogicalModelJoin):
            continue
        tuples = max(int(round(node.child.estimated_rows)), 1)
        estimates: tuple[VariantEstimate, ...] = ()
        flops = 0.0
        if selector is not None:
            estimates = tuple(selector.rank(node.metadata, tuples))
            flops = selector.flops_per_tuple(node.metadata)
        if node.variant_override is not None:
            chosen = node.variant_override
            if chosen not in IN_PLAN_VARIANTS:
                raise PlanError(
                    f"variant {chosen!r} cannot run inside a query plan; "
                    f"in-plan variants are {list(IN_PLAN_VARIANTS)}"
                )
            reason = "explicit override (VARIANT clause)"
        elif estimates:
            in_plan = [e for e in estimates if e.in_plan]
            best = min(in_plan, key=lambda e: e.predicted_seconds)
            chosen = best.variant
            reason = (
                f"lowest predicted cost among in-plan variants "
                f"({best.predicted_seconds * 1e3:.3f} ms for "
                f"~{tuples} tuples)"
            )
        else:
            chosen = "native-cpu"
            reason = "default (no cost selector installed)"
        selection = VariantSelection(
            model_name=node.metadata.model_name,
            tuples=tuples,
            flops_per_tuple=flops,
            estimates=estimates,
            chosen=chosen,
            reason=reason,
        )
        node.selection = selection
        selections.append(selection)
        if metrics is not None:
            metrics.counter("planner.variant_selected").increment()
            metrics.counter(
                f"planner.variant_selected.{chosen}"
            ).increment()
    return selections


class Lowering:
    """Lowers one bound+optimized logical tree to physical operators."""

    def __init__(
        self,
        context: ExecutionContext,
        options,
        modeljoin_factory,
        partition_index: int | None = None,
        compiler=None,
    ):
        self.context = context
        self.options = options
        self.modeljoin_factory = modeljoin_factory
        self.partition_index = partition_index
        #: KernelCompiler driving pipeline fusion (None = interpreted
        #: lowering: use_compiled_kernels=False or open compile breaker)
        self.compiler = compiler
        self._factory_takes_variant = (
            modeljoin_factory is not None
            and _accepts_keyword(modeljoin_factory, "variant")
        )

    def lower(self, node: LogicalNode) -> PhysicalOperator:
        if isinstance(node, LogicalScan):
            return self._lower_scan(node)
        if isinstance(node, LogicalSubquery):
            inner = self.lower(node.inner)
            names = [
                f"{node.binding}.{name}" for name in inner.schema.names
            ]
            return RenameOperator(self.context, inner, names)
        if isinstance(node, LogicalFilter):
            return self._lower_filter(
                list(node.conjuncts), self.lower(node.child)
            )
        if isinstance(node, LogicalJoin):
            return self._lower_join(node)
        if isinstance(node, LogicalModelJoin):
            return self._lower_model_join(node)
        if isinstance(node, LogicalProject):
            return self._lower_project(node)
        if isinstance(node, LogicalAggregate):
            return self._lower_aggregate(node)
        if isinstance(node, LogicalDistinct):
            child = self.lower(node.child)
            return HashAggregate(
                self.context,
                child,
                [ColumnRef(name) for name in child.schema.names],
                list(child.schema.names),
                [],
            )
        if isinstance(node, LogicalOrderBy):
            return self._lower_order_by(node)
        if isinstance(node, LogicalLimit):
            child = self.lower(node.child)
            return LimitOperator(
                self.context, child, node.limit, node.offset
            )
        raise PlanError(
            f"cannot lower logical node {type(node).__name__}"
        )  # pragma: no cover - all node types are handled above

    # ------------------------------------------------------------------
    # pipeline fusion (repro.db.compile)
    # ------------------------------------------------------------------
    def _make_spec(
        self, child: PhysicalOperator, predicates, outputs, label: str
    ) -> KernelSpec:
        """Kernel spec for a segment consuming *child*'s output.

        When the child is a ModelJoin, the spec carries the prediction
        columns as *transient* (they become arena views under epilogue
        fusion) and bakes the model table's identity into the source
        header, so a model republish or version bump misses the kernel
        cache exactly like it misses the ModelCache.
        """
        transient: frozenset = frozenset()
        header: tuple[str, ...] = ()
        if getattr(child, "supports_emit_views", False):
            table = child.model_table
            transient = frozenset(
                name.lower() for name in child.prediction_column_names
            )
            header = (
                f"# model-table: {table.name} uid={table.uid} "
                f"version={table.version}",
            )
        return KernelSpec(
            schema=child.schema,
            predicates=tuple(predicates),
            outputs=tuple(outputs),
            transient=transient,
            header=header,
            label=label,
        )

    def _fuse_pipeline(
        self, child: PhysicalOperator, spec: KernelSpec
    ) -> PhysicalOperator | None:
        """Compile *spec*; on success wire up epilogue fusion."""
        kernel = self.compiler.compile_kernel(spec)
        if kernel is None:
            return None
        if spec.transient:
            child.emit_views = True
        return FusedPipeline(self.context, child, kernel, spec)

    def _lower_filter(
        self, conjuncts: list, child: PhysicalOperator
    ) -> PhysicalOperator:
        """A filter as a fused kernel, falling back to FilterOperator.

        The fused form passes every child column through (schema
        preserved) and applies the conjuncts with mask narrowing; when
        any conjunct is non-compilable the interpreted operator still
        gets a :class:`CompiledExpr` for the whole predicate when that
        much is compilable.
        """
        if self.compiler is not None:
            outputs = [
                KernelOutput(name, ColumnRef(name), None)
                for name in child.schema.names
            ]
            spec = self._make_spec(
                child, conjuncts, outputs, label=f"filter({len(conjuncts)})"
            )
            fused = self._fuse_pipeline(child, spec)
            if fused is not None:
                return fused
        predicate = conjoin(conjuncts)
        compiled = (
            self.compiler.compile_expression(predicate, child.schema)
            if self.compiler is not None
            else None
        )
        return FilterOperator(
            self.context, child, predicate, compiled=compiled
        )

    def _lower_project(self, node: LogicalProject) -> PhysicalOperator:
        child_node = node.child
        predicates: list = []
        if self.compiler is not None and isinstance(
            child_node, LogicalFilter
        ):
            # Absorb the adjacent filter into one filter→project kernel.
            child = self.lower(child_node.child)
            predicates = list(child_node.conjuncts)
        else:
            child = self.lower(child_node)
        if self.compiler is not None:
            outputs = project_outputs(
                node.expressions, node.names, child.schema
            )
            label = (
                f"filter({len(predicates)})+project({len(outputs)})"
                if predicates
                else f"project({len(outputs)})"
            )
            spec = self._make_spec(child, predicates, outputs, label)
            fused = self._fuse_pipeline(child, spec)
            if fused is not None:
                return fused
        if predicates:
            child = self._lower_filter(predicates, child)
        return ProjectOperator(
            self.context, child, node.expressions, node.names
        )

    # ------------------------------------------------------------------
    def _lower_scan(self, node: LogicalScan) -> PhysicalOperator:
        scan_partition = self.partition_index
        if (
            self.partition_index is not None
            and node.table.num_partitions == 1
        ):
            scan_partition = None  # broadcast unpartitioned tables
        columns = (
            node.columns
            if len(node.columns) < len(node.table.schema)
            else None
        )
        scan = TableScan(
            self.context,
            node.table,
            ranges=node.ranges or None,
            partition_index=scan_partition,
            columns=columns,
        )
        names = [f"{node.binding}.{name}" for name in node.columns]
        return RenameOperator(self.context, scan, names)

    def _lower_join(self, node: LogicalJoin) -> PhysicalOperator:
        left = self.lower(node.left)
        right = self.lower(node.right)
        if node.left_keys:
            residual = conjoin(node.residual) if node.residual else None
            return HashJoin(
                self.context,
                left,
                right,
                node.left_keys,
                node.right_keys,
                residual,
            )
        # No extracted keys: either a true cross join or unclassified
        # conjuncts (rule engine disabled) applied as a residual filter.
        residual_conjuncts = node.residual + node.conjuncts
        joined: PhysicalOperator = CrossJoin(self.context, left, right)
        if residual_conjuncts:
            joined = self._lower_filter(residual_conjuncts, joined)
        return joined

    def _lower_model_join(
        self, node: LogicalModelJoin
    ) -> PhysicalOperator:
        if self.modeljoin_factory is None:
            raise PlanError(
                "MODEL JOIN is not available: no ModelJoin operator factory "
                "is registered (import repro.core or use Database from "
                "repro, not repro.db)"
            )
        child = self.lower(node.child)
        kwargs = dict(
            context=self.context,
            child=child,
            metadata=node.metadata,
            model_table=node.model_table,
            input_columns=node.input_columns,
            output_prefix=f"{node.binding}.{node.output_prefix}",
            partition_index=self.partition_index,
        )
        if self._factory_takes_variant and node.selection is not None:
            kwargs["variant"] = node.selection.chosen
        return self.modeljoin_factory(**kwargs)

    def _lower_aggregate(
        self, node: LogicalAggregate
    ) -> PhysicalOperator:
        child_node = node.child
        predicates: list = []
        if self.compiler is not None and isinstance(
            child_node, LogicalFilter
        ):
            # Absorb the adjacent filter into the aggregate's compiled
            # input kernel.  Selection preserves ordering, so choosing
            # the aggregation strategy against the grandchild's ordering
            # is equivalent to choosing it above the filter operator.
            child = self.lower(child_node.child)
            predicates = list(child_node.conjuncts)
        else:
            child = self.lower(child_node)

        group_exprs = list(node.group_exprs)
        group_names = list(node.group_names)
        strategy = "hash"
        prefix_length = 0
        if getattr(self.options, "use_ordered_aggregation", True) and all(
            isinstance(expression, ColumnRef)
            for expression in node.group_exprs
        ):
            keys = {
                expression.name.lower()
                for expression in node.group_exprs
            }
            prefix = {
                name.lower() for name in child.ordering[: len(keys)]
            }
            if prefix == keys:
                strategy = "ordered"
        if strategy == "hash" and getattr(
            self.options, "use_segmented_aggregation", False
        ):
            layout = self._segmented_layout(child, node)
            if layout is not None:
                order, prefix_length = layout
                group_exprs = [node.group_exprs[i] for i in order]
                group_names = [node.group_names[i] for i in order]
                strategy = "segmented"

        kernel = None
        fused_filter = None
        if self.compiler is not None:
            outputs = [
                KernelOutput(name, expression, None)
                for expression, name in zip(group_exprs, group_names)
            ]
            outputs.extend(
                KernelOutput(
                    spec.name,
                    None if spec.function == "COUNT" else spec.argument,
                    None,
                )
                for spec in node.aggregates
            )
            label = (
                f"filter({len(predicates)})+aggregate-input"
                if predicates
                else "aggregate-input"
            )
            spec = self._make_spec(child, predicates, outputs, label)
            kernel = self.compiler.compile_kernel(spec)
            if kernel is not None:
                if predicates:
                    fused_filter = conjoin(predicates)
                if spec.transient:
                    child.emit_views = True
        if kernel is None and predicates:
            # the filter would not fuse: lower it as its own operator
            child = self._lower_filter(predicates, child)

        if strategy == "ordered":
            return OrderedAggregate(
                self.context,
                child,
                group_exprs,
                group_names,
                node.aggregates,
                input_kernel=kernel,
                fused_filter=fused_filter,
            )
        if strategy == "segmented":
            return SegmentedAggregate(
                self.context,
                child,
                group_exprs,
                group_names,
                node.aggregates,
                prefix_length=prefix_length,
                input_kernel=kernel,
                fused_filter=fused_filter,
            )
        return HashAggregate(
            self.context,
            child,
            group_exprs,
            group_names,
            node.aggregates,
            input_kernel=kernel,
            fused_filter=fused_filter,
        )

    def _segmented_layout(
        self, child: PhysicalOperator, node: LogicalAggregate
    ) -> tuple[list[int], int] | None:
        """Group-key reordering for SegmentedAggregate, when the input
        ordering covers a proper, non-empty prefix of the group keys
        (paper §4.4).  Returns (key order, prefix length) or None."""
        bare = {}
        for index, expression in enumerate(node.group_exprs):
            if isinstance(expression, ColumnRef):
                bare.setdefault(expression.name.lower(), index)
        prefix_indices: list[int] = []
        seen: set[int] = set()
        for name in child.ordering:
            index = bare.get(name.lower())
            if index is None or index in seen:
                break
            prefix_indices.append(index)
            seen.add(index)
        if not prefix_indices or len(prefix_indices) >= len(
            node.group_exprs
        ):
            return None
        order = prefix_indices + [
            index
            for index in range(len(node.group_exprs))
            if index not in seen
        ]
        return order, len(prefix_indices)

    def _lower_order_by(self, node: LogicalOrderBy) -> PhysicalOperator:
        child = self.lower(node.child)
        keys = [ColumnRef(name) for name in node.keys]
        for key in keys:
            child.schema.position_of(key.name)  # validate
        # Skip the sort if the required order is already guaranteed.
        wanted = tuple(key.name.lower() for key in keys)
        have = tuple(name.lower() for name in child.ordering)
        if all(node.ascending) and have[: len(wanted)] == wanted:
            return child
        return SortOperator(self.context, child, keys, node.ascending)


def _accepts_keyword(callable_, name: str) -> bool:
    try:
        signature = inspect.signature(callable_)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == name:
            return True
    return False


# ----------------------------------------------------------------------
# EXPLAIN rendering
# ----------------------------------------------------------------------
def render_explain(prepared, physical: PhysicalOperator) -> str:
    """The multi-section EXPLAIN: logical plan, fired rewrite rules,
    ModelJoin variant selection, physical plan."""
    sections = [
        "== Logical Plan ==",
        prepared.logical.render(),
        "",
        "== Rewrite Rules ==",
    ]
    if prepared.firings:
        sections.extend(
            f"{firing.rule}: {firing.detail}"
            for firing in prepared.firings
        )
    else:
        sections.append("(none fired)")
    for selection in prepared.selections:
        sections.append("")
        sections.append("== ModelJoin Variant Selection ==")
        sections.append(
            f"model {selection.model_name}: ~{selection.tuples} input "
            f"tuples, {selection.flops_per_tuple:.0f} flops/tuple"
        )
        for estimate in selection.ranked():
            marker = "  <- chosen" if (
                estimate.variant == selection.chosen
            ) else ""
            plan_note = "in-plan" if estimate.in_plan else "runner"
            sections.append(
                f"  {estimate.variant:<11} "
                f"{estimate.predicted_seconds * 1e3:10.3f} ms "
                f"({plan_note}){marker}"
            )
        if not selection.estimates:
            sections.append(f"  {selection.chosen}  <- chosen")
        sections.append(f"  reason: {selection.reason}")
    sections.append("")
    sections.append("== Physical Plan ==")
    sections.append(physical.explain())
    compiled = list(_compiled_sections(physical))
    if compiled:
        sections.append("")
        sections.append("== Compiled Code ==")
        sections.extend(compiled)
    return "\n".join(sections)


def _compiled_sections(operator: PhysicalOperator):
    """Generated kernel sources in the physical tree, top-down."""
    source = getattr(operator, "compiled_source", None)
    if source is not None:
        yield f"-- {operator.describe()}"
        yield source.rstrip("\n")
    for child in operator.children():
        yield from _compiled_sections(child)


# ----------------------------------------------------------------------
# exchange operators (sharded execution, see docs/SHARDING.md)
# ----------------------------------------------------------------------
class GatherExchange(PhysicalOperator):
    """Coordinator-side source feeding shard fragment results.

    The actual data movement happens over process pipes before the
    operator runs (the coordinator materializes each shard's fragment
    output); GatherExchange then streams those batches — tagged per
    source shard in ``rows_per_source`` — into the merge pipeline with
    the standard per-batch cancellation checkpoint, so a late CANCEL
    still aborts a large merge.
    """

    def __init__(self, context, schema, sources):
        super().__init__(context, schema)
        #: list of per-shard batch lists, index = shard id
        self.sources = sources
        self.rows_per_source = [
            sum(len(batch) for batch in batches) for batches in sources
        ]

    def describe(self) -> str:
        rows = ", ".join(
            f"shard{index}={count}"
            for index, count in enumerate(self.rows_per_source)
        )
        return f"GatherExchange [{len(self.sources)} shards] ({rows})"

    def _produce(self):
        for batches in self.sources:
            yield from batches


class BroadcastExchange(PhysicalOperator):
    """Replicates its child's full output to *fanout* consumers.

    Used by the coordinator to ship replicated (unpartitioned) tables —
    model tables, dimension tables — to every shard: the child is
    materialized exactly once, and :meth:`streams` hands each consumer
    the same sealed batch list.
    """

    def __init__(self, context, child, fanout: int):
        super().__init__(context, child.schema)
        self.child = child
        self.fanout = fanout
        self._materialized = None

    def describe(self) -> str:
        return f"BroadcastExchange [fanout {self.fanout}]"

    def children(self):
        return [self.child]

    def _materialize(self):
        if self._materialized is None:
            self._materialized = list(self.child.batches())
        return self._materialized

    def streams(self):
        batches = self._materialize()
        return [batches for _ in range(self.fanout)]

    def _produce(self):
        yield from self._materialize()


class RepartitionExchange(PhysicalOperator):
    """Hash-routes its child's output into *fanout* disjoint streams.

    The routing rule is the engine's canonical ``abs(hash(key)) % n``
    (identical to :class:`~repro.db.table.Table` partition routing and
    :class:`~repro.db.shard.tables.ShardedTable` shard routing), so a
    repartitioned stream lands rows exactly where a load through the
    table API would.  Pass-through iteration yields the child's batches
    unchanged; :meth:`partitions` materializes the routed streams.
    """

    def __init__(self, context, child, key: str, fanout: int):
        super().__init__(context, child.schema)
        if fanout < 1:
            raise PlanError("repartition fanout must be >= 1")
        self.child = child
        self.key = key
        self.fanout = fanout

    def describe(self) -> str:
        return f"RepartitionExchange [key {self.key}, fanout {self.fanout}]"

    def children(self):
        return [self.child]

    def partitions(self):
        import numpy as np

        streams = [[] for _ in range(self.fanout)]
        for batch in self.child.batches():
            keys = batch.column(self.key)
            if keys.dtype == object:
                hashes = np.fromiter(
                    (hash(key) for key in keys),
                    dtype=np.int64,
                    count=len(keys),
                )
            else:
                hashes = keys.astype(np.int64, copy=False)
            assignment = np.abs(hashes) % self.fanout
            for target in range(self.fanout):
                mask = assignment == target
                if mask.any():
                    streams[target].append(batch.filter(mask))
        return streams

    def _produce(self):
        yield from self.child.batches()


#: below this many rows per shard, intra-shard thread parallelism costs
#: more in pipeline setup than it recovers (measured on the smoke
#: workload; one vector per worker thread is the break-even shape)
MIN_ROWS_FOR_WORKER_PARALLEL = 8192

#: fixed per-shard dispatch overhead expressed in equivalent scan rows
#: (fragment pickle + pipe round trip + result unpickle)
SHARD_DISPATCH_OVERHEAD_ROWS = 4096


def choose_shard_fanout(total_rows: int, shard_count: int) -> int:
    """How many shards a fragment is dispatched to.

    Sharded base tables are placement-constrained: their rows already
    live on all ``shard_count`` shards, so a scan fragment must visit
    every shard and the only real decision is whether sharded dispatch
    is worth its per-shard overhead at all.  Returns ``0`` when the
    fragment should run coordinator-local instead (no sharded input, or
    so few rows that ``SHARD_DISPATCH_OVERHEAD_ROWS`` per shard
    dominates the scan itself); otherwise ``shard_count``.
    """
    if shard_count <= 0:
        return 0
    if total_rows <= SHARD_DISPATCH_OVERHEAD_ROWS:
        # The whole table costs less to scan than one dispatch; still
        # placement-constrained, but flag the poor fit for EXPLAIN.
        return shard_count
    return shard_count


def choose_worker_parallelism(rows_per_shard: int, shard_workers: int) -> int:
    """Intra-shard pipeline count a fragment should request."""
    if shard_workers <= 1:
        return 1
    if rows_per_shard < MIN_ROWS_FOR_WORKER_PARALLEL:
        return 1
    return shard_workers


def render_fragment_tree(fragment, shard_count: int, shard_workers: int) -> str:
    """The fragment-tree prefix EXPLAIN prints for a sharded query.

    Renders the coordinator merge pipeline above a GatherExchange and
    the per-shard fragment below it, with the cost-model row estimates
    driving the fanout annotation.
    """
    total_rows = fragment.estimated_rows
    fanout = choose_shard_fanout(total_rows, shard_count)
    per_shard = total_rows // max(fanout, 1)
    lines = ["Coordinator"]
    indent = "  "
    if fragment.limit is not None:
        lines.append(f"{indent}Limit [{fragment.limit}]")
        indent += "  "
    if fragment.order_by:
        keys = ", ".join(
            f"{item.expression}{'' if item.ascending else ' DESC'}"
            for item in fragment.order_by
        )
        lines.append(f"{indent}Sort [{keys}]")
        indent += "  "
    if fragment.distinct:
        lines.append(f"{indent}Distinct")
        indent += "  "
    if fragment.merge == "partial":
        specs = ", ".join(
            f"{spec.function}({spec.argument}) AS {spec.name}"
            for spec in fragment.merge_specs
        )
        lines.append(
            f"{indent}MergeAggregate [groups "
            f"{', '.join(fragment.group_names)}; {specs or 'none'}]"
        )
        indent += "  "
        if fragment.having is not None:
            lines.append(f"{indent}Filter [{fragment.having}] (HAVING)")
    else:
        lines.append(
            f"{indent}Concat (groups disjoint by partition key: "
            "shard-local results are final)"
        )
        indent += "  "
    lines.append(
        f"{indent}GatherExchange [shards {fanout}/{shard_count}, "
        f"~{total_rows} input rows, ~{per_shard}/shard; "
        f"dispatch overhead {SHARD_DISPATCH_OVERHEAD_ROWS} rows/shard "
        f"({'amortized' if per_shard > SHARD_DISPATCH_OVERHEAD_ROWS else 'dominant'})]"
    )
    parallel = choose_worker_parallelism(per_shard, shard_workers)
    lines.append(
        f"Fragment [runs on each of {fanout} shards, "
        f"{parallel} pipeline(s)/shard]"
    )
    lines.append(f"  {_render_statement(fragment.shard_statement)}")
    lines.append(
        "  BroadcastExchange [replicated tables sync to shards "
        "on demand, version-keyed]"
    )
    return "\n".join(lines)


def _render_statement(statement) -> str:
    items = ", ".join(
        f"{item.expression}"
        + (f" AS {item.alias}" if item.alias else "")
        for item in statement.select_items
    )
    parts = [f"SELECT {items}"]
    if statement.group_by:
        parts.append(
            "GROUP BY " + ", ".join(str(e) for e in statement.group_by)
        )
    if statement.where is not None:
        parts.append(f"WHERE {statement.where}")
    return " ".join(parts)
