"""Lowering: logical plan -> physical operators, with cost-based
selection of the ModelJoin execution variant.

The variant decision happens once per statement (in
``select_variants``), *before* per-partition lowering, so all
partition pipelines of a parallel query execute the same variant.  A
pluggable selector (installed by ``repro.core.attach``; see
``repro.core.cost.selector``) ranks all execution variants the system
implements — native CPU/GPU, ML-To-SQL, runtime API, UDF, external —
by predicted runtime from the calibrated inference cost model and the
optimizer's input-cardinality estimate.  Only the native variants can
run *inside* a query plan; the full ranking is still recorded on the
plan because EXPLAIN prints it and the resilience layer executes it as
its fallback chain.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.db.expressions import ColumnRef
from repro.db.operators import (
    CrossJoin,
    ExecutionContext,
    FilterOperator,
    HashAggregate,
    HashJoin,
    LimitOperator,
    OrderedAggregate,
    PhysicalOperator,
    ProjectOperator,
    SortOperator,
    TableScan,
)
from repro.db.operators.aggregate import SegmentedAggregate
from repro.db.operators.misc import RenameOperator
from repro.db.plan.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalModelJoin,
    LogicalNode,
    LogicalOrderBy,
    LogicalProject,
    LogicalScan,
    LogicalSubquery,
    conjoin,
    walk,
)
from repro.errors import PlanError

#: variants that can execute inside a physical query plan; the others
#: (ml-to-sql, runtime-api, udf, external) run through their dedicated
#: runners outside the Volcano pipeline
IN_PLAN_VARIANTS = ("native-cpu", "native-gpu")

#: every execution variant the system implements, canonical order
ALL_VARIANTS = (
    "native-cpu",
    "native-gpu",
    "ml-to-sql",
    "runtime-api",
    "udf",
    "external",
)


@dataclass(frozen=True)
class VariantEstimate:
    """Predicted cost of one ModelJoin execution variant."""

    variant: str
    predicted_seconds: float
    in_plan: bool


@dataclass(frozen=True)
class VariantSelection:
    """The optimizer's per-query ModelJoin variant decision."""

    model_name: str
    tuples: int
    flops_per_tuple: float
    estimates: tuple[VariantEstimate, ...]
    chosen: str
    reason: str

    def ranked(self) -> tuple[VariantEstimate, ...]:
        return tuple(
            sorted(self.estimates, key=lambda e: e.predicted_seconds)
        )


def select_variants(root: LogicalNode, selector, metrics=None):
    """Pick the execution variant for every ModelJoin in the plan.

    Mutates each :class:`LogicalModelJoin` node's ``selection`` and
    returns the list of selections.  *selector* is duck-typed (see
    ``repro.core.cost.selector.CostBasedVariantSelector``) or None,
    in which case the native CPU operator is used unconditionally.
    """
    selections: list[VariantSelection] = []
    for node in walk(root):
        if not isinstance(node, LogicalModelJoin):
            continue
        tuples = max(int(round(node.child.estimated_rows)), 1)
        estimates: tuple[VariantEstimate, ...] = ()
        flops = 0.0
        if selector is not None:
            estimates = tuple(selector.rank(node.metadata, tuples))
            flops = selector.flops_per_tuple(node.metadata)
        if node.variant_override is not None:
            chosen = node.variant_override
            if chosen not in IN_PLAN_VARIANTS:
                raise PlanError(
                    f"variant {chosen!r} cannot run inside a query plan; "
                    f"in-plan variants are {list(IN_PLAN_VARIANTS)}"
                )
            reason = "explicit override (VARIANT clause)"
        elif estimates:
            in_plan = [e for e in estimates if e.in_plan]
            best = min(in_plan, key=lambda e: e.predicted_seconds)
            chosen = best.variant
            reason = (
                f"lowest predicted cost among in-plan variants "
                f"({best.predicted_seconds * 1e3:.3f} ms for "
                f"~{tuples} tuples)"
            )
        else:
            chosen = "native-cpu"
            reason = "default (no cost selector installed)"
        selection = VariantSelection(
            model_name=node.metadata.model_name,
            tuples=tuples,
            flops_per_tuple=flops,
            estimates=estimates,
            chosen=chosen,
            reason=reason,
        )
        node.selection = selection
        selections.append(selection)
        if metrics is not None:
            metrics.counter("planner.variant_selected").increment()
            metrics.counter(
                f"planner.variant_selected.{chosen}"
            ).increment()
    return selections


class Lowering:
    """Lowers one bound+optimized logical tree to physical operators."""

    def __init__(
        self,
        context: ExecutionContext,
        options,
        modeljoin_factory,
        partition_index: int | None = None,
    ):
        self.context = context
        self.options = options
        self.modeljoin_factory = modeljoin_factory
        self.partition_index = partition_index
        self._factory_takes_variant = (
            modeljoin_factory is not None
            and _accepts_keyword(modeljoin_factory, "variant")
        )

    def lower(self, node: LogicalNode) -> PhysicalOperator:
        if isinstance(node, LogicalScan):
            return self._lower_scan(node)
        if isinstance(node, LogicalSubquery):
            inner = self.lower(node.inner)
            names = [
                f"{node.binding}.{name}" for name in inner.schema.names
            ]
            return RenameOperator(self.context, inner, names)
        if isinstance(node, LogicalFilter):
            child = self.lower(node.child)
            return FilterOperator(
                self.context, child, conjoin(node.conjuncts)
            )
        if isinstance(node, LogicalJoin):
            return self._lower_join(node)
        if isinstance(node, LogicalModelJoin):
            return self._lower_model_join(node)
        if isinstance(node, LogicalProject):
            child = self.lower(node.child)
            return ProjectOperator(
                self.context, child, node.expressions, node.names
            )
        if isinstance(node, LogicalAggregate):
            return self._lower_aggregate(node)
        if isinstance(node, LogicalDistinct):
            child = self.lower(node.child)
            return HashAggregate(
                self.context,
                child,
                [ColumnRef(name) for name in child.schema.names],
                list(child.schema.names),
                [],
            )
        if isinstance(node, LogicalOrderBy):
            return self._lower_order_by(node)
        if isinstance(node, LogicalLimit):
            child = self.lower(node.child)
            return LimitOperator(
                self.context, child, node.limit, node.offset
            )
        raise PlanError(
            f"cannot lower logical node {type(node).__name__}"
        )  # pragma: no cover - all node types are handled above

    # ------------------------------------------------------------------
    def _lower_scan(self, node: LogicalScan) -> PhysicalOperator:
        scan_partition = self.partition_index
        if (
            self.partition_index is not None
            and node.table.num_partitions == 1
        ):
            scan_partition = None  # broadcast unpartitioned tables
        columns = (
            node.columns
            if len(node.columns) < len(node.table.schema)
            else None
        )
        scan = TableScan(
            self.context,
            node.table,
            ranges=node.ranges or None,
            partition_index=scan_partition,
            columns=columns,
        )
        names = [f"{node.binding}.{name}" for name in node.columns]
        return RenameOperator(self.context, scan, names)

    def _lower_join(self, node: LogicalJoin) -> PhysicalOperator:
        left = self.lower(node.left)
        right = self.lower(node.right)
        if node.left_keys:
            residual = conjoin(node.residual) if node.residual else None
            return HashJoin(
                self.context,
                left,
                right,
                node.left_keys,
                node.right_keys,
                residual,
            )
        # No extracted keys: either a true cross join or unclassified
        # conjuncts (rule engine disabled) applied as a residual filter.
        residual_conjuncts = node.residual + node.conjuncts
        joined: PhysicalOperator = CrossJoin(self.context, left, right)
        if residual_conjuncts:
            joined = FilterOperator(
                self.context, joined, conjoin(residual_conjuncts)
            )
        return joined

    def _lower_model_join(
        self, node: LogicalModelJoin
    ) -> PhysicalOperator:
        if self.modeljoin_factory is None:
            raise PlanError(
                "MODEL JOIN is not available: no ModelJoin operator factory "
                "is registered (import repro.core or use Database from "
                "repro, not repro.db)"
            )
        child = self.lower(node.child)
        kwargs = dict(
            context=self.context,
            child=child,
            metadata=node.metadata,
            model_table=node.model_table,
            input_columns=node.input_columns,
            output_prefix=f"{node.binding}.{node.output_prefix}",
            partition_index=self.partition_index,
        )
        if self._factory_takes_variant and node.selection is not None:
            kwargs["variant"] = node.selection.chosen
        return self.modeljoin_factory(**kwargs)

    def _lower_aggregate(
        self, node: LogicalAggregate
    ) -> PhysicalOperator:
        child = self.lower(node.child)
        if getattr(self.options, "use_ordered_aggregation", True) and all(
            isinstance(expression, ColumnRef)
            for expression in node.group_exprs
        ):
            keys = {
                expression.name.lower()
                for expression in node.group_exprs
            }
            prefix = {
                name.lower() for name in child.ordering[: len(keys)]
            }
            if prefix == keys:
                return OrderedAggregate(
                    self.context,
                    child,
                    node.group_exprs,
                    node.group_names,
                    node.aggregates,
                )
        if getattr(self.options, "use_segmented_aggregation", False):
            segmented = self._try_segmented_aggregate(child, node)
            if segmented is not None:
                return segmented
        return HashAggregate(
            self.context,
            child,
            node.group_exprs,
            node.group_names,
            node.aggregates,
        )

    def _try_segmented_aggregate(
        self, child: PhysicalOperator, node: LogicalAggregate
    ) -> PhysicalOperator | None:
        """Use SegmentedAggregate when the input ordering covers a
        proper, non-empty prefix of the group keys (paper §4.4)."""
        bare = {}
        for index, expression in enumerate(node.group_exprs):
            if isinstance(expression, ColumnRef):
                bare.setdefault(expression.name.lower(), index)
        prefix_indices: list[int] = []
        seen: set[int] = set()
        for name in child.ordering:
            index = bare.get(name.lower())
            if index is None or index in seen:
                break
            prefix_indices.append(index)
            seen.add(index)
        if not prefix_indices or len(prefix_indices) >= len(
            node.group_exprs
        ):
            return None
        order = prefix_indices + [
            index
            for index in range(len(node.group_exprs))
            if index not in seen
        ]
        return SegmentedAggregate(
            self.context,
            child,
            [node.group_exprs[index] for index in order],
            [node.group_names[index] for index in order],
            node.aggregates,
            prefix_length=len(prefix_indices),
        )

    def _lower_order_by(self, node: LogicalOrderBy) -> PhysicalOperator:
        child = self.lower(node.child)
        keys = [ColumnRef(name) for name in node.keys]
        for key in keys:
            child.schema.position_of(key.name)  # validate
        # Skip the sort if the required order is already guaranteed.
        wanted = tuple(key.name.lower() for key in keys)
        have = tuple(name.lower() for name in child.ordering)
        if all(node.ascending) and have[: len(wanted)] == wanted:
            return child
        return SortOperator(self.context, child, keys, node.ascending)


def _accepts_keyword(callable_, name: str) -> bool:
    try:
        signature = inspect.signature(callable_)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == name:
            return True
    return False


# ----------------------------------------------------------------------
# EXPLAIN rendering
# ----------------------------------------------------------------------
def render_explain(prepared, physical: PhysicalOperator) -> str:
    """The multi-section EXPLAIN: logical plan, fired rewrite rules,
    ModelJoin variant selection, physical plan."""
    sections = [
        "== Logical Plan ==",
        prepared.logical.render(),
        "",
        "== Rewrite Rules ==",
    ]
    if prepared.firings:
        sections.extend(
            f"{firing.rule}: {firing.detail}"
            for firing in prepared.firings
        )
    else:
        sections.append("(none fired)")
    for selection in prepared.selections:
        sections.append("")
        sections.append("== ModelJoin Variant Selection ==")
        sections.append(
            f"model {selection.model_name}: ~{selection.tuples} input "
            f"tuples, {selection.flops_per_tuple:.0f} flops/tuple"
        )
        for estimate in selection.ranked():
            marker = "  <- chosen" if (
                estimate.variant == selection.chosen
            ) else ""
            plan_note = "in-plan" if estimate.in_plan else "runner"
            sections.append(
                f"  {estimate.variant:<11} "
                f"{estimate.predicted_seconds * 1e3:10.3f} ms "
                f"({plan_note}){marker}"
            )
        if not selection.estimates:
            sections.append(f"  {selection.chosen}  <- chosen")
        sections.append(f"  reason: {selection.reason}")
    sections.append("")
    sections.append("== Physical Plan ==")
    sections.append(physical.explain())
    return "\n".join(sections)
