"""Partitioned columnar tables.

A :class:`Table` is split into a fixed number of partitions (the paper
runs with 12).  Rows are routed to partitions by hashing the partition
key — a unique key yields balanced partitions and, because the ModelJoin
group key ``(ID, Node)`` is derivable from an ``ID`` partitioning, no
repartitioning is ever needed (paper Section 4.4).

Tables may declare a *sort key*: the engine then trusts (and optionally
verifies) that rows arrive in that order per partition, which unlocks
order-based aggregation downstream.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator

import numpy as np

from repro.db.column import BLOCK_SIZE, Block, BlockBuilder, ColumnRange
from repro.db.schema import Schema
from repro.db.vector import VECTOR_SIZE, VectorBatch
from repro.errors import DatabaseError, ExecutionError


class Partition:
    """One horizontal slice of a table, stored as sealed blocks."""

    def __init__(self, schema: Schema, block_size: int = BLOCK_SIZE):
        self.schema = schema
        self._builder = BlockBuilder(schema, block_size)

    @property
    def row_count(self) -> int:
        return self._builder.row_count

    def append(self, batch: VectorBatch) -> None:
        self._builder.append(batch)

    def blocks(self) -> list[Block]:
        return self._builder.all_blocks()

    def nominal_bytes(self) -> int:
        return self._builder.nominal_bytes()

    def scan(
        self,
        ranges: list[ColumnRange] | None = None,
        vector_size: int = VECTOR_SIZE,
    ) -> Iterator[VectorBatch]:
        """Yield vectors, skipping blocks pruned by SMA statistics."""
        ranges = ranges or []
        for block in self.blocks():
            if ranges and not block.may_match(self.schema, ranges):
                continue
            batch = block.to_batch(self.schema)
            for start in range(0, len(batch), vector_size):
                yield batch.slice(start, start + vector_size)


#: process-wide unique table identities (survives DROP + re-CREATE of
#: the same name, so caches keyed by identity can never alias tables)
_next_table_uid = 0
_uid_lock = threading.Lock()


def _allocate_uid() -> int:
    global _next_table_uid
    with _uid_lock:
        uid = _next_table_uid
        _next_table_uid += 1
        return uid


def ensure_uid_floor(minimum: int) -> None:
    """Never hand out a uid below *minimum* again.

    Reopening a persistent database restores tables with their saved
    uids (version-keyed caches, e.g. the model cache, persist entries
    under them); raising the floor keeps later CREATEs from aliasing a
    restored identity.
    """
    global _next_table_uid
    with _uid_lock:
        _next_table_uid = max(_next_table_uid, minimum)


class Table:
    """A named, partitioned, columnar base table."""

    #: whether the table's partitions read their blocks from column
    #: files (see repro.db.storage); scans account file opens when set
    disk_resident = False

    def __init__(
        self,
        name: str,
        schema: Schema,
        num_partitions: int = 1,
        partition_key: str | None = None,
        sort_key: tuple[str, ...] = (),
        block_size: int = BLOCK_SIZE,
    ):
        if num_partitions < 1:
            raise DatabaseError("a table needs at least one partition")
        if partition_key is not None:
            schema.position_of(partition_key)  # validates existence
        for key in sort_key:
            schema.position_of(key)
        self.name = name
        self.schema = schema
        self.partition_key = partition_key
        self.sort_key = tuple(sort_key)
        self.partitions = [
            Partition(schema, block_size) for _ in range(num_partitions)
        ]
        #: identity that distinguishes this table object from any other
        #: ever created (even under the same name)
        self.uid = _allocate_uid()
        #: data version, bumped on every append — caches derived from
        #: the table's contents key on (uid, version)
        self.version = 0

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def row_count(self) -> int:
        return sum(partition.row_count for partition in self.partitions)

    def nominal_bytes(self) -> int:
        return sum(partition.nominal_bytes() for partition in self.partitions)

    def append_batch(self, batch: VectorBatch) -> None:
        """Route the rows of *batch* to their partitions and store them."""
        if len(batch) == 0:
            return
        self.version += 1
        if self.num_partitions == 1:
            self.partitions[0].append(batch)
            return
        if self.partition_key is None:
            # Round-robin in whole batches keeps insertion order per
            # partition, which is what preserves a declared sort key.
            sizes = np.full(self.num_partitions, len(batch) // self.num_partitions)
            sizes[: len(batch) % self.num_partitions] += 1
            start = 0
            for partition, size in zip(self.partitions, sizes):
                partition.append(batch.slice(start, start + int(size)))
                start += int(size)
            return
        keys = batch.column(self.partition_key)
        if keys.dtype == object:
            hashes = np.fromiter(
                (hash(key) for key in keys), dtype=np.int64, count=len(keys)
            )
        else:
            hashes = keys.astype(np.int64, copy=False)
        assignment = np.abs(hashes) % self.num_partitions
        for index, partition in enumerate(self.partitions):
            mask = assignment == index
            if mask.any():
                partition.append(batch.filter(mask))

    def append_columns(self, **columns: np.ndarray) -> None:
        """Convenience bulk load from named arrays."""
        batch = VectorBatch.from_dict(self.schema, columns)
        self.append_batch(batch)

    def append_rows(self, rows: list[tuple]) -> None:
        """Load Python row tuples (used by INSERT ... VALUES)."""
        if not rows:
            return
        columns: dict[str, np.ndarray] = {}
        for position, column in enumerate(self.schema):
            values = [row[position] for row in rows]
            if column.sql_type.numpy_dtype == np.dtype(object):
                columns[column.name] = np.array(values, dtype=object)
            else:
                columns[column.name] = np.asarray(
                    values, dtype=column.sql_type.numpy_dtype
                )
        self.append_batch(VectorBatch(self.schema, list(columns.values())))

    def scan_partition(
        self,
        partition_index: int,
        ranges: list[ColumnRange] | None = None,
        vector_size: int = VECTOR_SIZE,
    ) -> Iterator[VectorBatch]:
        if not 0 <= partition_index < self.num_partitions:
            raise ExecutionError(
                f"table {self.name!r} has no partition {partition_index}"
            )
        return self.partitions[partition_index].scan(ranges, vector_size)

    def scan(
        self,
        ranges: list[ColumnRange] | None = None,
        vector_size: int = VECTOR_SIZE,
    ) -> Iterator[VectorBatch]:
        """Scan all partitions in order."""
        for partition in self.partitions:
            yield from partition.scan(ranges, vector_size)
