"""Columnar, vectorized, partition-parallel SQL engine substrate.

This package is the stand-in for the Actian Vector (x100) engine used by
the paper.  It provides:

- block-wise columnar storage with Small Materialized Aggregates
  (min/max zone maps) enabling block pruning (:mod:`repro.db.column`),
- a Volcano-style vectorized executor working on batches of 1024 values
  (:mod:`repro.db.operators`),
- a SQL frontend (lexer, parser, planner) for the dialect needed by the
  ML-To-SQL code generator plus the ``MODEL JOIN`` extension
  (:mod:`repro.db.sql`, :mod:`repro.db.planner`),
- vectorized Python UDFs with an explicit marshalling boundary
  (:mod:`repro.db.udf`),
- partitioned parallel execution (:mod:`repro.db.parallel`) and
- engine-side memory accounting (:mod:`repro.db.profiler`).

The public entry point is :class:`repro.db.engine.Database`.
"""

from repro.db.engine import Database, Result
from repro.db.schema import Column, Schema
from repro.db.types import SqlType

__all__ = ["Database", "Result", "Schema", "Column", "SqlType"]
