"""Pipeline-fusing query compilation (PR6, ROADMAP item 3).

Turns bound expression trees and adjacent filter→project→aggregate
operator chains into generated, cached NumPy kernels:

* :class:`~repro.db.compile.kernels.CompiledExpr` — one scalar or
  predicate expression compiled to a single vectorized callable.
* :class:`~repro.db.compile.fuse.FusedPipeline` — a filter→project
  chain fused into one kernel with short-circuit mask narrowing; the
  same kernels feed the aggregate operators as *input kernels*.
* :class:`~repro.db.compile.kernels.CompiledKernelCache` — engine-
  lifetime LRU keyed on the generated source text (which embeds every
  constant and, for ModelJoin epilogue fusion, the model table's
  uid/version, making text equality the invalidation rule).

The lowering (:mod:`repro.db.plan.physical`) drives compilation; the
engine owns the cache and a compile circuit breaker, and reverts a
query to the interpreted path (``use_compiled_kernels=False``) on the
first :class:`~repro.errors.CompiledKernelError`.
"""

from repro.db.compile.codegen import (
    NonCompilable,
    compile_range_checker,
)
from repro.db.compile.fuse import FusedPipeline
from repro.db.compile.kernels import (
    CompiledExpr,
    CompiledKernelCache,
    FusedKernel,
    KernelCompiler,
    KernelOutput,
    KernelSpec,
    generate_expression_source,
    generate_kernel_source,
    project_outputs,
)

__all__ = [
    "CompiledExpr",
    "CompiledKernelCache",
    "FusedKernel",
    "FusedPipeline",
    "KernelCompiler",
    "KernelOutput",
    "KernelSpec",
    "NonCompilable",
    "compile_range_checker",
    "generate_expression_source",
    "generate_kernel_source",
    "project_outputs",
]
