"""Expression-tree → vectorized NumPy source generation.

The code generator turns a bound scalar expression tree (or a whole
filter→project pipeline, see :func:`generate_kernel_source`) into the
source text of one Python function that evaluates it with NumPy array
operations.  The generated source is the *complete* description of the
kernel — every literal constant is declared inside the text — so the
source string doubles as the cache key for the
:class:`~repro.db.compile.kernels.CompiledKernelCache`.

Bit-exactness with the interpreted path is the hard invariant.  Three
details matter:

* Literals are materialized as typed NumPy scalars of the literal's
  SQL storage dtype (``k0 = np.dtype('float64').type(0.5)``) and used
  directly as operands: under NEP 50 a typed scalar promotes exactly
  like the full-length ``np.full`` the interpreted
  :meth:`~repro.db.expressions.Literal.evaluate` allocates, with
  neither the allocation nor broadcast machinery (ufuncs fast-path
  scalar operands).  VARCHAR literals stay one-element object arrays.
  Only a *top-level* result that references no columns (a constant
  predicate or output) is explicitly broadcast to the batch length,
  because its consumer needs a ``(n,)`` array.
* Conjuncts are applied with *adaptive short-circuit mask narrowing*:
  after each conjunct, surviving rows are gathered and the columns
  still needed are narrowed when the mask is selective (at most half
  the rows survive); an unselective mask is deferred and ``&``-combined
  into the next conjunct instead, so mostly-true predicates do not pay
  for repeated gathers.  Every operation is elementwise, so either
  order yields the same surviving set as the interpreted full-vector
  ``&`` of all masks.
* Anything whose interpreted semantics cannot be reproduced exactly
  (CAST to VARCHAR's per-value ``str()`` loop, logical operators over
  non-boolean operands, which must keep raising from the interpreted
  operator) raises :class:`NonCompilable` and the lowering keeps the
  interpreted operator for that pipeline.
"""

from __future__ import annotations

import math
import re

import numpy as np

from repro.db.expressions import (
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    UnaryOp,
)
from repro.db.functions import lookup_function
from repro.db.schema import Schema
from repro.db.types import SqlType


class NonCompilable(Exception):
    """Internal signal: the expression has no exact compiled form."""


#: SQL operator -> Python/NumPy operator for direct emission.
_BINARY_OPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "=": "==",
    "<>": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "AND": "&",
    "OR": "|",
}

_LOGICAL = {"AND", "OR"}


def _case_when_default(conditions, values, n):
    """``np.select`` with the interpreted CASE's implicit default.

    Mirrors :meth:`repro.db.expressions.CaseWhen.evaluate` for a CASE
    without an ELSE branch: zeros of the common value dtype, or an
    object array of ``None`` for VARCHAR branches.
    """
    result_dtype = np.result_type(*values) if values else np.float64
    if result_dtype == object:
        default = np.full(n, None, dtype=object)
    else:
        default = np.zeros(n, dtype=result_dtype)
    return np.select(conditions, values, default=default)


class SourceBuilder:
    """Accumulates the constants and name bindings of one kernel."""

    def __init__(self, schema: Schema):
        self.schema = schema
        #: declaration lines hoisted above the generated function
        self.const_lines: list[str] = []
        #: (rendered value, dtype name) -> const variable name
        self._const_names: dict[tuple[str, str], str] = {}
        #: exec() globals for the generated module
        self.bindings: dict[str, object] = {
            "np": np,
            "CASE_WHEN_DEFAULT": _case_when_default,
        }
        #: schema positions read by the generated code
        self.used_positions: set[int] = set()

    def column(self, name: str) -> str:
        position = self.schema.position_of(name)
        self.used_positions.add(position)
        return f"c{position}"

    def constant(self, value: object, sql_type: SqlType) -> str:
        """Declare (or reuse) a typed constant for a literal.

        Numeric and boolean literals become NumPy scalars of the SQL
        storage dtype: a typed scalar promotes exactly like the
        full-length typed array the interpreted
        :meth:`~repro.db.expressions.Literal.evaluate` allocates
        (NEP 50), and ufuncs take the faster scalar operand path.
        VARCHAR literals keep the one-element object array, whose
        elementwise comparison semantics a plain ``str`` would change.
        """
        rendered = render_value(value)
        dtype = sql_type.numpy_dtype
        key = (rendered, dtype.name)
        name = self._const_names.get(key)
        if name is None:
            name = f"k{len(self._const_names)}"
            self._const_names[key] = name
            if dtype == object:
                declaration = (
                    f"{name} = np.full(1, {rendered}, "
                    "dtype=np.dtype('object'))"
                )
            else:
                declaration = (
                    f"{name} = np.dtype({dtype.name!r}).type({rendered})"
                )
            self.const_lines.append(declaration)
        return name

    def function(self, name: str):
        """Bind a registered scalar function, returning its local name."""
        implementation = lookup_function(name).implementation
        local = "F_" + re.sub(r"[^A-Za-z0-9_]", "_", name.upper())
        bound = self.bindings.get(local)
        if bound is not None and bound is not implementation:
            raise NonCompilable(f"function name collision for {name!r}")
        self.bindings[local] = implementation
        return local


def render_value(value: object) -> str:
    """Render a literal value as Python source (non-finite floats too)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "float('nan')"
        if math.isinf(value):
            return "float('inf')" if value > 0 else "float('-inf')"
        return repr(value)
    if isinstance(value, (bool, int, str)) or value is None:
        return repr(value)
    raise NonCompilable(f"literal {value!r} has no source rendering")


def emit(expression: Expression, builder: SourceBuilder) -> str:
    """Source text computing *expression* over the current batch.

    The text references column locals ``c<pos>``, the running length
    variable ``n`` and the const/function names declared on *builder*.
    """
    if isinstance(expression, ColumnRef):
        return builder.column(expression.name)
    if isinstance(expression, Literal):
        return builder.constant(expression.value, expression.sql_type)
    if isinstance(expression, BinaryOp):
        operator = _BINARY_OPS.get(expression.operator)
        if operator is None:
            raise NonCompilable(
                f"unknown binary operator {expression.operator!r}"
            )
        if expression.operator in _LOGICAL:
            # The interpreted path raises ExecutionError on non-boolean
            # operands; keep that behavior by refusing to compile.
            for operand in (expression.left, expression.right):
                if operand.output_type(builder.schema) is not SqlType.BOOLEAN:
                    raise NonCompilable(
                        f"{expression.operator} over non-boolean operand"
                    )
        left = emit(expression.left, builder)
        right = emit(expression.right, builder)
        return f"({left} {operator} {right})"
    if isinstance(expression, UnaryOp):
        if expression.operator == "-":
            return f"(-{emit(expression.operand, builder)})"
        if expression.operator == "NOT":
            if expression.operand.output_type(builder.schema) is not (
                SqlType.BOOLEAN
            ):
                raise NonCompilable("NOT over non-boolean operand")
            return f"(~{emit(expression.operand, builder)})"
        raise NonCompilable(f"unknown unary operator {expression.operator!r}")
    if isinstance(expression, FunctionCall):
        local = builder.function(expression.name)
        arguments = ", ".join(
            emit(argument, builder) for argument in expression.arguments
        )
        return f"{local}({arguments})"
    if isinstance(expression, CaseWhen):
        for condition, _ in expression.branches:
            if condition.output_type(builder.schema) is not SqlType.BOOLEAN:
                raise NonCompilable("CASE condition is not boolean")
        conditions = ", ".join(
            emit(condition, builder) for condition, _ in expression.branches
        )
        values = ", ".join(
            emit(value, builder) for _, value in expression.branches
        )
        if expression.otherwise is not None:
            default = emit(expression.otherwise, builder)
            return (
                f"np.select([{conditions}], [{values}], default={default})"
            )
        return f"CASE_WHEN_DEFAULT([{conditions}], [{values}], n)"
    if isinstance(expression, Cast):
        if expression.target is SqlType.VARCHAR:
            # Interpreted CAST..AS VARCHAR runs a per-value str() loop;
            # there is no vectorized form with identical semantics.
            raise NonCompilable("CAST to VARCHAR is not vectorizable")
        operand = emit(expression.operand, builder)
        dtype_name = expression.target.numpy_dtype.name
        return (
            f"({operand}).astype(np.dtype({dtype_name!r}), copy=False)"
        )
    raise NonCompilable(f"no compiled form for {type(expression).__name__}")


def emit_output(
    expression: Expression, builder: SourceBuilder
) -> str:
    """Like :func:`emit`, but for a top-level output position.

    A bare literal output allocates a writable full-length array (the
    one-element const used *inside* expressions has the wrong shape
    for an output, and the interpreted path hands consumers a fresh
    ``np.full``).
    """
    if isinstance(expression, Literal):
        rendered = render_value(expression.value)
        dtype_name = expression.sql_type.numpy_dtype.name
        return f"np.full(n, {rendered}, dtype=np.dtype({dtype_name!r}))"
    return emit(expression, builder)


def aliasing_column(expression: Expression) -> str | None:
    """Name of the input column the expression's result may alias.

    ``ColumnRef`` returns the input array itself, and a numeric
    ``Cast`` chain with ``copy=False`` passes it through whenever the
    dtype already matches.  Every other node allocates a fresh array.
    """
    while isinstance(expression, Cast):
        expression = expression.operand
    if isinstance(expression, ColumnRef):
        return expression.name.lower()
    return None


def compile_range_checker(schema: Schema, ranges) -> object | None:
    """Zone-map predicate checker with column positions pre-resolved.

    The interpreted :func:`repro.db.column.stats_may_match` re-resolves
    each predicate's column name for every block; scans on disk-backed
    tables call it once per block per query.  This compiles the name
    lookups away: the returned ``may_match(stats)`` closure only indexes
    the positionally aligned per-block stats list.

    Returns ``None`` when no predicate applies to *schema* (callers
    then skip the check entirely).
    """
    resolved = []
    for predicate in ranges:
        if not schema.has_column(predicate.column):
            continue
        resolved.append(
            (schema.position_of(predicate.column), predicate.low,
             predicate.high)
        )
    if not resolved:
        return None

    def may_match(stats) -> bool:
        for position, low, high in resolved:
            stat = stats[position]
            if stat is not None and not stat.may_contain_range(low, high):
                return False
        return True

    return may_match
