"""The fused pipeline operator executing one compiled kernel per batch.

A :class:`FusedPipeline` replaces an adjacent filter→project chain (or
a bare filter, whose outputs are then the pass-through of the child
schema) with a single operator that calls one generated kernel per
input batch.  The kernel applies all filter conjuncts with mask
narrowing and computes all outputs in one pass, so per-batch Python
interpretation of the expression trees disappears from the hot loop.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.db.compile.kernels import FusedKernel, KernelSpec
from repro.db.expressions import ColumnRef
from repro.db.operators.base import (
    ExecutionContext,
    PhysicalOperator,
    UnaryOperator,
)
from repro.db.schema import Column, Schema
from repro.db.vector import VectorBatch


class FusedPipeline(UnaryOperator):
    """Filter + projection fused into one compiled kernel call."""

    morsel_streaming = True

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        kernel: FusedKernel,
        spec: KernelSpec,
    ):
        columns = tuple(
            Column(output.name, output.expression.output_type(child.schema))
            for output in spec.outputs
        )
        super().__init__(context, Schema(columns), child)
        self.kernel = kernel
        self.spec = spec

    def open(self) -> None:
        super().open()
        # Marks the query as compiled in its resource profile (the
        # query log's ``compiled`` flag reads this counter).
        self.context.counters.increment("compile.fused_pipelines")

    @property
    def compiled_source(self) -> str:
        """Generated kernel source (rendered by EXPLAIN)."""
        return self.kernel.source

    @property
    def ordering(self) -> tuple[str, ...]:
        # Same rule as ProjectOperator: ordering survives for leading
        # ordering columns that pass through as bare references (the
        # fused filter preserves relative row order).
        passthrough: dict[str, str] = {}
        for output in self.spec.outputs:
            if isinstance(output.expression, ColumnRef):
                passthrough.setdefault(
                    output.expression.name.lower(), output.name
                )
        preserved: list[str] = []
        for key in self.child.ordering:
            new_name = passthrough.get(key.lower())
            if new_name is None:
                break
            preserved.append(new_name)
        return tuple(preserved)

    def _produce(self) -> Iterator[VectorBatch]:
        kernel = self.kernel
        cancellation = self.context.cancellation
        for batch in self.child.next_batches():
            if len(batch) == 0:
                continue
            arrays = kernel(batch.arrays, len(batch), cancellation)
            if arrays is None:
                continue
            yield VectorBatch(self.schema, arrays)

    def describe(self) -> str:
        parts = []
        if self.spec.predicates:
            rendered = " AND ".join(
                str(predicate) for predicate in self.spec.predicates
            )
            parts.append(f"filter: {rendered}")
        rendered = ", ".join(
            f"{output.expression} AS {output.name}"
            for output in self.spec.outputs
        )
        parts.append(f"project: {rendered}")
        return f"FusedPipeline({' | '.join(parts)}) [compiled]"
