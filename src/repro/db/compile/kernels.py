"""Compiled kernels: specs, the LRU cache, and the compiler front-end.

A :class:`KernelSpec` describes one fused pipeline segment — optional
filter conjuncts plus a list of outputs over one input schema.  The
compiler renders it to Python source (:func:`generate_kernel_source`),
``exec``'s it once, and wraps the resulting function in a
:class:`FusedKernel` whose call path adds the ``compile.kernel`` fault
site and converts unexpected errors into
:class:`~repro.errors.KernelExecutionError` so the engine's one-shot
fallback can revert the query to the interpreted path.

Kernels are cached engine-lifetime in a :class:`CompiledKernelCache`
keyed on the generated source text.  Because every constant (and, for
ModelJoin epilogue fusion, the model table's ``uid``/``version``
header) is embedded in the source, the text is a complete plan
signature: a model republish or version bump changes the header and
misses the cache, exactly like the PR1 ModelCache keying.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.db import faults
from repro.db.compile.codegen import (
    NonCompilable,
    SourceBuilder,
    aliasing_column,
    emit,
    emit_output,
)
from repro.db.expressions import Expression, Literal
from repro.db.schema import Schema
from repro.db.tracing import NULL_TRACER
from repro.db.types import SqlType
from repro.errors import (
    KernelCompileError,
    KernelExecutionError,
    QueryTimeoutError,
)


@dataclass(frozen=True)
class KernelOutput:
    """One output position of a fused kernel.

    ``expression is None`` is the COUNT sentinel: the kernel emits a
    ones vector (the aggregate argument the interpreted path produces
    for ``COUNT``).  ``dtype`` is the coercion target for projection
    outputs; ``None`` keeps the raw evaluation result (filter
    pass-through and aggregate inputs, which the consuming operator
    coerces after reduction, exactly like the interpreted path).
    """

    name: str
    expression: Expression | None
    dtype: np.dtype | None = None


@dataclass
class KernelSpec:
    """A fused filter→project (or aggregate-input) pipeline segment."""

    schema: Schema
    predicates: tuple[Expression, ...] = ()
    outputs: tuple[KernelOutput, ...] = ()
    #: lowercase names of input columns backed by reused buffers (the
    #: ModelJoin arena views); pass-through outputs of these are copied
    transient: frozenset = frozenset()
    #: extra comment lines baked into the source (cache-key salt, e.g.
    #: the fused ModelJoin's model-table identity)
    header: tuple[str, ...] = ()
    label: str = "pipeline"


def project_outputs(
    expressions, names, schema: Schema
) -> tuple[KernelOutput, ...]:
    """Projection outputs with the interpreted coercion behavior.

    Mirrors :class:`~repro.db.operators.project.ProjectOperator`: each
    value is cast to its output column's storage dtype, except VARCHAR
    results, which stay object arrays untouched.
    """
    outputs = []
    for expression, name in zip(expressions, names):
        output_type = expression.output_type(schema)
        dtype = (
            None
            if output_type is SqlType.VARCHAR
            else output_type.numpy_dtype
        )
        outputs.append(KernelOutput(name, expression, dtype))
    return tuple(outputs)


def generate_kernel_source(spec: KernelSpec) -> tuple[str, dict]:
    """Render *spec* to module source plus its ``exec`` bindings.

    Raises :class:`~repro.db.compile.codegen.NonCompilable` when any
    piece of the spec has no exact compiled form.
    """
    schema = spec.schema
    builder = SourceBuilder(schema)

    predicate_texts: list[str] = []
    predicate_refs: list[set[int]] = []
    for predicate in spec.predicates:
        if predicate.output_type(schema) is not SqlType.BOOLEAN:
            # interpreted FilterOperator raises; keep it interpreted
            raise NonCompilable(f"predicate is not boolean: {predicate}")
        text = emit(predicate, builder)
        references = predicate.referenced_columns()
        if not references:
            # constant predicate: the (1,) const must become a (n,) mask
            text = f"np.broadcast_to({text}, n)"
        predicate_texts.append(text)
        predicate_refs.append(
            {schema.position_of(name) for name in references}
        )

    output_texts: list[str] = []
    output_refs: set[int] = set()
    guarded: list[bool] = []
    for output in spec.outputs:
        if output.expression is None:
            output_texts.append("np.ones(n, dtype=np.int64)")
            guarded.append(False)
            continue
        text = emit_output(output.expression, builder)
        if output.dtype is not None:
            text = (
                f"({text}).astype(np.dtype({output.dtype.name!r}), "
                "copy=False)"
            )
        if not output.expression.referenced_columns() and not isinstance(
            output.expression, Literal
        ):
            # constant-folded expression: (1,) result -> writable (n,)
            text = f"np.broadcast_to({text}, n).copy()"
        output_texts.append(text)
        output_refs |= {
            schema.position_of(name)
            for name in output.expression.referenced_columns()
        }
        alias = aliasing_column(output.expression)
        guarded.append(alias is not None and alias in spec.transient)

    track_narrowing = any(guarded) and bool(spec.predicates)

    lines = [f"# kernel: {spec.label}"]
    lines.extend(spec.header)
    lines.extend(builder.const_lines)
    lines.append("")
    lines.append("def kernel(arrays, n, cancel):")
    lines.append("    if cancel is not None:")
    lines.append("        cancel.check()")
    for position in sorted(builder.used_positions):
        lines.append(f"    c{position} = arrays[{position}]")
    if track_narrowing:
        lines.append("    narrowed = False")
    if len(predicate_texts) > 1:
        lines.append("    pending = None")
    for index, text in enumerate(predicate_texts):
        last = index + 1 == len(predicate_texts)
        surviving = output_refs.union(*predicate_refs[index + 1:], set())
        narrow = sorted(surviving & builder.used_positions)
        lines.append(
            f"    # filter {index + 1}/{len(predicate_texts)}: "
            f"{spec.predicates[index]}"
        )
        lines.append(f"    m = {text}")
        if index > 0:
            lines.append("    if pending is not None:")
            lines.append("        m = m & pending")
            lines.append("        pending = None")
        lines.append("    if not m.all():")
        lines.append("        kept = np.count_nonzero(m)")
        lines.append("        if kept == 0:")
        lines.append("            return None")
        # Adaptive narrowing: gather only a selective mask; defer an
        # unselective one into the next conjunct's `&` instead.  The
        # last conjunct always gathers — outputs need narrowed columns.
        indent = "        "
        if not last:
            lines.append("        if 2 * kept <= n:")
            indent = "            "
        if track_narrowing:
            lines.append(indent + "narrowed = True")
        lines.append(indent + "sel = np.flatnonzero(m)")
        lines.append(indent + "n = kept")
        for position in narrow:
            lines.append(indent + f"c{position} = c{position}[sel]")
        if not last:
            lines.append("        else:")
            lines.append("            pending = m")
    for index, output in enumerate(spec.outputs):
        described = (
            "COUNT" if output.expression is None else str(output.expression)
        )
        lines.append(f"    # output {output.name}: {described}")
        lines.append(f"    o{index} = {output_texts[index]}")
        if guarded[index]:
            # pass-through of a reused-buffer view: detach unless the
            # gather above already materialized a fresh array
            if track_narrowing:
                lines.append("    if not narrowed:")
                lines.append(f"        o{index} = o{index}.copy()")
            else:
                lines.append(f"    o{index} = o{index}.copy()")
    returns = ", ".join(f"o{index}" for index in range(len(spec.outputs)))
    lines.append(f"    return [{returns}]")
    return "\n".join(lines) + "\n", builder.bindings


def generate_expression_source(
    expression: Expression, schema: Schema
) -> tuple[str, dict]:
    """Source of a single compiled expression (``CompiledExpr``)."""
    builder = SourceBuilder(schema)
    text = emit_output(expression, builder)
    if not expression.referenced_columns() and not isinstance(
        expression, Literal
    ):
        # constant-folded expression: (1,) result -> writable (n,)
        text = f"np.broadcast_to({text}, n).copy()"
    lines = [f"# expr: {expression}"]
    lines.extend(builder.const_lines)
    lines.append("")
    lines.append("def expr(arrays, n):")
    for position in sorted(builder.used_positions):
        lines.append(f"    c{position} = arrays[{position}]")
    lines.append(f"    return {text}")
    return "\n".join(lines) + "\n", builder.bindings


class FusedKernel:
    """A compiled pipeline kernel: ``(arrays, n, cancel) -> list | None``.

    ``None`` means every row of the batch was filtered out.  The call
    path fires the ``compile.kernel`` fault site and wraps unexpected
    errors as :class:`~repro.errors.KernelExecutionError`; cooperative
    cancellation passes through untouched.
    """

    __slots__ = ("source", "function", "label")

    def __init__(self, source: str, function, label: str = "kernel"):
        self.source = source
        self.function = function
        self.label = label

    def __call__(self, arrays, n, cancel=None):
        try:
            if faults.ACTIVE is not None:
                faults.ACTIVE.fire("compile.kernel")
            return self.function(arrays, n, cancel)
        except QueryTimeoutError:
            raise
        except Exception as error:
            raise KernelExecutionError(
                f"compiled kernel {self.label!r} failed: {error}"
            ) from error


class CompiledExpr:
    """One scalar/predicate expression compiled to a vectorized callable."""

    __slots__ = ("source", "function", "label")

    def __init__(self, source: str, function, label: str = "expr"):
        self.source = source
        self.function = function
        self.label = label

    def evaluate(self, batch) -> np.ndarray:
        try:
            if faults.ACTIVE is not None:
                faults.ACTIVE.fire("compile.kernel")
            return self.function(batch.arrays, len(batch))
        except QueryTimeoutError:
            raise
        except Exception as error:
            raise KernelExecutionError(
                f"compiled expression {self.label!r} failed: {error}"
            ) from error


class CompiledKernelCache:
    """Engine-lifetime LRU of compiled kernels keyed by source text.

    The source embeds every constant and the fused model table's
    ``uid``/``version`` header, so plain text equality is the correct
    invalidation rule — bump a model table and its epilogue kernels
    miss, just as the ModelCache misses on a model version bump.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, source: str):
        with self._lock:
            entry = self._entries.get(source)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(source)
            self.hits += 1
            return entry

    def put(self, source: str, kernel) -> None:
        with self._lock:
            self._entries[source] = kernel
            self._entries.move_to_end(source)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


@dataclass
class KernelCompiler:
    """Front-end the lowering uses to build kernels.

    Returns ``None`` (keep the interpreted operator) for anything
    :class:`NonCompilable`; source that fails to ``exec`` records a
    failure on the compile circuit breaker and also falls back, so a
    code-generator bug degrades to interpreted execution instead of
    failing queries.
    """

    cache: CompiledKernelCache | None = None
    metrics: object | None = None
    tracer: object = NULL_TRACER
    breaker: object | None = None
    compiled_count: int = field(default=0, init=False)

    def compile_kernel(self, spec: KernelSpec) -> FusedKernel | None:
        try:
            source, bindings = generate_kernel_source(spec)
        except NonCompilable:
            return None
        except Exception:
            return None
        try:
            return self._build(
                source, bindings, "kernel",
                lambda src, fn: FusedKernel(src, fn, label=spec.label),
            )
        except KernelCompileError:
            return None

    def compile_expression(
        self, expression: Expression, schema: Schema
    ) -> CompiledExpr | None:
        try:
            source, bindings = generate_expression_source(expression, schema)
        except NonCompilable:
            return None
        except Exception:
            return None
        try:
            return self._build(
                source, bindings, "expr",
                lambda src, fn: CompiledExpr(src, fn, label=str(expression)),
            )
        except KernelCompileError:
            return None

    def _build(self, source: str, bindings: dict, entry: str, wrap):
        if self.metrics is not None:
            self.metrics.counter("compile.requests").increment()
        if self.cache is not None:
            cached = self.cache.get(source)
            if cached is not None:
                if self.metrics is not None:
                    self.metrics.counter("compile.cache_hit").increment()
                return cached
        started = time.perf_counter()
        try:
            with self.tracer.span(
                f"compile.{entry}", category="compile",
                args={"chars": len(source)},
            ):
                namespace = dict(bindings)
                code = compile(source, "<repro.db.compile>", "exec")
                exec(code, namespace)  # noqa: S102 - engine-generated source
                kernel = wrap(source, namespace[entry])
        except Exception as error:
            if self.breaker is not None:
                self.breaker.record_failure()
            if self.metrics is not None:
                self.metrics.counter("compile.errors").increment()
            raise KernelCompileError(
                f"generated kernel failed to compile: {error}"
            ) from error
        elapsed = time.perf_counter() - started
        self.compiled_count += 1
        if self.metrics is not None:
            self.metrics.histogram("compile.time").observe(elapsed)
        if self.cache is not None:
            self.cache.put(source, kernel)
        return kernel
