"""Lightweight per-block compression codecs.

Each storage block of a column is encoded independently with one of
four codecs, chosen per block by sampling the block's values:

==========  ================================================================
codec       layout of the payload (all integers little-endian)
==========  ================================================================
``plain``   the values verbatim in the column's storage dtype; VARCHAR
            is UTF-8 with a ``uint32`` length prefix per value
``rle``     run-length encoding: the run values (plain-encoded) followed
            by one ``uint32`` run length per run
``dict``    dictionary encoding: the distinct values (plain-encoded)
            followed by bit-packed codes, ``ceil(log2(k))`` bits each
``bitpack``  frame-of-reference bit packing for integers: each value is
            stored as ``value - min`` in the fewest bits that hold
            ``max - min`` (LSB-first within the packed stream)
``sequence``  constant-delta integer sequences (row ids, dense keys):
            the payload is empty — only ``start`` and ``step`` are
            stored, and decode is a single ``arange``
==========  ================================================================

Decoding is bit-exact: ``decode(encode(a)) == a`` for every supported
dtype, including NaN floats (plain/rle keep the exact bit pattern).
The chooser estimates each candidate's encoded size from a small sample
and keeps ``plain`` unless a codec wins by a real margin, so scans never
pay a decompression tax for no space gain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.db.types import SqlType
from repro.errors import ExecutionError

PLAIN = "plain"
RLE = "rle"
DICT = "dict"
BITPACK = "bitpack"
SEQUENCE = "sequence"

CODECS = (PLAIN, RLE, DICT, BITPACK, SEQUENCE)

#: values inspected when choosing a codec for a block
SAMPLE_ROWS = 512

#: a non-plain codec must beat plain by at least this factor
MIN_GAIN = 0.9


@dataclass(frozen=True)
class Encoded:
    """One encoded block payload plus the parameters to decode it."""

    codec: str
    payload: bytes
    params: dict


def _le_dtype(sql_type: SqlType) -> np.dtype:
    """The little-endian on-disk dtype of *sql_type* (non-VARCHAR)."""
    return sql_type.numpy_dtype.newbyteorder("<")


# ----------------------------------------------------------------------
# plain
# ----------------------------------------------------------------------
def _plain_encode(array: np.ndarray, sql_type: SqlType) -> bytes:
    if sql_type is SqlType.VARCHAR:
        texts = [
            value.encode("utf-8") if isinstance(value, str) else bytes(value)
            for value in array.tolist()
        ]
        lengths = np.array([len(t) for t in texts], dtype="<u4")
        return lengths.tobytes() + b"".join(texts)
    return np.ascontiguousarray(array, dtype=_le_dtype(sql_type)).tobytes()


def _plain_decode(
    payload: bytes, sql_type: SqlType, rows: int
) -> np.ndarray:
    if sql_type is SqlType.VARCHAR:
        lengths = np.frombuffer(payload, dtype="<u4", count=rows)
        out = np.empty(rows, dtype=object)
        position = 4 * rows
        for index, length in enumerate(lengths.tolist()):
            out[index] = payload[position : position + length].decode("utf-8")
            position += length
        return out
    array = np.frombuffer(payload, dtype=_le_dtype(sql_type), count=rows)
    return array.astype(sql_type.numpy_dtype, copy=False)


# ----------------------------------------------------------------------
# run-length
# ----------------------------------------------------------------------
def _run_starts(array: np.ndarray) -> np.ndarray:
    change = np.empty(len(array), dtype=bool)
    change[0] = True
    if array.dtype.kind == "f":
        # NaN != NaN would split NaN runs; compare the bit patterns.
        bits = array.view(np.uint32 if array.itemsize == 4 else np.uint64)
        change[1:] = bits[1:] != bits[:-1]
    else:
        change[1:] = array[1:] != array[:-1]
    return np.flatnonzero(change)


def _rle_encode(array: np.ndarray, sql_type: SqlType) -> Encoded:
    starts = _run_starts(array)
    values = array[starts]
    lengths = np.diff(np.append(starts, len(array))).astype("<u4")
    payload = _plain_encode(values, sql_type) + lengths.tobytes()
    return Encoded(RLE, payload, {"runs": int(len(values))})


def _rle_decode(
    payload: bytes, params: dict, sql_type: SqlType, rows: int
) -> np.ndarray:
    runs = int(params["runs"])
    value_bytes = runs * _le_dtype(sql_type).itemsize
    values = _plain_decode(payload[:value_bytes], sql_type, runs)
    lengths = np.frombuffer(payload[value_bytes:], dtype="<u4", count=runs)
    return np.repeat(values, lengths)


# ----------------------------------------------------------------------
# bit packing (shared by ``bitpack`` and the ``dict`` code stream)
# ----------------------------------------------------------------------
def _pack_uints(values: np.ndarray, bits: int) -> bytes:
    """Pack non-negative integers below ``2**bits`` LSB-first.

    Stays in C throughout: each value's little-endian bytes expand to a
    64-wide bit row via ``unpackbits``, the low *bits* columns are kept
    and re-packed into one contiguous LSB-first stream.
    """
    rows = np.unpackbits(
        values.astype("<u8").view(np.uint8).reshape(len(values), 8),
        axis=1,
        bitorder="little",
    )[:, :bits]
    return np.packbits(rows, axis=None, bitorder="little").tobytes()


_SHIFT_CACHE: dict[int, np.ndarray] = {}


def _phase_shifts(bits: int, period: int) -> np.ndarray:
    """The per-phase bit shifts as a ``(period, 1)`` broadcast column."""
    cached = _SHIFT_CACHE.get(bits)
    if cached is None:
        cached = np.array(
            [(phase * bits) & 7 for phase in range(period)],
            dtype=np.uint64,
        ).reshape(period, 1)
        _SHIFT_CACHE[bits] = cached
    return cached


def _unpack_uints(payload: bytes, bits: int, rows: int) -> np.ndarray:
    # The bit offsets repeat byte-aligned every ``8 / gcd(bits, 8)``
    # values, so all values with the same phase start at equally spaced
    # byte offsets and a constant bit shift.  One strided u64 load per
    # phase (bits <= 48 always fits the 8-byte window) decodes the
    # block without a per-value gather or any bit-matrix intermediate.
    period = 8 // math.gcd(bits, 8)
    stride = bits * period // 8
    groups = (rows + period - 1) // period
    mask = np.uint64((1 << bits) - 1)
    buffer = payload + b"\x00" * (8 + stride)
    words = np.empty((period, groups), dtype=np.uint64)
    for phase in range(period):
        words[phase] = np.ndarray(
            (groups,),
            dtype="<u8",
            buffer=buffer,
            offset=(phase * bits) >> 3,
            strides=(stride,),
        )
    words >>= _phase_shifts(bits, period)
    words &= mask
    return words.T.reshape(-1)[:rows]


#: widest frame-of-reference delta bit-packing will encode; wider
#: ranges stay plain (the packed stream would barely shrink anyway)
MAX_PACK_BITS = 48


def _bitpack_encode(array: np.ndarray, sql_type: SqlType) -> Encoded:
    reference = int(array.min())
    span = int(array.max()) - reference  # Python ints: no overflow
    if span.bit_length() > MAX_PACK_BITS:
        return Encoded(PLAIN, _plain_encode(array, sql_type), {})
    deltas = (array.astype(np.int64) - reference).astype(np.uint64)
    bits = max(1, span.bit_length())
    return Encoded(
        BITPACK,
        _pack_uints(deltas, bits),
        {"bits": bits, "reference": reference},
    )


def _bitpack_decode(
    payload: bytes, params: dict, sql_type: SqlType, rows: int
) -> np.ndarray:
    values = _unpack_uints(payload, int(params["bits"]), rows).view(
        np.int64
    )
    values += int(params["reference"])  # in place: deltas < 2**48
    return values.astype(sql_type.numpy_dtype, copy=False)


# ----------------------------------------------------------------------
# constant-delta sequence (row ids, dense keys)
# ----------------------------------------------------------------------
_INT64_MAX = np.iinfo(np.int64).max
_INT64_MIN = np.iinfo(np.int64).min


def _sequence_step(array: np.ndarray) -> int | None:
    """The constant delta of *array*, or None if it has none."""
    if len(array) < 2:
        return 0
    deltas = np.diff(array.astype(np.int64, copy=False))
    step = int(deltas[0])
    if not (deltas == step).all():
        return None
    return step


def _sequence_encode(array: np.ndarray, sql_type: SqlType) -> Encoded:
    step = _sequence_step(array)
    start = int(array[0]) if len(array) else 0
    # The decode arange's one-past-the-end stop must fit int64.
    if step is None or not (
        _INT64_MIN <= start + step * len(array) <= _INT64_MAX
    ):
        # The sample looked sequential but the full block is not (or
        # the sequence would overflow); bit packing is the next best.
        return _bitpack_encode(array, sql_type)
    return Encoded(SEQUENCE, b"", {"start": start, "step": step})


def _sequence_decode(
    params: dict, sql_type: SqlType, rows: int
) -> np.ndarray:
    start = int(params["start"])
    step = int(params["step"])
    if step == 0:
        values = np.full(rows, start, dtype=np.int64)
    else:
        values = np.arange(
            start, start + step * rows, step, dtype=np.int64
        )
    return values.astype(sql_type.numpy_dtype, copy=False)


# ----------------------------------------------------------------------
# dictionary
# ----------------------------------------------------------------------
def _dict_encode(array: np.ndarray, sql_type: SqlType) -> Encoded:
    if sql_type is SqlType.VARCHAR:
        # np.unique on object arrays of str works but returns a str
        # array; keep object semantics by round-tripping through lists.
        distinct = sorted(set(array.tolist()))
        lookup = {value: code for code, value in enumerate(distinct)}
        codes = np.fromiter(
            (lookup[value] for value in array.tolist()),
            dtype=np.uint64,
            count=len(array),
        )
        values = np.array(distinct, dtype=object)
    else:
        values, inverse = np.unique(array, return_inverse=True)
        codes = inverse.astype(np.uint64)
    cardinality = len(values)
    bits = max(1, (cardinality - 1).bit_length()) if cardinality else 1
    value_bytes = _plain_encode(values, sql_type)
    payload = value_bytes + _pack_uints(codes, bits)
    return Encoded(
        DICT,
        payload,
        {
            "cardinality": cardinality,
            "bits": bits,
            "values_nbytes": len(value_bytes),
        },
    )


def _dict_decode(
    payload: bytes, params: dict, sql_type: SqlType, rows: int
) -> np.ndarray:
    cardinality = int(params["cardinality"])
    value_bytes = int(params["values_nbytes"])
    values = _plain_decode(payload[:value_bytes], sql_type, cardinality)
    codes = _unpack_uints(payload[value_bytes:], int(params["bits"]), rows)
    return values[codes.astype(np.int64)]


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def encode_with(
    codec: str, array: np.ndarray, sql_type: SqlType
) -> Encoded:
    """Encode *array* with an explicitly chosen codec."""
    if codec == PLAIN:
        return Encoded(PLAIN, _plain_encode(array, sql_type), {})
    if codec == RLE:
        return _rle_encode(array, sql_type)
    if codec == DICT:
        return _dict_encode(array, sql_type)
    if codec == BITPACK:
        return _bitpack_encode(array, sql_type)
    if codec == SEQUENCE:
        return _sequence_encode(array, sql_type)
    raise ExecutionError(f"unknown codec {codec!r}")


def decode(
    codec: str,
    payload: bytes,
    params: dict,
    sql_type: SqlType,
    rows: int,
) -> np.ndarray:
    """Decode one block payload back into its in-memory array."""
    if rows == 0:
        return np.empty(0, dtype=sql_type.numpy_dtype)
    if codec == PLAIN:
        return _plain_decode(payload, sql_type, rows)
    if codec == RLE:
        return _rle_decode(payload, params, sql_type, rows)
    if codec == DICT:
        return _dict_decode(payload, params, sql_type, rows)
    if codec == BITPACK:
        return _bitpack_decode(payload, params, sql_type, rows)
    if codec == SEQUENCE:
        return _sequence_decode(params, sql_type, rows)
    raise ExecutionError(f"unknown codec {codec!r}")


def _sample(array: np.ndarray) -> np.ndarray:
    if len(array) <= SAMPLE_ROWS:
        return array
    stride = len(array) // SAMPLE_ROWS
    return array[::stride][:SAMPLE_ROWS]


def choose_codec(array: np.ndarray, sql_type: SqlType) -> str:
    """Pick the codec for one block by sampling its values.

    The estimates are per-row encoded sizes extrapolated from a
    ``SAMPLE_ROWS``-value sample; ``plain`` wins ties and near-ties
    (see ``MIN_GAIN``) so marginal compression never costs decode time.
    """
    rows = len(array)
    if rows == 0:
        return PLAIN
    sample = _sample(array)
    item = (
        16 if sql_type is SqlType.VARCHAR else sql_type.numpy_dtype.itemsize
    )
    if sql_type is SqlType.VARCHAR:
        lengths = [len(v) for v in sample.tolist()]
        item = 4 + sum(lengths) / max(len(lengths), 1)
    plain_size = rows * item
    candidates: dict[str, float] = {PLAIN: plain_size}

    run_fraction = len(_run_starts(sample)) / len(sample)
    if sql_type is not SqlType.VARCHAR:
        runs = max(1.0, run_fraction * rows)
        candidates[RLE] = runs * (item + 4)

    if sql_type is SqlType.VARCHAR:
        unique = len(set(sample.tolist()))
    else:
        unique = len(np.unique(sample))
    if unique <= max(1, len(sample) // 2):
        bits = max(1, (unique - 1).bit_length()) if unique > 1 else 1
        candidates[DICT] = unique * item + rows * bits / 8

    if sql_type is SqlType.INTEGER:
        low = int(sample.min())
        high = int(sample.max())
        if (high - low).bit_length() <= MAX_PACK_BITS:
            bits = max(1, (high - low).bit_length())
            candidates[BITPACK] = rows * bits / 8
        if _sequence_step(sample) is not None:
            # The sample has a constant delta: the whole block likely
            # stores as two integers (encode re-verifies and falls back
            # to bit packing if the sample lied).
            candidates[SEQUENCE] = 16.0

    best = min(candidates, key=candidates.get)
    if best != PLAIN and candidates[best] > plain_size * MIN_GAIN:
        return PLAIN
    return best


def encode(array: np.ndarray, sql_type: SqlType) -> Encoded:
    """Encode one block, choosing the codec by sampling."""
    return encode_with(choose_codec(array, sql_type), array, sql_type)
