"""Disk-resident tables and the storage engine that owns them.

A :class:`DiskPartition` duck-types the in-memory
:class:`~repro.db.table.Partition`: it yields :class:`DiskBlock`
objects from ``blocks()`` exactly where a memory partition yields
:class:`~repro.db.column.Block`.  A disk block knows its row count and
zone maps from the column-file footers alone — pruning a block costs
zero I/O — and fetches individual columns through the shared
:class:`~repro.db.storage.bufferpool.BufferPool` only when a scan
actually materializes them.  Appends to a disk table land in a
per-partition in-memory *overlay* (a plain block builder) that the next
checkpoint merges into a fresh on-disk generation.

The :class:`StorageEngine` maps a directory to a catalog: ``open_into``
restores tables and model registrations from the manifest, and
``checkpoint`` writes dirty tables into new generation directories
before atomically swapping the manifest (see
:mod:`repro.db.storage.checkpoint` for the crash-safety argument).
"""

from __future__ import annotations

import shutil
import threading
from collections.abc import Iterator
from contextlib import nullcontext
from pathlib import Path

import numpy as np

from repro.db.catalog import (
    Catalog,
    LayerMetadata,
    ModelMetadata,
    ModelVersionRecord,
)
from repro.db.column import (
    BLOCK_SIZE,
    BlockBuilder,
    ColumnRange,
    MinMax,
    stats_may_match,
)
from repro.db.schema import Column, Schema
from repro.db.storage.blockio import ColumnFileReader, ColumnFileWriter
from repro.db.storage.bufferpool import (
    DEFAULT_CAPACITY_BYTES,
    BufferPool,
)
from repro.db.storage.checkpoint import (
    FORMAT_VERSION,
    load_manifest,
    save_manifest,
)
from repro.db.table import Table, ensure_uid_floor
from repro.db.types import SqlType
from repro.db.vector import VECTOR_SIZE, VectorBatch
from repro.errors import ExecutionError

TABLES_DIR = "tables"
MODELS_DIR = "models"


def _column_file_name(position: int, name: str) -> str:
    return f"c{position}_{name.lower()}.col"


def _model_entry(metadata: ModelMetadata) -> dict:
    """A ModelMetadata as a JSON-friendly manifest entry."""
    return {
        "model_name": metadata.model_name,
        "table_name": metadata.table_name,
        "input_width": metadata.input_width,
        "layers": [
            {
                "layer_type": layer.layer_type,
                "units": layer.units,
                "activation": layer.activation,
                "time_steps": layer.time_steps,
            }
            for layer in metadata.layers
        ],
    }


def _metadata_from_entry(entry: dict) -> ModelMetadata:
    return ModelMetadata(
        model_name=entry["model_name"],
        table_name=entry["table_name"],
        input_width=int(entry["input_width"]),
        layers=tuple(
            LayerMetadata(
                layer_type=layer["layer_type"],
                units=int(layer["units"]),
                activation=layer["activation"],
                time_steps=int(layer.get("time_steps", 1)),
            )
            for layer in entry["layers"]
        ),
    )


class DiskBlock:
    """One row-block of a disk partition (duck-types ``Block``).

    Carries only footer-derived metadata; column arrays are fetched
    lazily, per column, through the buffer pool.
    """

    __slots__ = ("partition", "index", "length", "stats")

    #: lets scans distinguish file-backed blocks without imports
    is_disk = True

    def __init__(
        self,
        partition: "DiskPartition",
        index: int,
        length: int,
        stats: list[MinMax | None],
    ):
        self.partition = partition
        self.index = index
        self.length = length
        self.stats = stats

    def may_match(
        self, schema: Schema, ranges: list[ColumnRange]
    ) -> bool:
        return stats_may_match(self.stats, schema, ranges)

    def column_array(self, position: int) -> np.ndarray:
        return self.partition.column_array(self.index, position)

    def read_columns(
        self, positions: list[int], on_open=None
    ) -> list[np.ndarray]:
        """Fetch several columns of this block, pinned as a set.

        Every frame stays pinned until the whole set is assembled, so
        a concurrent scan cannot evict column 0 while column 5 is
        still being decoded.  *on_open* (if given) is called with each
        column file's key — scans use it to count distinct files
        actually opened (the ``scan.columns_fetched`` accounting).
        """
        return self.partition.read_block_columns(
            self.index, positions, on_open=on_open
        )

    def to_batch(self, schema: Schema) -> VectorBatch:
        return VectorBatch(
            schema, self.read_columns(list(range(len(schema))))
        )

    def nominal_bytes(self) -> int:
        return self.partition.block_nominal_bytes(self.index)


class DiskPartition:
    """One partition of a disk-resident table.

    Sealed data lives in column files under *directory*; fresh appends
    accumulate in an in-memory overlay builder and are merged to disk
    at the next checkpoint.  Footers (offsets + zone maps) are loaded
    once, lazily; block payloads only ever move through the pool.
    """

    def __init__(
        self,
        schema: Schema,
        directory: str | Path,
        pool: BufferPool,
        metrics=None,
        tracer=None,
        block_size: int = BLOCK_SIZE,
    ):
        self.schema = schema
        self.directory = Path(directory)
        self.pool = pool
        self.metrics = metrics
        self.tracer = tracer
        self._overlay = BlockBuilder(schema, block_size)
        self._readers: list[ColumnFileReader] | None = None
        self._disk_blocks: list[DiskBlock] | None = None
        self._disk_rows = 0

    # -- footer metadata ------------------------------------------------
    def _ensure_meta(self) -> None:
        if self._readers is not None:
            return
        readers = [
            ColumnFileReader(
                self.directory
                / _column_file_name(position, column.name),
                column.sql_type,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            for position, column in enumerate(self.schema)
        ]
        counts = {reader.num_blocks for reader in readers}
        if len(counts) > 1:
            raise ExecutionError(
                f"{self.directory}: column files disagree on block "
                f"count ({sorted(counts)})"
            )
        blocks: list[DiskBlock] = []
        rows_total = 0
        for index in range(counts.pop() if counts else 0):
            stats: list[MinMax | None] = []
            rows = None
            for reader, column in zip(readers, self.schema):
                entry = reader.blocks[index]
                if rows is None:
                    rows = entry["rows"]
                elif rows != entry["rows"]:
                    raise ExecutionError(
                        f"{self.directory}: ragged block {index}"
                    )
                if (
                    column.sql_type.is_numeric
                    and entry["min"] is not None
                ):
                    stats.append(
                        MinMax(float(entry["min"]), float(entry["max"]))
                    )
                else:
                    stats.append(None)
            blocks.append(DiskBlock(self, index, int(rows or 0), stats))
            rows_total += int(rows or 0)
        self._readers = readers
        self._disk_blocks = blocks
        self._disk_rows = rows_total

    # -- Partition protocol ---------------------------------------------
    @property
    def row_count(self) -> int:
        self._ensure_meta()
        return self._disk_rows + self._overlay.row_count

    def append(self, batch: VectorBatch) -> None:
        self._overlay.append(batch)

    def blocks(self) -> list:
        self._ensure_meta()
        return list(self._disk_blocks) + self._overlay.all_blocks()

    def nominal_bytes(self) -> int:
        self._ensure_meta()
        disk = sum(
            entry["raw_nbytes"]
            for reader in self._readers
            for entry in reader.blocks
        )
        return disk + self._overlay.nominal_bytes()

    def disk_block_metadata(self) -> list[dict]:
        """Footer metadata of every sealed block × column, no payload I/O.

        Feeds ``system.storage_blocks``: one dict per (block, column)
        with the persisted codec, row count, encoded size and zone-map
        bounds.  Overlay (unsealed) blocks are not included — see
        :meth:`overlay_blocks`.
        """
        self._ensure_meta()
        rows: list[dict] = []
        for position, (reader, column) in enumerate(
            zip(self._readers, self.schema)
        ):
            for index, entry in enumerate(reader.blocks):
                rows.append(
                    {
                        "block": index,
                        "column": column.name,
                        "position": position,
                        "codec": entry["codec"],
                        "rows": entry["rows"],
                        "raw_nbytes": entry["raw_nbytes"],
                        "nulls": entry.get("nulls", 0),
                        "min": entry["min"],
                        "max": entry["max"],
                    }
                )
        return rows

    def overlay_blocks(self) -> list:
        """In-memory blocks appended since the last checkpoint."""
        return self._overlay.all_blocks()

    def scan(
        self,
        ranges: list[ColumnRange] | None = None,
        vector_size: int = VECTOR_SIZE,
    ) -> Iterator[VectorBatch]:
        ranges = ranges or []
        for block in self.blocks():
            if ranges and not block.may_match(self.schema, ranges):
                continue
            batch = block.to_batch(self.schema)
            for start in range(0, len(batch), vector_size):
                yield batch.slice(start, start + vector_size)

    # -- block data access ----------------------------------------------
    def _frame_key(self, index: int, position: int) -> tuple:
        return (str(self.directory), position, index)

    def file_key(self, position: int) -> tuple:
        """Identity of one column file (for file-open accounting)."""
        return (str(self.directory), position)

    def column_array(self, block_index: int, position: int) -> np.ndarray:
        self._ensure_meta()
        reader = self._readers[position]
        return self.pool.get(
            self._frame_key(block_index, position),
            lambda: reader.read_block(block_index),
        )

    def read_block_columns(
        self, block_index: int, positions: list[int], on_open=None
    ) -> list[np.ndarray]:
        self._ensure_meta()
        keys = [
            self._frame_key(block_index, position) for position in positions
        ]
        arrays: list[np.ndarray] = []
        pinned: list[tuple] = []
        try:
            for key, position in zip(keys, positions):
                if on_open is not None:
                    on_open(self.file_key(position))
                reader = self._readers[position]
                arrays.append(
                    self.pool.get(
                        key,
                        lambda r=reader: r.read_block(block_index),
                        pin=True,
                    )
                )
                pinned.append(key)
        finally:
            for key in pinned:
                self.pool.unpin(key)
        return arrays

    def block_nominal_bytes(self, block_index: int) -> int:
        self._ensure_meta()
        return sum(
            reader.blocks[block_index]["raw_nbytes"]
            for reader in self._readers
        )

    def close(self) -> None:
        if self._readers is not None:
            for reader in self._readers:
                reader.close()


class DiskTable(Table):
    """A table whose partitions read from column files."""

    disk_resident = True


def write_partition(
    directory: str | Path, schema: Schema, blocks: list
) -> int:
    """Write *blocks* (memory or disk) as column files; returns rows."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    writers = [
        ColumnFileWriter(
            directory / _column_file_name(position, column.name),
            column.sql_type,
        )
        for position, column in enumerate(schema)
    ]
    rows = 0
    try:
        for block in blocks:
            rows += block.length
            for position, writer in enumerate(writers):
                writer.append_block(block.column_array(position))
    finally:
        for writer in writers:
            writer.close()
    return rows


class GenerationPin:
    """One snapshot's refcount claim on a set of generation dirs."""

    __slots__ = ("dirs",)

    def __init__(self, dirs: list[Path]):
        self.dirs = dirs


class StorageEngine:
    """Maps a directory to the durable state of one database."""

    def __init__(
        self,
        root: str | Path,
        buffer_pool_bytes: int | None = None,
        metrics=None,
        tracer=None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / TABLES_DIR).mkdir(exist_ok=True)
        (self.root / MODELS_DIR).mkdir(exist_ok=True)
        self.metrics = metrics
        self.tracer = tracer
        self.buffer_pool = BufferPool(
            capacity_bytes=(
                buffer_pool_bytes
                if buffer_pool_bytes is not None
                else DEFAULT_CAPACITY_BYTES
            ),
            metrics=metrics,
        )
        self._generation = 0
        #: manifest entries currently backed by on-disk data, by
        #: lower-cased table name (used to skip rewriting clean tables)
        self._persisted: dict[str, dict] = {}
        #: snapshot pinning (MVCC-lite, see repro.db.snapshot): a
        #: refcount per pinned generation directory, plus the retired
        #: generations (superseded by a later checkpoint while pinned)
        #: whose readers must be closed and files deleted once the
        #: last pin drops
        self._pin_lock = threading.Lock()
        self._pin_counts: dict[Path, int] = {}
        self._retired: dict[Path, list] = {}

    @property
    def models_dir(self) -> Path:
        return self.root / MODELS_DIR

    # ------------------------------------------------------------------
    # open
    # ------------------------------------------------------------------
    def open_into(self, catalog: Catalog) -> int:
        """Restore tables and model registrations; returns table count."""
        manifest = load_manifest(self.root)
        if manifest is None:
            return 0
        with self._span("storage.open"):
            self._generation = int(manifest.get("generation", 0))
            highest_uid = -1
            for entry in manifest["tables"]:
                table = self._load_table(entry)
                catalog.create_table(table)
                highest_uid = max(highest_uid, table.uid)
                self._persisted[table.name.lower()] = dict(entry)
            ensure_uid_floor(highest_uid + 1)
            for model in manifest.get("models", []):
                catalog.register_model(_metadata_from_entry(model))
            for entry in manifest.get("model_versions", []):
                catalog.register_model_version(
                    ModelVersionRecord(
                        model_name=entry["model_name"],
                        version=int(entry["version"]),
                        metadata=_metadata_from_entry(entry["metadata"]),
                        created_at=float(entry["created_at"]),
                        epochs=int(entry["epochs"]),
                        batch_size=int(entry["batch_size"]),
                        learning_rate=float(entry["learning_rate"]),
                        seed=int(entry["seed"]),
                        loss_name=entry["loss_name"],
                        final_loss=float(entry["final_loss"]),
                        weight_checksum=int(entry["weight_checksum"]),
                        source_fingerprint=entry["source_fingerprint"],
                        arch=entry["arch"],
                    ),
                    make_current=False,
                )
            # The current bindings were restored through "models"
            # above; record the version numbers they correspond to.
            for name, version in manifest.get(
                "current_versions", {}
            ).items():
                catalog.current_versions[name] = int(version)
        return len(manifest["tables"])

    def _load_table(self, entry: dict) -> DiskTable:
        schema = Schema(
            tuple(
                Column(name, SqlType(type_name))
                for name, type_name in entry["schema"]
            )
        )
        table = DiskTable(
            entry["name"],
            schema,
            num_partitions=int(entry["num_partitions"]),
            partition_key=entry.get("partition_key"),
            sort_key=tuple(entry.get("sort_key", ())),
        )
        table.uid = int(entry["uid"])
        table.version = int(entry["version"])
        data_dir = self.root / entry["data_dir"]
        table.partitions = [
            DiskPartition(
                schema,
                data_dir / f"p{index}",
                self.buffer_pool,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            for index in range(table.num_partitions)
        ]
        for partition in table.partitions:
            # Load the column-file footers now so the first query after a
            # restart pays no metadata I/O (the catalog opens warm).
            partition._ensure_meta()
        return table

    # ------------------------------------------------------------------
    # snapshot pinning (MVCC-lite)
    # ------------------------------------------------------------------
    def pin_generations(self) -> GenerationPin:
        """Pin the current generation dir of every persisted table.

        While pinned, a generation directory survives any number of
        later checkpoints: its readers stay open, its buffer-pool
        frames stay resident, and its files stay on disk.  Call
        :meth:`unpin_generations` with the returned pin to release.
        """
        with self._pin_lock:
            dirs: list[Path] = []
            for entry in self._persisted.values():
                directory = (self.root / entry["data_dir"]).resolve()
                self._pin_counts[directory] = (
                    self._pin_counts.get(directory, 0) + 1
                )
                dirs.append(directory)
        if self.metrics is not None:
            self.metrics.counter("storage.generations_pinned").increment(
                len(dirs)
            )
        return GenerationPin(dirs)

    def unpin_generations(self, pin: GenerationPin) -> int:
        """Drop one pin; garbage-collect newly unpinned retirees.

        Returns the number of generation directories collected.
        """
        collectable: list[tuple[Path, list]] = []
        with self._pin_lock:
            for directory in pin.dirs:
                count = self._pin_counts.get(directory, 0) - 1
                if count > 0:
                    self._pin_counts[directory] = count
                    continue
                self._pin_counts.pop(directory, None)
                if directory in self._retired:
                    collectable.append(
                        (directory, self._retired.pop(directory))
                    )
        for directory, partitions in collectable:
            self._gc_generation(directory, partitions)
        return len(collectable)

    def pinned_generations(self) -> int:
        """Number of generation directories currently pinned."""
        with self._pin_lock:
            return len(self._pin_counts)

    def retired_generations(self) -> int:
        """Pinned generations superseded and awaiting GC at unpin."""
        with self._pin_lock:
            return len(self._retired)

    def _gc_generation(self, directory: Path, partitions: list) -> None:
        """Close a retired generation's readers and delete its files."""
        for partition in partitions:
            self.buffer_pool.invalidate_prefix(str(partition.directory))
            partition.close()
        shutil.rmtree(directory, ignore_errors=True)
        parent = directory.parent
        try:
            if parent.is_dir() and not any(parent.iterdir()):
                parent.rmdir()
        except OSError:
            pass
        if self.metrics is not None:
            self.metrics.counter("storage.generations_gced").increment()

    def _retire_partitions(self, partitions: list) -> None:
        """Hand a superseded generation's partitions to GC.

        Unpinned generations are detached immediately (readers closed,
        pool frames dropped — file deletion follows in the stale-dir
        sweep); pinned ones are parked in ``_retired`` until their last
        pin drops, so in-flight snapshot scans keep a valid view.
        """
        groups: dict[Path, list] = {}
        for partition in partitions:
            directory = Path(partition.directory).parent.resolve()
            groups.setdefault(directory, []).append(partition)
        detach_now: list[list] = []
        with self._pin_lock:
            for directory, group in groups.items():
                if self._pin_counts.get(directory):
                    self._retired.setdefault(directory, []).extend(group)
                else:
                    detach_now.append(group)
        for group in detach_now:
            for partition in group:
                self.buffer_pool.invalidate_prefix(
                    str(partition.directory)
                )
                partition.close()

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self, catalog: Catalog) -> dict:
        """Persist the catalog; returns the committed manifest."""
        with self._span("storage.checkpoint"):
            tables = [
                self._persist_table(table)
                for table in catalog.tables.values()
            ]
            models = [
                _model_entry(metadata)
                for metadata in catalog.models.values()
            ]
            model_versions = [
                {
                    "model_name": record.model_name,
                    "version": record.version,
                    "metadata": _model_entry(record.metadata),
                    "created_at": record.created_at,
                    "epochs": record.epochs,
                    "batch_size": record.batch_size,
                    "learning_rate": record.learning_rate,
                    "seed": record.seed,
                    "loss_name": record.loss_name,
                    "final_loss": record.final_loss,
                    "weight_checksum": record.weight_checksum,
                    "source_fingerprint": record.source_fingerprint,
                    "arch": record.arch,
                }
                for versions in catalog.model_versions.values()
                for record in versions.values()
            ]
            manifest = {
                "format_version": FORMAT_VERSION,
                "generation": self._generation,
                "tables": tables,
                "models": models,
                "model_versions": model_versions,
                "current_versions": dict(catalog.current_versions),
            }
            save_manifest(self.root, manifest)
            self._persisted = {
                entry["name"].lower(): dict(entry) for entry in tables
            }
            self._cleanup_stale_generations(manifest)
        if self.metrics is not None:
            self.metrics.counter("storage.checkpoints").increment()
        return manifest

    def _persist_table(self, table: Table) -> dict:
        previous = self._persisted.get(table.name.lower())
        if (
            previous is not None
            and previous["uid"] == table.uid
            and previous["version"] == table.version
        ):
            return dict(previous)  # data on disk is current
        self._generation += 1
        relative = (
            Path(TABLES_DIR)
            / table.name.lower()
            / f"gen{self._generation:06d}"
        )
        data_dir = self.root / relative
        row_count = 0
        for index, partition in enumerate(table.partitions):
            row_count += write_partition(
                data_dir / f"p{index}", table.schema, partition.blocks()
            )
        entry = {
            "name": table.name,
            "uid": table.uid,
            "version": table.version,
            "num_partitions": table.num_partitions,
            "partition_key": table.partition_key,
            "sort_key": list(table.sort_key),
            "schema": [
                [column.name, column.sql_type.value]
                for column in table.schema
            ],
            "data_dir": str(relative),
            "row_count": row_count,
        }
        if table.disk_resident:
            # Point the live table at the merged generation so the
            # overlay does not keep growing.  The superseded partitions
            # go through the retire path: dropped immediately when no
            # snapshot pins their generation, deferred otherwise.
            old_partitions = list(table.partitions)
            table.partitions = [
                DiskPartition(
                    table.schema,
                    data_dir / f"p{index}",
                    self.buffer_pool,
                    metrics=self.metrics,
                    tracer=self.tracer,
                )
                for index in range(table.num_partitions)
            ]
            self._retire_partitions(old_partitions)
        return entry

    def _cleanup_stale_generations(self, manifest: dict) -> None:
        referenced = {
            (self.root / entry["data_dir"]).resolve()
            for entry in manifest["tables"]
        }
        tables_root = self.root / TABLES_DIR
        for table_dir in tables_root.iterdir():
            if not table_dir.is_dir():
                continue
            for generation_dir in table_dir.iterdir():
                resolved = generation_dir.resolve()
                if resolved in referenced:
                    continue
                with self._pin_lock:
                    if self._pin_counts.get(resolved):
                        # A snapshot still reads this generation: keep
                        # the files and let the last unpin delete them.
                        self._retired.setdefault(resolved, [])
                        continue
                shutil.rmtree(generation_dir, ignore_errors=True)
            if not any(table_dir.iterdir()):
                table_dir.rmdir()

    def _span(self, name: str):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, category="storage")

    def close(self) -> None:
        self.buffer_pool.clear()
