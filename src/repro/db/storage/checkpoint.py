"""Atomic manifest checkpointing for the persistent catalog.

The whole durable state of a database is described by one JSON
manifest, ``CATALOG.json``, at the storage root.  Checkpointing writes
table data into fresh generation directories *first* and only then
swaps the manifest with write-to-temp + ``os.replace`` — the POSIX
atomic-rename durability idiom.  A crash at any point leaves either the
old manifest (pointing at the old, complete generation directories) or
the new one (pointing at the new, complete ones); a torn state is not
reachable, which the crash-safety test asserts by killing between the
temp write and the rename.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ExecutionError

MANIFEST_NAME = "CATALOG.json"
FORMAT_VERSION = 1


def atomic_write_json(path: str | Path, payload: dict) -> None:
    """Durably replace *path* with *payload* (write temp, fsync, rename)."""
    path = Path(path)
    temp = path.with_name(path.name + ".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    # Persist the rename itself (directory entry) where possible.
    try:
        directory = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(directory)
    finally:
        os.close(directory)


def save_manifest(root: str | Path, manifest: dict) -> Path:
    path = Path(root) / MANIFEST_NAME
    atomic_write_json(path, manifest)
    return path


def load_manifest(root: str | Path) -> dict | None:
    """The current manifest, or None for a fresh directory.

    A leftover ``CATALOG.json.tmp`` (crash between checkpoint and
    rename) is ignored — the committed manifest is the truth.
    """
    path = Path(root) / MANIFEST_NAME
    if not path.exists():
        return None
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise ExecutionError(
            f"{path}: unsupported storage format version {version!r}"
        )
    return manifest
