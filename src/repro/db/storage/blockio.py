"""Column files: the on-disk unit of the block storage format.

Each column of each partition lives in its own file::

    +----------------+--------------- ... ---------------+-----------+
    | magic "RPROC1\\n\\0" |  block payloads (codec-encoded)  |  footer   |
    +----------------+--------------- ... ---------------+-----------+
                                                         | footer JSON |
                                                         | u64 length  |
                                                         | magic (8 B) |
                                                         +-------------+

Block payloads are written back to back in block order, each encoded by
one of the :mod:`repro.db.storage.codecs`.  The footer is a UTF-8 JSON
document describing every block — byte offset and length, row count,
codec and its parameters, the zone map (min/max of numeric columns) and
the null (NaN) count — followed by its own length and a trailing magic,
so a reader finds it with one seek from the end of the file.  All
integers are little-endian; plain payloads are NumPy-compatible (a
plain block can be mapped with ``np.frombuffer`` directly).

Readers are thread-safe (partition pipelines of one query share them)
and retry transient read failures — including the ``io.block_read``
injected fault — with bounded backoff, so a flaky disk degrades scans
into retries instead of query errors.
"""

from __future__ import annotations

import json
import math
import os
import struct
import threading
import time
from pathlib import Path

import numpy as np

from repro.db import faults
from repro.db.resilience import backoff_seconds
from repro.db.storage import codecs
from repro.db.types import SqlType
from repro.errors import ExecutionError, InjectedFaultError

MAGIC = b"RPROC1\n\0"
_TAIL = struct.Struct("<Q8s")

#: how many times a failed block read is retried before the error
#: propagates (transient-fault model: each retry re-draws the dice)
READ_RETRIES = 8


class ColumnFileWriter:
    """Streams the blocks of one column into a column file."""

    def __init__(self, path: str | Path, sql_type: SqlType):
        self.path = Path(path)
        self.sql_type = sql_type
        self.entries: list[dict] = []
        self._handle = open(self.path, "wb")
        self._handle.write(MAGIC)
        self._offset = len(MAGIC)
        self._closed = False

    def append_block(self, array: np.ndarray) -> dict:
        """Encode and append one block; returns its footer entry."""
        encoded = codecs.encode(array, self.sql_type)
        self._handle.write(encoded.payload)
        entry = {
            "offset": self._offset,
            "nbytes": len(encoded.payload),
            "rows": int(len(array)),
            "codec": encoded.codec,
            "params": encoded.params,
            "raw_nbytes": int(
                array.nbytes
                if array.dtype != object
                else len(array) * self.sql_type.byte_width
            ),
        }
        entry.update(_zone_map(array, self.sql_type))
        self._offset += len(encoded.payload)
        self.entries.append(entry)
        return entry

    def close(self) -> None:
        """Write the footer and durably finish the file."""
        if self._closed:
            return
        footer = json.dumps(
            {
                "dtype": self.sql_type.numpy_dtype.newbyteorder("<").str
                if self.sql_type is not SqlType.VARCHAR
                else "object",
                "sql_type": self.sql_type.value,
                "blocks": self.entries,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        self._handle.write(footer)
        self._handle.write(_TAIL.pack(len(footer), MAGIC))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "ColumnFileWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _zone_map(array: np.ndarray, sql_type: SqlType) -> dict:
    """Per-block SMA statistics recorded in the footer."""
    if len(array) == 0:
        return {"min": None, "max": None, "nulls": 0}
    if sql_type.is_numeric:
        nulls = 0
        values = array
        if array.dtype.kind == "f":
            nan_mask = np.isnan(array)
            nulls = int(nan_mask.sum())
            if nulls == len(array):
                return {"min": None, "max": None, "nulls": nulls}
            values = array[~nan_mask] if nulls else array
        minimum = values.min()
        maximum = values.max()
        if sql_type is SqlType.INTEGER:
            return {"min": int(minimum), "max": int(maximum), "nulls": nulls}
        low = float(minimum)
        high = float(maximum)
        # JSON has no inf; an unbounded zone map simply never prunes.
        if not (math.isfinite(low) and math.isfinite(high)):
            return {"min": None, "max": None, "nulls": nulls}
        return {"min": low, "max": high, "nulls": nulls}
    return {"min": None, "max": None, "nulls": 0}


class ColumnFileReader:
    """Reads blocks of one column file; footer loaded once at open.

    ``read_block`` is the only method that touches block payloads, so
    the footer (offsets + zone maps) is available without any data I/O
    — that is what makes persisted zone-map pruning free.
    """

    def __init__(
        self,
        path: str | Path,
        sql_type: SqlType,
        metrics=None,
        tracer=None,
    ):
        self.path = Path(path)
        self.sql_type = sql_type
        self.metrics = metrics
        self.tracer = tracer
        self._lock = threading.Lock()
        self._handle = None
        self.blocks = self._load_footer()
        # Counter handles resolved once: reads are per-block hot path.
        self._blocks_read = (
            metrics.counter("storage.blocks_read") if metrics else None
        )
        self._bytes_decompressed = (
            metrics.counter("storage.bytes_decompressed")
            if metrics
            else None
        )

    def _load_footer(self) -> list[dict]:
        with open(self.path, "rb") as handle:
            head = handle.read(len(MAGIC))
            if head != MAGIC:
                raise ExecutionError(
                    f"{self.path}: not a column file (bad magic)"
                )
            handle.seek(-_TAIL.size, os.SEEK_END)
            length, tail_magic = _TAIL.unpack(handle.read(_TAIL.size))
            if tail_magic != MAGIC:
                raise ExecutionError(
                    f"{self.path}: truncated column file (bad tail)"
                )
            handle.seek(-(_TAIL.size + length), os.SEEK_END)
            footer = json.loads(handle.read(length).decode("utf-8"))
        if footer["sql_type"] != self.sql_type.value:
            raise ExecutionError(
                f"{self.path}: file stores {footer['sql_type']}, "
                f"schema says {self.sql_type.value}"
            )
        return footer["blocks"]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def read_block(self, index: int) -> np.ndarray:
        """Decode block *index*, retrying transient read failures."""
        entry = self.blocks[index]
        attempt = 0
        while True:
            try:
                return self._read_once(entry)
            except (InjectedFaultError, OSError):
                attempt += 1
                if attempt > READ_RETRIES:
                    raise
                if self.metrics is not None:
                    self.metrics.counter("storage.read_retries").increment()
                time.sleep(backoff_seconds(attempt, base=0.0005, cap=0.01))

    def _read_once(self, entry: dict) -> np.ndarray:
        if faults.ACTIVE is not None:
            faults.ACTIVE.fire("io.block_read")
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "rb")
            self._handle.seek(entry["offset"])
            payload = self._handle.read(entry["nbytes"])
        if len(payload) != entry["nbytes"]:
            raise OSError(
                f"{self.path}: short read at offset {entry['offset']}"
            )
        if self.tracer is not None and self.tracer.enabled:
            with self.tracer.span(
                "storage.block_read",
                category="storage",
                args={
                    "file": self.path.name,
                    "rows": entry["rows"],
                    "codec": entry["codec"],
                },
            ):
                array = self._decode(entry, payload)
        else:
            array = self._decode(entry, payload)
        if self._blocks_read is not None:
            self._blocks_read.increment()
            self._bytes_decompressed.increment(entry["raw_nbytes"])
        return array

    def _decode(self, entry: dict, payload: bytes) -> np.ndarray:
        return codecs.decode(
            entry["codec"],
            payload,
            entry["params"],
            self.sql_type,
            entry["rows"],
        )

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
