"""Persistent block-based columnar storage (see docs/STORAGE.md).

Public surface:

* :class:`StorageEngine` — maps a directory to the durable state of a
  database (``Database(path=...)`` owns one);
* :class:`BufferPool` — byte-capped LRU cache of decoded blocks;
* :mod:`~repro.db.storage.codecs` — per-block compression codecs;
* :class:`ColumnFileWriter` / :class:`ColumnFileReader` — the on-disk
  column-file format.
"""

from repro.db.storage.blockio import ColumnFileReader, ColumnFileWriter
from repro.db.storage.bufferpool import (
    DEFAULT_CAPACITY_BYTES,
    BufferPool,
)
from repro.db.storage.checkpoint import (
    MANIFEST_NAME,
    atomic_write_json,
    load_manifest,
    save_manifest,
)
from repro.db.storage.store import (
    DiskBlock,
    DiskPartition,
    DiskTable,
    StorageEngine,
    write_partition,
)

__all__ = [
    "BufferPool",
    "ColumnFileReader",
    "ColumnFileWriter",
    "DEFAULT_CAPACITY_BYTES",
    "DiskBlock",
    "DiskPartition",
    "DiskTable",
    "MANIFEST_NAME",
    "StorageEngine",
    "atomic_write_json",
    "load_manifest",
    "save_manifest",
    "write_partition",
]
