"""LRU buffer pool for decoded column blocks.

Scans of disk-resident tables never hold a whole column in memory: each
(column file, block) pair is decoded on first touch and cached here as
a *frame*.  Frames are evicted least-recently-used once the byte cap is
exceeded; *pinned* frames (in use by an operator assembling a batch)
are never evicted.  Bytes are tracked by the engine's standard
:class:`~repro.db.profiler.MemoryAccountant` under the
``buffer-pool`` category, so the pool's resident footprint shows up in
memory snapshots exactly like the model cache's.

The pool is thread-safe.  Loads run outside the lock — two pipelines
missing the same frame may both decode it; the second result is
discarded, which wastes a decode but never blocks one worker's I/O on
another's.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.db.profiler import MemoryAccountant

#: default byte cap — small enough that the bench's 500k-row table
#: does not fit, so eviction is exercised by default on big scans
DEFAULT_CAPACITY_BYTES = 64 * 1024 * 1024

MEMORY_CATEGORY = "buffer-pool"


@dataclass
class _Frame:
    array: np.ndarray
    nbytes: int
    pins: int = 0


@dataclass
class PoolStatistics:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: loads discarded because another thread populated the frame first
    wasted_loads: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(vars(self))


def _frame_bytes(array: np.ndarray) -> int:
    if array.dtype == object:
        return len(array) * 16
    return array.nbytes


class BufferPool:
    """A byte-capped LRU cache of decoded blocks, with pin/unpin."""

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        metrics=None,
    ):
        if capacity_bytes <= 0:
            raise ValueError("buffer pool capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.memory = MemoryAccountant()
        self.metrics = metrics
        self.statistics = PoolStatistics()
        self._lock = threading.Lock()
        self._frames: OrderedDict[object, _Frame] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

    @property
    def resident_bytes(self) -> int:
        return self.memory.current_bytes

    def get(self, key, loader, pin: bool = False) -> np.ndarray:
        """The frame for *key*, loading it via ``loader()`` on a miss.

        With ``pin=True`` the returned frame is pinned and the caller
        must :meth:`unpin` it; unpinned frames may be evicted as soon
        as the pool needs the bytes.
        """
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None:
                self._frames.move_to_end(key)
                self.statistics.hits += 1
                if pin:
                    frame.pins += 1
                return frame.array
        array = loader()  # I/O + decode outside the lock
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None:
                # Lost the race; keep the resident frame, drop ours.
                self.statistics.wasted_loads += 1
                self._frames.move_to_end(key)
                if pin:
                    frame.pins += 1
                return frame.array
            self.statistics.misses += 1
            frame = _Frame(array, _frame_bytes(array), pins=1 if pin else 0)
            self._frames[key] = frame
            self.memory.allocate(frame.nbytes, MEMORY_CATEGORY)
            self._evict_over_cap()
            return frame.array

    def pin(self, key) -> None:
        with self._lock:
            self._frames[key].pins += 1

    def unpin(self, key) -> None:
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None and frame.pins > 0:
                frame.pins -= 1

    def _evict_over_cap(self) -> None:
        """Evict LRU unpinned frames until the cap holds (lock held).

        If everything resident is pinned the pool overshoots rather
        than deadlocking — pins are short-lived (one batch assembly).
        """
        if self.memory.current_bytes <= self.capacity_bytes:
            return
        victims = [
            key for key, frame in self._frames.items() if frame.pins == 0
        ]
        for key in victims:
            if self.memory.current_bytes <= self.capacity_bytes:
                break
            frame = self._frames.pop(key)
            self.memory.release(frame.nbytes, MEMORY_CATEGORY)
            self.statistics.evictions += 1
            if self.metrics is not None:
                self.metrics.counter("bufferpool.evictions").increment()

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop every frame whose key starts with *prefix*.

        Frame keys are ``(file path, block index)`` tuples; a table
        rewrite invalidates its old generation directory wholesale.
        Returns the number of frames dropped.
        """
        with self._lock:
            stale = [
                key
                for key in self._frames
                if isinstance(key, tuple) and str(key[0]).startswith(prefix)
            ]
            for key in stale:
                frame = self._frames.pop(key)
                self.memory.release(frame.nbytes, MEMORY_CATEGORY)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._frames.clear()
            self.memory.reset()
