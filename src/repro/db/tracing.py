"""Query tracing and engine-lifetime metrics.

The paper's evaluation is a *timing breakdown*: Section 6 separates the
model build from the inference phase, Table 3 reports peak engine
memory.  Flat counters and total wall time cannot attribute where time
goes inside a parallel ModelJoin (build vs. BLAS inference vs. rebatch,
per worker, per morsel), so this module gives the engine the
observability layer serving-oriented systems treat as table stakes:

* :class:`Tracer` — a thread-safe producer of *hierarchical spans*
  (query → phase → operator → morsel / device kernel).  Each execution
  thread keeps a private span stack, so parenting is race-free under
  the WorkerPool; cross-thread edges (query → pipeline) are expressed
  through explicit parent ids.  A disabled tracer is a no-op: ``span``
  returns a shared null context manager and the hot paths additionally
  gate on :attr:`Tracer.enabled`, so tracing costs nothing when off
  (the ``python -m repro.bench tracing`` gate asserts <5% overhead).

* :class:`MetricsRegistry` — engine-lifetime counters, gauges and
  histograms (``query.latency``, ``modeljoin.build_seconds``,
  ``cache.hit_ratio``, ``morsel.queue_wait``) aggregating *across*
  queries, which the per-query :class:`~repro.db.profiler.QueryProfile`
  cannot do.  Histograms report p50/p95/p99 over a bounded,
  deterministically down-sampled reservoir.

* Chrome-trace export — :meth:`Tracer.chrome_trace` renders the spans
  as ``traceEvents`` complete events (``ph``/``ts``/``dur``), loadable
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``, so a
  timeline of 12 parallel partition pipelines is actually inspectable.

Metric naming convention: lowercase dotted paths, ``subsystem.measure``
(``query.latency``, ``cache.hits``, ``memory.release_underflow``).
"""

from __future__ import annotations

import itertools
import json
import math
import threading
import time


class _NullSpan:
    """Shared, reusable no-op context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None


#: the singleton handed out by disabled tracers (and device hot paths)
NULL_SPAN = _NullSpan()


class _ThreadLog:
    """Per-thread span storage: an event list plus the open-span stack.

    Owned by exactly one thread, so appends need no lock; the tracer
    only takes its lock to register a new thread's log and to drain.
    """

    __slots__ = ("thread_name", "events", "stack")

    def __init__(self, thread_name: str):
        self.thread_name = thread_name
        #: finished spans as tuples
        #: (span_id, parent_id, name, category, start_us, dur_us, args)
        self.events: list[tuple] = []
        #: ids of the spans currently open on this thread
        self.stack: list[int] = []


class _SpanHandle:
    """Context manager recording one span on enter/exit."""

    __slots__ = ("_tracer", "_log", "_name", "_category", "_args",
                 "span_id", "parent_id", "_start_us")

    def __init__(self, tracer, name, category, parent_id, args):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self.parent_id = parent_id
        self.span_id = 0
        self._log = None
        self._start_us = 0.0

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        log = tracer._thread_log()
        self._log = log
        self.span_id = next(tracer._ids)
        if self.parent_id is None and log.stack:
            self.parent_id = log.stack[-1]
        log.stack.append(self.span_id)
        self._start_us = tracer.now_us()
        return self

    def __exit__(self, *_exc) -> None:
        tracer = self._tracer
        end_us = tracer.now_us()
        log = self._log
        if log.stack and log.stack[-1] == self.span_id:
            log.stack.pop()
        tracer._append(
            log,
            (
                self.span_id,
                self.parent_id,
                self._name,
                self._category,
                self._start_us,
                end_us - self._start_us,
                self._args,
            ),
        )


class Tracer:
    """Thread-safe collector of hierarchical wall-clock spans.

    Usage::

        with tracer.span("query", category="query"):
            with tracer.span("modeljoin-build", category="phase"):
                ...

    Spans opened on the same thread nest through a thread-local stack;
    spans on worker threads attach to a coordinator span via
    ``parent_id`` (see :meth:`current_span_id`).  When :attr:`enabled`
    is False, :meth:`span` returns the shared :data:`NULL_SPAN` and
    nothing is recorded.
    """

    def __init__(self, enabled: bool = True, max_events: int = 1_000_000):
        self.enabled = enabled
        self.max_events = max_events
        #: events not recorded because max_events was reached
        self.dropped_events = 0
        self._ids = itertools.count(1)
        self._epoch = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._logs: list[_ThreadLog] = []
        self._event_count = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _thread_log(self) -> _ThreadLog:
        log = getattr(self._local, "log", None)
        if log is None:
            log = _ThreadLog(threading.current_thread().name)
            self._local.log = log
            with self._lock:
                self._logs.append(log)
        return log

    def _append(self, log: _ThreadLog, event: tuple) -> None:
        # The count is maintained without a lock: under the GIL a lost
        # update can only make the cap slightly approximate, never
        # corrupt the event lists themselves (each is single-writer).
        if self._event_count >= self.max_events:
            self.dropped_events += 1
            return
        log.events.append(event)
        self._event_count += 1

    def now_us(self) -> float:
        """Microseconds since this tracer's epoch (Chrome-trace ts)."""
        return (time.perf_counter() - self._epoch) * 1e6

    def allocate_id(self) -> int:
        """Reserve a span id (for spans recorded after the fact)."""
        return next(self._ids)

    def current_span_id(self) -> int | None:
        """Id of the innermost span open on the calling thread."""
        log = getattr(self._local, "log", None)
        if log is None or not log.stack:
            return None
        return log.stack[-1]

    def span(
        self,
        name: str,
        category: str = "engine",
        parent_id: int | None = None,
        args: dict | None = None,
    ):
        """Context manager for one span (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name, category, parent_id, args)

    def record(
        self,
        name: str,
        category: str,
        start_us: float,
        duration_us: float,
        span_id: int | None = None,
        parent_id: int | None = None,
        args: dict | None = None,
    ) -> None:
        """Record a complete span after the fact (operator close path)."""
        if not self.enabled:
            return
        if span_id is None:
            span_id = next(self._ids)
        self._append(
            self._thread_log(),
            (span_id, parent_id, name, category, start_us, duration_us,
             args),
        )

    def instant(
        self,
        name: str,
        category: str = "engine",
        parent_id: int | None = None,
        args: dict | None = None,
    ) -> None:
        """Record a zero-duration marker event (retry/fallback points)."""
        if not self.enabled:
            return
        self.record(
            name,
            category,
            start_us=self.now_us(),
            duration_us=0.0,
            parent_id=parent_id,
            args=args,
        )

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------
    def finished_spans(self) -> list[dict]:
        """All recorded spans as dicts, ordered by start time."""
        with self._lock:
            logs = list(self._logs)
        spans = []
        for log in logs:
            for (span_id, parent_id, name, category, start_us, dur_us,
                 args) in list(log.events):
                spans.append(
                    {
                        "id": span_id,
                        "parent_id": parent_id,
                        "name": name,
                        "category": category,
                        "start_us": start_us,
                        "duration_us": dur_us,
                        "thread": log.thread_name,
                        "args": args or {},
                    }
                )
        spans.sort(key=lambda span: span["start_us"])
        return spans

    def clear(self) -> None:
        """Drop all recorded spans (thread logs stay registered)."""
        with self._lock:
            for log in self._logs:
                log.events.clear()
            self._event_count = 0
            self.dropped_events = 0

    def chrome_trace(self) -> dict:
        """The spans as a Chrome-trace / Perfetto ``traceEvents`` dict.

        Every span becomes a complete event (``"ph": "X"``) with ``ts``
        and ``dur`` in microseconds; thread-name metadata events label
        the tracks.  Load the JSON at https://ui.perfetto.dev or in
        ``chrome://tracing``.
        """
        with self._lock:
            logs = list(self._logs)
        events: list[dict] = []
        tids: dict[str, int] = {}
        for log in logs:
            tid = tids.setdefault(log.thread_name, len(tids) + 1)
            for (span_id, parent_id, name, category, start_us, dur_us,
                 args) in list(log.events):
                rendered_args = {"span_id": span_id}
                if parent_id is not None:
                    rendered_args["parent_id"] = parent_id
                if args:
                    rendered_args.update(args)
                events.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": category,
                        "ts": round(start_us, 3),
                        "dur": round(dur_us, 3),
                        "pid": 1,
                        "tid": tid,
                        "args": rendered_args,
                    }
                )
        for thread_name, tid in tids.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": thread_name},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.db.tracing",
                "dropped_events": self.dropped_events,
            },
        }

    def export(self, path: str) -> int:
        """Write the Chrome-trace JSON to *path*; returns #events."""
        trace = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(trace, handle)
            handle.write("\n")
        return len(trace["traceEvents"])


class NullTracer(Tracer):
    """A tracer that can never be enabled (context default)."""

    def __init__(self) -> None:
        super().__init__(enabled=False, max_events=0)

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return False

    @enabled.setter
    def enabled(self, _value: bool) -> None:
        # Silently stays disabled: the null tracer is a shared default
        # and must never start recording for one caller.
        return None


#: shared default for contexts created without an engine
NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing engine-lifetime counter."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value-wins measurement (e.g. ``cache.hit_ratio``)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming histogram with deterministic reservoir percentiles.

    ``count``/``total``/``min``/``max`` are exact over every observed
    value.  Percentiles are computed over a bounded sample: once the
    reservoir reaches *max_samples*, it is halved by keeping every
    second value and the sampling stride doubles — deterministic (no
    RNG) and still spread over the whole observation history.
    """

    __slots__ = ("_lock", "_values", "_stride", "_seen", "max_samples",
                 "count", "total", "min", "max")

    def __init__(self, max_samples: int = 8192):
        if max_samples < 2:
            raise ValueError("histogram needs at least 2 samples")
        self._lock = threading.Lock()
        self._values: list[float] = []
        self._stride = 1
        self._seen = 0
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._seen += 1
            if self._seen % self._stride == 0:
                self._values.append(value)
                if len(self._values) >= self.max_samples:
                    self._values = self._values[::2]
                    self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The nearest-rank percentile *p* (0 < p <= 100)."""
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        with self._lock:
            values = sorted(self._values)
        if not values:
            return 0.0
        rank = max(math.ceil(p / 100.0 * len(values)) - 1, 0)
        return values[rank]

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Engine-lifetime named metrics (counters, gauges, histograms).

    Owned by the :class:`~repro.db.engine.Database` and shared by every
    query's execution context, so values aggregate across queries —
    latency percentiles, cumulative cache hit ratios — where a
    :class:`~repro.db.profiler.QueryProfile` resets per query.
    Accessors get-or-create; asking for an existing name with a
    different metric type raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} is a "
                    f"{type(metric).__name__.lower()}, not a "
                    f"{kind.__name__.lower()}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def snapshot(self) -> dict[str, dict]:
        """All metrics as ``{name: {"type": ..., ...}}``, sorted."""
        with self._lock:
            metrics = dict(self._metrics)
        return {
            name: metrics[name].snapshot() for name in sorted(metrics)
        }

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


def flatten_metrics(snapshot: dict[str, dict]) -> dict[str, float]:
    """A metrics snapshot as flat ``name.field -> number`` pairs.

    Counters and gauges flatten to their value under the bare name;
    histograms expand to ``name.count``, ``name.mean``, ``name.p50``,
    ``name.p95``, ``name.p99``.  Used by the bench CSV writer.
    """
    flat: dict[str, float] = {}
    for name, rendered in snapshot.items():
        if rendered.get("type") == "histogram":
            for key in ("count", "mean", "p50", "p95", "p99"):
                flat[f"{name}.{key}"] = rendered[key]
        else:
            flat[name] = rendered["value"]
    return flat
