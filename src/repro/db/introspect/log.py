"""The persistent ring-buffer query log behind ``system.queries``.

In memory the log is a bounded deque of plain row dicts (see
``collector.ENTRY_FIELDS``).  For a persistent database every recorded
row is additionally appended to ``query_log.jsonl`` at the storage root
and flushed immediately — one write per finished query, no checkpoint
required — so the history survives a crash-kill and
``repro.connect(path=...)`` restores the newest *capacity* rows on
reopen.  A torn trailing line (the row being written when the process
died) is skipped during the reload instead of poisoning the log.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path

LOG_FILE_NAME = "query_log.jsonl"


class QueryLog:
    """Bounded query history with optional append-only persistence."""

    def __init__(
        self, capacity: int = 256, path: str | Path | None = None
    ):
        if capacity < 1:
            raise ValueError("query log capacity must be >= 1")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._handle = None
        self._next_query_id = 0
        if self.path is not None:
            self._load()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")

    def _load(self) -> None:
        if not self.path.exists():
            return
        rows: list[dict] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail write of a killed process; drop the row.
                    continue
                if isinstance(entry, dict):
                    rows.append(entry)
        self._entries.extend(rows[-self.capacity:])
        if rows:
            self._next_query_id = (
                max(int(entry.get("query_id", -1)) for entry in rows) + 1
            )

    def allocate_query_id(self) -> int:
        """The next query id (monotonic across restarts)."""
        with self._lock:
            query_id = self._next_query_id
            self._next_query_id += 1
            return query_id

    def record(self, entry: dict) -> None:
        """Append one finished-query row (and flush it to disk)."""
        with self._lock:
            self._entries.append(entry)
            if self._handle is not None:
                self._handle.write(
                    json.dumps(entry, sort_keys=True) + "\n"
                )
                self._handle.flush()

    def entries(self) -> list[dict]:
        """The retained rows, oldest first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
