"""Per-query resource collection and the live active-query registry.

A :class:`ResourceProfile` is created by the engine when a SELECT
starts and travels on the execution context (``context.collector``)
through the operators, the parallel executor, the storage scans and the
compiled-kernel path.  Each layer annotates it directly (the chosen
ModelJoin variant, the morsel total) or indirectly through the query's
thread-safe :class:`~repro.db.profiler.ProfileCounters`, which
:meth:`ResourceProfile.finish` folds into one complete row for
``system.queries``.

While the query runs its profile is registered in the
:class:`ActiveQueryRegistry`; because the underlying counters are
thread-safe, ``system.active_queries`` can snapshot live progress
(morsels completed/total, elapsed time) from any other thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

#: profile-counter names folded into the finished row, as
#: ``(attribute, counter_name)`` pairs
_COUNTER_FIELDS = (
    ("rows_read", "scan.rows_read"),
    ("bytes_read", "scan.bytes_read"),
    ("blocks_scanned", "scan.blocks_scanned"),
    ("blocks_skipped", "scan.blocks_skipped"),
    ("morsels", "morsels"),
    ("cache_hits", "model-cache-hits"),
    ("cache_misses", "model-cache-misses"),
    ("retries", "query.retries"),
)

#: the attributes that make up a ``system.queries`` log row, in column
#: order (shared with the virtual-table provider and the JSONL format)
ENTRY_FIELDS = (
    "query_id",
    "sql",
    "status",
    "error_class",
    "started_at",
    "latency_seconds",
    "slow",
    "rows_returned",
    "rows_read",
    "bytes_read",
    "blocks_scanned",
    "blocks_skipped",
    "morsels",
    "cache_hits",
    "cache_misses",
    "retries",
    "parallel",
    "compiled",
    "fallback",
    "modeljoin_variant",
    # appended in PR8 so older JSONL rows (without them) still load:
    # the restore path reads entries with .get(name, default)
    "session_id",
    "tenant",
)


@dataclass
class ResourceProfile:
    """One query's resource usage, accumulated while it runs."""

    query_id: int
    sql: str
    #: wall-clock start (unix seconds; latency uses perf_counter)
    started_at: float
    parallel: bool = False
    status: str = "running"
    error_class: str = ""
    latency_seconds: float = 0.0
    slow: bool = False
    rows_returned: int = 0
    #: rows materialized out of surviving storage blocks (pre-filter)
    rows_read: int = 0
    #: nominal (decoded) bytes of the blocks those rows came from
    bytes_read: int = 0
    blocks_scanned: int = 0
    blocks_skipped: int = 0
    morsels: int = 0
    #: total morsels of the shared queue (0 = not morsel-driven); set
    #: by the parallel executor when it attaches the morsel source
    morsels_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    #: at least one generated kernel executed for this query
    compiled: bool = False
    #: a generated kernel failed and the query re-ran interpreted
    fallback: bool = False
    #: the optimizer's chosen ModelJoin execution variant ("" = none)
    modeljoin_variant: str = ""
    #: serving-session identity ("" = direct single-caller use); set by
    #: the engine from the serve layer's admission record
    session_id: str = ""
    tenant: str = ""
    #: the query's cooperative cancellation token (if any); lets
    #: ``Database.close()`` and session teardown cancel in-flight
    #: queries found through the active-query registry
    cancellation: object | None = field(
        default=None, repr=False, compare=False
    )
    #: live handle to the running query's thread-safe counters; bound
    #: by the engine once the execution context exists and read
    #: concurrently by ``system.active_queries`` (never serialized)
    counters: object | None = field(default=None, repr=False, compare=False)
    _started_perf: float = field(
        default_factory=time.perf_counter, repr=False, compare=False
    )

    @property
    def elapsed_seconds(self) -> float:
        """Wall time since the query started (live reads while running,
        frozen to the final latency once finished)."""
        if self.status != "running":
            return self.latency_seconds
        return time.perf_counter() - self._started_perf

    def morsels_completed(self) -> int:
        """Live morsel progress (0 until the scan loop starts)."""
        counters = self.counters
        if counters is None:
            return self.morsels
        return counters.get("morsels")

    def finish(
        self,
        status: str,
        error: BaseException | None = None,
        rows_returned: int = 0,
    ) -> None:
        """Freeze the profile into its final log-row state."""
        self.latency_seconds = time.perf_counter() - self._started_perf
        self.status = status
        self.rows_returned = rows_returned
        if error is not None:
            self.error_class = type(error).__name__
        counters = self.counters
        if counters is not None:
            snapshot = counters.snapshot()
            for attribute, name in _COUNTER_FIELDS:
                value = snapshot.get(name, 0)
                if value:
                    setattr(self, attribute, int(value))
            if snapshot.get("compile.fused_pipelines", 0):
                self.compiled = True

    def to_entry(self) -> dict:
        """The finished profile as a plain JSON-serializable row."""
        return {name: getattr(self, name) for name in ENTRY_FIELDS}


class ActiveQueryRegistry:
    """Thread-safe registry of in-flight queries.

    The engine registers a query's :class:`ResourceProfile` before
    planning begins and deregisters it after the log row is recorded,
    so a scan of ``system.active_queries`` — including the observing
    query itself, which registers before it binds — sees every query
    currently holding the engine.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queries: dict[int, ResourceProfile] = {}

    def register(self, profile: ResourceProfile) -> None:
        with self._lock:
            self._queries[profile.query_id] = profile

    def deregister(self, query_id: int) -> None:
        with self._lock:
            self._queries.pop(query_id, None)

    def snapshot(self) -> list[ResourceProfile]:
        """The in-flight profiles, oldest first."""
        with self._lock:
            return sorted(
                self._queries.values(), key=lambda p: p.query_id
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._queries)
