"""Prometheus text exposition for the engine metrics registry.

``Database.export_metrics_text()`` renders a
:meth:`~repro.db.tracing.MetricsRegistry.snapshot` in the Prometheus
text format (version 0.0.4): counters and gauges as single samples,
histograms as summaries with the registry's deterministic-reservoir
quantiles.  Dotted engine names are mangled to the Prometheus alphabet
(``query.latency`` -> ``repro_query_latency``).

:func:`parse_prometheus_text` is the inverse used by the round-trip
unit test (and handy for scrapers in tests).
"""

from __future__ import annotations

import re

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: registry histogram percentile keys -> Prometheus quantile labels
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """Mangle a dotted engine metric name to a valid Prometheus name."""
    sanitized = _INVALID_CHARS.sub("_", name.strip())
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _format_value(value: float) -> str:
    value = float(value)
    if value.is_integer():
        return str(int(value))
    return repr(value)


def metrics_to_prometheus(
    snapshot: dict[str, dict], prefix: str = "repro_"
) -> str:
    """Render a metrics snapshot as Prometheus text exposition."""
    lines: list[str] = []
    for name, rendered in snapshot.items():
        metric = prometheus_name(name, prefix)
        kind = rendered.get("type", "gauge")
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {_format_value(rendered['value'])}")
            continue
        # Histogram -> summary: quantiles + _sum/_count.
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in _QUANTILES:
            lines.append(
                f'{metric}{{quantile="{quantile}"}} '
                f"{_format_value(rendered[key])}"
            )
        total = rendered["mean"] * rendered["count"]
        lines.append(f"{metric}_sum {_format_value(total)}")
        lines.append(f"{metric}_count {_format_value(rendered['count'])}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse Prometheus text exposition back into metric families.

    Returns ``{name: {"type": ..., "value": ...}}`` for counters and
    gauges, and ``{name: {"type": "summary", "quantiles": {...},
    "sum": ..., "count": ...}}`` for summaries.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}

    def family(name: str) -> dict:
        return families.setdefault(
            name, {"type": types.get(name, "untyped")}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        name_part, _, value_part = line.rpartition(" ")
        value = float(value_part)
        if "{" in name_part:
            name, _, labels = name_part.partition("{")
            entry = family(name)
            quantiles = entry.setdefault("quantiles", {})
            match = re.search(r'quantile="([^"]+)"', labels)
            if match is not None:
                quantiles[match.group(1)] = value
            continue
        for suffix, key in (("_sum", "sum"), ("_count", "count")):
            base = name_part[: -len(suffix)]
            if name_part.endswith(suffix) and types.get(base) == "summary":
                family(base)[key] = value
                break
        else:
            family(name_part)["value"] = value
    return families
