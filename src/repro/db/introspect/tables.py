"""The read-only virtual ``system`` schema.

:class:`SystemSchema` is attached to the catalog by the engine; any
``system.*`` table reference — in FROM clauses, joins, EXPLAIN — is
resolved here into a fresh point-in-time snapshot built as a plain
in-memory :class:`~repro.db.table.Table`.  Because the snapshot is an
ordinary table, the standard binder / optimizer / TableScan path
applies unchanged: no special operators, no side channel.

Available tables (see docs/OBSERVABILITY.md for the column reference):
``system.metrics``, ``system.queries``, ``system.active_queries``,
``system.buffer_pool``, ``system.kernel_cache``, ``system.model_cache``,
``system.breakers``, ``system.storage_blocks``, ``system.tables``,
``system.columns``, ``system.models`` (one row per registered model
version — see docs/TRAINING.md), ``system.sessions``,
``system.admission_queue``
(those two render live serving-layer state when a
:class:`repro.db.serve.Server` is attached, and are empty otherwise)
and ``system.shards`` (one row per shard worker process when the
database was opened with ``shards=N``, empty otherwise).
"""

from __future__ import annotations

import math

from repro.db.introspect.collector import ENTRY_FIELDS
from repro.db.schema import Column, Schema
from repro.db.table import Table
from repro.db.types import SqlType
from repro.errors import CatalogError

_QUERY_COLUMN_TYPES = {
    "query_id": SqlType.INTEGER,
    "sql": SqlType.VARCHAR,
    "status": SqlType.VARCHAR,
    "error_class": SqlType.VARCHAR,
    "started_at": SqlType.DOUBLE,
    "latency_seconds": SqlType.DOUBLE,
    "slow": SqlType.BOOLEAN,
    "rows_returned": SqlType.INTEGER,
    "rows_read": SqlType.INTEGER,
    "bytes_read": SqlType.INTEGER,
    "blocks_scanned": SqlType.INTEGER,
    "blocks_skipped": SqlType.INTEGER,
    "morsels": SqlType.INTEGER,
    "cache_hits": SqlType.INTEGER,
    "cache_misses": SqlType.INTEGER,
    "retries": SqlType.INTEGER,
    "parallel": SqlType.BOOLEAN,
    "compiled": SqlType.BOOLEAN,
    "fallback": SqlType.BOOLEAN,
    "modeljoin_variant": SqlType.VARCHAR,
    "session_id": SqlType.VARCHAR,
    "tenant": SqlType.VARCHAR,
}

_TYPE_DEFAULTS = {
    SqlType.INTEGER: 0,
    SqlType.FLOAT: 0.0,
    SqlType.DOUBLE: 0.0,
    SqlType.VARCHAR: "",
    SqlType.BOOLEAN: False,
}


def _schema(*columns: tuple[str, SqlType]) -> Schema:
    return Schema(tuple(Column(name, kind) for name, kind in columns))


def _ratio(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def _zone_bound(value) -> float:
    """A footer min/max as DOUBLE; non-numeric columns carry NaN."""
    if value is None:
        return math.nan
    return float(value)


class SystemSchema:
    """Builds snapshot tables for ``system.*`` names."""

    PREFIX = "system."

    def __init__(self, database):
        self._database = database
        self._builders = {
            "metrics": self._metrics,
            "queries": self._queries,
            "active_queries": self._active_queries,
            "buffer_pool": self._buffer_pool,
            "kernel_cache": self._kernel_cache,
            "model_cache": self._model_cache,
            "breakers": self._breakers,
            "storage_blocks": self._storage_blocks,
            "tables": self._tables,
            "columns": self._columns,
            "models": self._models,
            "sessions": self._sessions,
            "admission_queue": self._admission_queue,
            "shards": self._shards,
        }

    # ------------------------------------------------------------------
    # catalog protocol
    # ------------------------------------------------------------------
    def table_names(self) -> tuple[str, ...]:
        return tuple(
            self.PREFIX + name for name in sorted(self._builders)
        )

    def _key(self, name: str) -> str:
        key = name.lower()
        if key.startswith(self.PREFIX):
            key = key[len(self.PREFIX):]
        return key

    def has_table(self, name: str) -> bool:
        return self._key(name) in self._builders

    def table(self, name: str) -> Table:
        builder = self._builders.get(self._key(name))
        if builder is None:
            raise CatalogError(
                f"system table {name!r} does not exist "
                f"(available: {', '.join(self.table_names())})"
            )
        schema, rows = builder()
        snapshot = Table(self.PREFIX + self._key(name), schema)
        if rows:
            snapshot.append_rows(rows)
        return snapshot

    # ------------------------------------------------------------------
    # providers
    # ------------------------------------------------------------------
    def _metrics(self):
        schema = _schema(
            ("name", SqlType.VARCHAR),
            ("kind", SqlType.VARCHAR),
            ("value", SqlType.DOUBLE),
        )
        rows = []
        for name, rendered in self._database.metrics.snapshot().items():
            kind = rendered.get("type", "gauge")
            if kind == "histogram":
                for key in (
                    "count", "mean", "min", "max", "p50", "p95", "p99"
                ):
                    rows.append(
                        (f"{name}.{key}", kind, float(rendered[key]))
                    )
            else:
                rows.append((name, kind, float(rendered["value"])))
        return schema, rows

    def _queries(self):
        schema = _schema(
            *(
                (name, _QUERY_COLUMN_TYPES[name])
                for name in ENTRY_FIELDS
            )
        )
        rows = []
        for entry in self._database.query_log.entries():
            rows.append(
                tuple(
                    entry.get(
                        name, _TYPE_DEFAULTS[_QUERY_COLUMN_TYPES[name]]
                    )
                    for name in ENTRY_FIELDS
                )
            )
        return schema, rows

    def _active_queries(self):
        schema = _schema(
            ("query_id", SqlType.INTEGER),
            ("sql", SqlType.VARCHAR),
            ("elapsed_seconds", SqlType.DOUBLE),
            ("morsels_completed", SqlType.INTEGER),
            ("morsels_total", SqlType.INTEGER),
            ("parallel", SqlType.BOOLEAN),
            ("session_id", SqlType.VARCHAR),
            ("tenant", SqlType.VARCHAR),
        )
        rows = [
            (
                profile.query_id,
                profile.sql,
                profile.elapsed_seconds,
                profile.morsels_completed(),
                profile.morsels_total,
                profile.parallel,
                profile.session_id,
                profile.tenant,
            )
            for profile in self._database.active_queries.snapshot()
        ]
        return schema, rows

    def _sessions(self):
        schema = _schema(
            ("session_id", SqlType.VARCHAR),
            ("tenant", SqlType.VARCHAR),
            ("priority", SqlType.INTEGER),
            ("state", SqlType.VARCHAR),
            ("submitted", SqlType.INTEGER),
            ("rejected", SqlType.INTEGER),
            ("completed", SqlType.INTEGER),
            ("active", SqlType.INTEGER),
            ("opened_seconds", SqlType.DOUBLE),
        )
        server = getattr(self._database, "_server", None)
        if server is None:
            return schema, []
        rows = [
            (
                entry["session_id"],
                entry["tenant"],
                entry["priority"],
                entry["state"],
                entry["submitted"],
                entry["rejected"],
                entry["completed"],
                entry["active"],
                entry["opened_seconds"],
            )
            for entry in server.sessions_snapshot()
        ]
        return schema, rows

    def _admission_queue(self):
        schema = _schema(
            ("position", SqlType.INTEGER),
            ("session_id", SqlType.VARCHAR),
            ("tenant", SqlType.VARCHAR),
            ("priority", SqlType.INTEGER),
            ("sql", SqlType.VARCHAR),
            ("queued_seconds", SqlType.DOUBLE),
            ("deadline_seconds", SqlType.DOUBLE),
        )
        server = getattr(self._database, "_server", None)
        if server is None:
            return schema, []
        rows = [
            (
                position,
                entry["session_id"],
                entry["tenant"],
                entry["priority"],
                entry["sql"],
                entry["queued_seconds"],
                (
                    entry["deadline_seconds"]
                    if entry["deadline_seconds"] is not None
                    else math.nan
                ),
            )
            for position, entry in enumerate(server.queue_snapshot())
        ]
        return schema, rows

    def _shards(self):
        schema = _schema(
            ("shard_id", SqlType.INTEGER),
            ("pid", SqlType.INTEGER),
            ("alive", SqlType.BOOLEAN),
            ("rows", SqlType.INTEGER),
            ("tables", SqlType.INTEGER),
            ("queries", SqlType.INTEGER),
            ("rows_read", SqlType.INTEGER),
            ("bytes_read", SqlType.INTEGER),
            ("morsels", SqlType.INTEGER),
        )
        coordinator = getattr(self._database, "sharding", None)
        if coordinator is None:
            return schema, []
        return schema, coordinator.shard_rows()

    def _buffer_pool(self):
        schema = _schema(
            ("capacity_bytes", SqlType.INTEGER),
            ("resident_bytes", SqlType.INTEGER),
            ("frames", SqlType.INTEGER),
            ("hits", SqlType.INTEGER),
            ("misses", SqlType.INTEGER),
            ("evictions", SqlType.INTEGER),
            ("wasted_loads", SqlType.INTEGER),
            ("hit_ratio", SqlType.DOUBLE),
        )
        storage = self._database.storage
        if storage is None:
            return schema, []
        pool = storage.buffer_pool
        stats = pool.statistics
        rows = [
            (
                pool.capacity_bytes,
                pool.resident_bytes,
                len(pool),
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.wasted_loads,
                _ratio(stats.hits, stats.misses),
            )
        ]
        return schema, rows

    def _kernel_cache(self):
        schema = _schema(
            ("entries", SqlType.INTEGER),
            ("hits", SqlType.INTEGER),
            ("misses", SqlType.INTEGER),
            ("evictions", SqlType.INTEGER),
            ("hit_ratio", SqlType.DOUBLE),
        )
        snapshot = self._database.kernel_cache.snapshot()
        rows = [
            (
                snapshot["entries"],
                snapshot["hits"],
                snapshot["misses"],
                snapshot["evictions"],
                _ratio(snapshot["hits"], snapshot["misses"]),
            )
        ]
        return schema, rows

    def _model_cache(self):
        schema = _schema(
            ("entries", SqlType.INTEGER),
            ("resident_bytes", SqlType.INTEGER),
            ("hits", SqlType.INTEGER),
            ("misses", SqlType.INTEGER),
            ("evictions", SqlType.INTEGER),
            ("invalidations", SqlType.INTEGER),
            ("corruptions", SqlType.INTEGER),
            ("hit_ratio", SqlType.DOUBLE),
        )
        cache = self._database.model_cache
        if cache is None:
            return schema, []
        stats = cache.statistics()
        rows = [
            (
                stats["entries"],
                stats["resident_bytes"],
                stats["hits"],
                stats["misses"],
                stats["evictions"],
                stats["invalidations"],
                stats["corruptions"],
                _ratio(stats["hits"], stats["misses"]),
            )
        ]
        return schema, rows

    def _breakers(self):
        schema = _schema(
            ("name", SqlType.VARCHAR),
            ("open", SqlType.BOOLEAN),
            ("consecutive_failures", SqlType.INTEGER),
            ("failure_threshold", SqlType.INTEGER),
            ("reset_seconds", SqlType.DOUBLE),
            ("trips", SqlType.INTEGER),
        )
        rows = [
            (
                name,
                breaker.is_open,
                breaker.consecutive_failures,
                breaker.failure_threshold,
                float(breaker.reset_seconds),
                breaker.trips,
            )
            for name, breaker in sorted(
                self._database.breakers.items()
            )
        ]
        return schema, rows

    def _storage_blocks(self):
        schema = _schema(
            ("table_name", SqlType.VARCHAR),
            ("partition", SqlType.INTEGER),
            ("block", SqlType.INTEGER),
            ("column_name", SqlType.VARCHAR),
            ("codec", SqlType.VARCHAR),
            ("rows", SqlType.INTEGER),
            ("raw_bytes", SqlType.INTEGER),
            ("nulls", SqlType.INTEGER),
            ("min_value", SqlType.DOUBLE),
            ("max_value", SqlType.DOUBLE),
        )
        rows = []
        catalog = self._database.catalog
        for key in sorted(catalog.tables):
            table = catalog.tables[key]
            for index, partition in enumerate(table.partitions):
                disk_meta = getattr(
                    partition, "disk_block_metadata", None
                )
                if disk_meta is not None:
                    offset = 0
                    for entry in disk_meta():
                        offset = max(offset, entry["block"] + 1)
                        rows.append(
                            (
                                table.name,
                                index,
                                entry["block"],
                                entry["column"],
                                entry["codec"],
                                entry["rows"],
                                entry["raw_nbytes"],
                                entry["nulls"],
                                _zone_bound(entry["min"]),
                                _zone_bound(entry["max"]),
                            )
                        )
                    overlay = partition.overlay_blocks()
                else:
                    offset = 0
                    overlay = partition.blocks()
                rows.extend(
                    self._memory_block_rows(
                        table.name, index, table.schema, overlay, offset
                    )
                )
        return schema, rows

    @staticmethod
    def _memory_block_rows(table_name, partition, schema, blocks, offset):
        rows = []
        for index, block in enumerate(blocks, start=offset):
            for position, column in enumerate(schema):
                stats = block.stats[position]
                array = block.arrays[position]
                nbytes = (
                    len(array) * 16
                    if array.dtype == object
                    else array.nbytes
                )
                rows.append(
                    (
                        table_name,
                        partition,
                        index,
                        column.name,
                        "memory",
                        block.length,
                        int(nbytes),
                        0,
                        stats.minimum if stats is not None else math.nan,
                        stats.maximum if stats is not None else math.nan,
                    )
                )
        return rows

    def _tables(self):
        schema = _schema(
            ("name", SqlType.VARCHAR),
            ("disk", SqlType.BOOLEAN),
            ("columns", SqlType.INTEGER),
            ("partitions", SqlType.INTEGER),
            ("rows", SqlType.INTEGER),
            ("nominal_bytes", SqlType.INTEGER),
            ("partition_key", SqlType.VARCHAR),
            ("sort_key", SqlType.VARCHAR),
            ("version", SqlType.INTEGER),
            ("uid", SqlType.INTEGER),
        )
        catalog = self._database.catalog
        rows = [
            (
                table.name,
                table.disk_resident,
                len(table.schema),
                table.num_partitions,
                table.row_count,
                table.nominal_bytes(),
                table.partition_key or "",
                ", ".join(table.sort_key),
                table.version,
                table.uid,
            )
            for key in sorted(catalog.tables)
            for table in (catalog.tables[key],)
        ]
        return schema, rows

    def _models(self):
        schema = _schema(
            ("name", SqlType.VARCHAR),
            ("version", SqlType.INTEGER),
            ("current", SqlType.BOOLEAN),
            ("table_name", SqlType.VARCHAR),
            ("created_at", SqlType.DOUBLE),
            ("epochs", SqlType.INTEGER),
            ("batch_size", SqlType.INTEGER),
            ("learning_rate", SqlType.DOUBLE),
            ("seed", SqlType.INTEGER),
            ("loss", SqlType.VARCHAR),
            ("final_loss", SqlType.DOUBLE),
            ("weight_checksum", SqlType.VARCHAR),
            ("source_fingerprint", SqlType.VARCHAR),
            ("arch", SqlType.VARCHAR),
        )
        catalog = self._database.catalog
        rows = []
        for name in sorted(catalog.model_versions):
            current = catalog.current_versions.get(name)
            for version in sorted(catalog.model_versions[name]):
                record = catalog.model_versions[name][version]
                rows.append(
                    (
                        name,
                        version,
                        version == current,
                        record.metadata.table_name,
                        record.created_at,
                        record.epochs,
                        record.batch_size,
                        record.learning_rate,
                        record.seed,
                        record.loss_name,
                        record.final_loss,
                        f"{record.weight_checksum:08x}",
                        record.source_fingerprint,
                        record.arch,
                    )
                )
        # Models registered directly (publish_model) without a trained
        # version history surface as version 0, always current.
        for name in sorted(catalog.models):
            if name in catalog.model_versions:
                continue
            metadata = catalog.models[name]
            rows.append(
                (
                    name,
                    0,
                    True,
                    metadata.table_name,
                    math.nan,
                    0,
                    0,
                    math.nan,
                    0,
                    "",
                    math.nan,
                    "",
                    "",
                    "",
                )
            )
        return schema, rows

    def _columns(self):
        schema = _schema(
            ("table_name", SqlType.VARCHAR),
            ("column_name", SqlType.VARCHAR),
            ("position", SqlType.INTEGER),
            ("type", SqlType.VARCHAR),
        )
        catalog = self._database.catalog
        rows = [
            (table.name, column.name, position, column.sql_type.value)
            for key in sorted(catalog.tables)
            for table in (catalog.tables[key],)
            for position, column in enumerate(table.schema)
        ]
        return schema, rows
