"""SQL-queryable engine introspection (the ``system`` schema).

The engine's operational state — metrics, the query log, live query
progress, caches, breakers, storage block layout, the catalog itself —
is exposed as a read-only virtual ``system`` schema.  Each
``system.*`` name resolves through the regular catalog into a fresh
point-in-time snapshot built as a plain in-memory table, so the whole
standard SQL surface applies: joins against user tables, filters,
aggregates, ORDER BY, and EXPLAIN (see docs/OBSERVABILITY.md).

Modules:

- :mod:`~repro.db.introspect.collector` — the per-query
  :class:`ResourceProfile` threaded through the execution context and
  the :class:`ActiveQueryRegistry` behind ``system.active_queries``.
- :mod:`~repro.db.introspect.log` — the :class:`QueryLog` ring buffer
  with crash-safe JSONL persistence (``system.queries``).
- :mod:`~repro.db.introspect.tables` — the :class:`SystemSchema`
  virtual-table providers.
- :mod:`~repro.db.introspect.prometheus` — Prometheus text exposition
  for ``Database.export_metrics_text()``.
"""

from repro.db.introspect.collector import (
    ActiveQueryRegistry,
    ResourceProfile,
)
from repro.db.introspect.log import QueryLog
from repro.db.introspect.prometheus import (
    metrics_to_prometheus,
    parse_prometheus_text,
)
from repro.db.introspect.tables import SystemSchema

__all__ = [
    "ActiveQueryRegistry",
    "QueryLog",
    "ResourceProfile",
    "SystemSchema",
    "metrics_to_prometheus",
    "parse_prometheus_text",
]
