"""Engine-side resource accounting.

The paper's Table 3 reports the *peak memory of the database engine*
during model inference.  A C++ engine measures RSS; in Python, process
RSS is dominated by the interpreter, so the engine instead accounts its
own logical allocations: hash-table builds, buffered aggregation state,
materialized intermediates, model weight matrices.  Operators register
allocations/releases with the :class:`MemoryAccountant` attached to the
execution context; the peak over a query is the reported number.

A lightweight :class:`Stopwatch` is also provided for phase timing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


class MemoryAccountant:
    """Tracks logically allocated bytes and the high-water mark.

    Releasing more than was allocated (a double release, or a release
    against the wrong category) clamps the balance at zero instead of
    letting it go negative: a negative balance would silently deflate
    every later peak — the Table-3-style numbers — for the rest of the
    query.  Each clamp increments :attr:`underflows`, which the engine
    surfaces as the ``memory.release_underflow`` counter so accounting
    bugs are visible instead of corrupting the measurements.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.current_bytes = 0
        self.peak_bytes = 0
        self.by_category: dict[str, int] = {}
        #: releases that exceeded the tracked balance (clamped at zero)
        self.underflows = 0

    def allocate(self, nbytes: int, category: str = "other") -> None:
        if nbytes < 0:
            raise ValueError("cannot allocate a negative number of bytes")
        with self._lock:
            self.current_bytes += nbytes
            self.by_category[category] = (
                self.by_category.get(category, 0) + nbytes
            )
            if self.current_bytes > self.peak_bytes:
                self.peak_bytes = self.current_bytes

    def release(self, nbytes: int, category: str = "other") -> None:
        if nbytes < 0:
            raise ValueError("cannot release a negative number of bytes")
        with self._lock:
            underflow = False
            balance = self.by_category.get(category, 0) - nbytes
            if balance < 0:
                underflow = True
                balance = 0
            self.by_category[category] = balance
            total = self.current_bytes - nbytes
            if total < 0:
                underflow = True
                total = 0
            self.current_bytes = total
            if underflow:
                self.underflows += 1

    def reset(self) -> None:
        with self._lock:
            self.current_bytes = 0
            self.peak_bytes = 0
            self.by_category.clear()
            self.underflows = 0

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.by_category)


@dataclass
class Stopwatch:
    """Accumulates named wall-clock phase timings.

    Partition pipelines share one stopwatch through the execution
    context, so the read-modify-write in :meth:`add` must be locked —
    unsynchronized pipelines would lose each other's time.
    """

    phases: dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def measure(self, name: str):
        """Context manager adding the elapsed time to phase *name*."""
        return _Measurement(self, name)

    def add(self, name: str, seconds: float) -> None:
        with self._lock:
            self.phases[name] = self.phases.get(name, 0.0) + seconds

    def total(self) -> float:
        with self._lock:
            return sum(self.phases.values())


class ProfileCounters:
    """Thread-safe named event counters (cache hits, morsels, ...).

    Operators increment counters through the execution context; the
    query profile exposes the final values.  Counter names are free-form
    dotted strings — per-worker breakdowns use ``name.worker-i`` keys
    next to the aggregate ``name`` key.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


class _Measurement:
    def __init__(self, stopwatch: Stopwatch, name: str):
        self._stopwatch = stopwatch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Measurement":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self._stopwatch.add(self._name, time.perf_counter() - self._start)


@dataclass
class QueryProfile:
    """Resource usage of one executed query."""

    wall_seconds: float = 0.0
    memory: MemoryAccountant = field(default_factory=MemoryAccountant)
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    counters: ProfileCounters = field(default_factory=ProfileCounters)
    rows_returned: int = 0

    @property
    def peak_memory_bytes(self) -> int:
        return self.memory.peak_bytes


def finalize_profile(profile: QueryProfile, metrics=None) -> None:
    """Post-query bookkeeping shared by the engine and the runners.

    Surfaces memory-release underflows as the ``memory.release_underflow``
    profile counter and, when an engine-lifetime metrics registry is
    given (duck-typed: see :class:`repro.db.tracing.MetricsRegistry`),
    feeds the cross-query aggregates: ``query.latency`` (histogram),
    ``query.count`` and ``query.rows`` (counters).
    """
    underflows = profile.memory.underflows
    if underflows:
        profile.counters.increment("memory.release_underflow", underflows)
    if metrics is None:
        return
    metrics.histogram("query.latency").observe(profile.wall_seconds)
    metrics.counter("query.count").increment()
    metrics.counter("query.rows").increment(profile.rows_returned)
    if underflows:
        metrics.counter("memory.release_underflow").increment(underflows)
