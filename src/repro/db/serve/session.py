"""Serving sessions: one client's handle on the shared database.

A :class:`Session` carries a client's identity (tenant, priority,
default deadline) and bookkeeping.  It never touches the engine
directly — every query goes through the server's admission queue — and
closing it cancels the session's in-flight queries cooperatively, which
is exactly what happens when a wire client disconnects mid-query.
"""

from __future__ import annotations

import threading
import time

from repro.db.resilience import CancellationToken
from repro.db.serve.admission import AdmittedQuery
from repro.errors import SessionClosedError


class Session:
    """One client's session against a serving :class:`~.server.Server`."""

    def __init__(
        self,
        server,
        session_id: str,
        tenant: str = "default",
        priority: int = 0,
        default_timeout_seconds: float | None = None,
    ):
        self._server = server
        self.session_id = session_id
        self.tenant = tenant
        self.priority = priority
        self.default_timeout_seconds = default_timeout_seconds
        self.opened_at = time.time()
        self._lock = threading.Lock()
        self._closed = False
        self._inflight: set[AdmittedQuery] = set()
        self.submitted = 0
        self.rejected = 0
        self.completed = 0

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def active(self) -> int:
        """Queries currently queued or executing for this session."""
        with self._lock:
            return len(self._inflight)

    # ------------------------------------------------------------------
    # query submission
    # ------------------------------------------------------------------
    def submit(
        self,
        sql: str,
        timeout_seconds: float | None = None,
        parallel: bool = False,
    ) -> AdmittedQuery:
        """Admit *sql* and return its future (non-blocking).

        Raises :class:`SessionClosedError` on a closed session and
        :class:`~repro.errors.QueryRejectedError` when this query is
        the shedding victim at admission.
        """
        with self._lock:
            if self._closed:
                raise SessionClosedError(
                    f"session {self.session_id!r} is closed"
                )
            self.submitted += 1
        seconds = (
            timeout_seconds
            if timeout_seconds is not None
            else self.default_timeout_seconds
        )
        token = (
            CancellationToken.with_timeout(seconds)
            if seconds is not None
            else CancellationToken()
        )
        entry = AdmittedQuery(
            sql=sql, session=self, token=token, parallel=parallel
        )
        with self._lock:
            self._inflight.add(entry)
        self._server._submit(entry)
        return entry

    def execute(
        self,
        sql: str,
        timeout_seconds: float | None = None,
        parallel: bool = False,
    ):
        """Admit *sql* and block for its result (or raise)."""
        return self.submit(
            sql, timeout_seconds=timeout_seconds, parallel=parallel
        ).wait()

    def _query_done(self, entry: AdmittedQuery) -> None:
        """Terminal-state hook called from :class:`AdmittedQuery`."""
        with self._lock:
            self._inflight.discard(entry)
            if entry.status == "rejected":
                self.rejected += 1
            elif entry.status == "ok":
                self.completed += 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, reason: str = "session closed") -> None:
        """Close the session, cancelling its in-flight queries.

        Cancellation is cooperative: a query currently executing stops
        at its next morsel/operator checkpoint with
        :class:`~repro.errors.QueryCancelledError`; a query still
        queued is failed by the dispatcher the moment it is taken.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            inflight = list(self._inflight)
        for entry in inflight:
            entry.token.cancel(reason)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def stats(self) -> dict:
        """One ``system.sessions`` row."""
        return {
            "session_id": self.session_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": "closed" if self._closed else "open",
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "active": self.active,
            "opened_seconds": time.time() - self.opened_at,
        }
