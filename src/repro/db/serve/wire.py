"""A line-framed JSON wire protocol over plain sockets.

One TCP connection carries one session.  Requests and responses are
single JSON objects, one per ``\\n``-terminated line (UTF-8, no binary
framing — trivially debuggable with ``nc``):

Requests::

    {"op": "hello", "tenant": "t0", "priority": 5, "timeout": 2.0}
    {"op": "query", "sql": "SELECT ...", "id": 7,
     "timeout": 1.0, "parallel": false}
    {"op": "close"}

Responses::

    {"ok": true, "session_id": "s0001"}                      (hello)
    {"ok": true, "id": 7, "columns": ["c"], "rows": [[1]],
     "row_count": 1}                                         (query)
    {"ok": false, "id": 7, "error_class": "QueryRejectedError",
     "message": "..."}                                       (failure)

The server closes the session when the connection drops — for any
reason, including an abrupt client disconnect mid-query — which
cancels the session's in-flight queries cooperatively (see
``docs/SERVING.md``).  :class:`WireClient` is the matching stdlib-only
client; it re-raises failures as their original
:mod:`repro.errors` exception types.
"""

from __future__ import annotations

import json
import socket
import threading

from repro import errors as _errors
from repro.errors import DatabaseError


def _jsonable(value):
    """A result cell as a plain JSON value (numpy scalars unwrapped)."""
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (str, bytes)):
        return item()
    return value


class WireServer:
    """Serves the wire protocol for one :class:`~.server.Server`."""

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0):
        self._server = server
        self._socket = socket.create_server((host, port))
        self.host, self.port = self._socket.getsockname()[:2]
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-wire-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                connection, _ = self._socket.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="repro-wire-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        session = None
        try:
            reader = connection.makefile("r", encoding="utf-8")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as error:
                    self._respond(
                        connection,
                        {
                            "ok": False,
                            "error_class": "SqlSyntaxError",
                            "message": f"bad request framing: {error}",
                        },
                    )
                    continue
                session, stop = self._handle(
                    connection, session, request
                )
                if stop:
                    break
        except OSError:
            pass  # client went away; fall through to cleanup
        finally:
            # A dropped connection closes the session, which cancels
            # its in-flight queries cooperatively.
            if session is not None:
                session.close(reason="client disconnected")
            try:
                connection.close()
            except OSError:
                pass

    def _handle(self, connection, session, request):
        op = request.get("op")
        request_id = request.get("id")
        try:
            if op == "hello":
                session = self._server.open_session(
                    tenant=str(request.get("tenant", "default")),
                    priority=int(request.get("priority", 0)),
                    timeout_seconds=request.get("timeout"),
                )
                self._respond(
                    connection,
                    {"ok": True, "session_id": session.session_id},
                )
                return session, False
            if op == "close":
                self._respond(connection, {"ok": True})
                return session, True
            if op == "query":
                if session is None:
                    raise DatabaseError(
                        "no session: send a hello request first"
                    )
                result = session.execute(
                    str(request["sql"]),
                    timeout_seconds=request.get("timeout"),
                    parallel=bool(request.get("parallel", False)),
                )
                self._respond(
                    connection,
                    {
                        "ok": True,
                        "id": request_id,
                        "columns": list(result.schema.names),
                        "rows": [
                            [_jsonable(value) for value in row]
                            for row in result.rows
                        ],
                        "row_count": result.row_count,
                    },
                )
                return session, False
            raise DatabaseError(f"unknown wire op {op!r}")
        except Exception as error:
            self._respond(
                connection,
                {
                    "ok": False,
                    "id": request_id,
                    "error_class": type(error).__name__,
                    "message": str(error),
                },
            )
            return session, False

    @staticmethod
    def _respond(connection: socket.socket, payload: dict) -> None:
        try:
            connection.sendall(
                (json.dumps(payload) + "\n").encode("utf-8")
            )
        except OSError:
            pass  # client gone; its session closes on loop exit

    def close(self) -> None:
        """Stop accepting connections (idempotent).

        Existing connections wind down through their own threads; the
        owning :class:`~.server.Server` cancels their queries when it
        closes.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "WireServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class WireClient:
    """A blocking stdlib client for the wire protocol."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        priority: int = 0,
        timeout_seconds: float | None = None,
    ):
        self._socket = socket.create_connection((host, port))
        self._reader = self._socket.makefile("r", encoding="utf-8")
        self._lock = threading.Lock()
        hello = {"op": "hello", "tenant": tenant, "priority": priority}
        if timeout_seconds is not None:
            hello["timeout"] = timeout_seconds
        response = self.request(hello)
        self.session_id = response.get("session_id", "")

    def request(self, payload: dict) -> dict:
        """Send one request line, read one response line."""
        with self._lock:
            self._socket.sendall(
                (json.dumps(payload) + "\n").encode("utf-8")
            )
            line = self._reader.readline()
        if not line:
            raise ConnectionError("wire server closed the connection")
        response = json.loads(line)
        if not response.get("ok", False):
            error_type = getattr(
                _errors, response.get("error_class", ""), DatabaseError
            )
            if not (
                isinstance(error_type, type)
                and issubclass(error_type, Exception)
            ):
                error_type = DatabaseError
            raise error_type(response.get("message", "wire error"))
        return response

    def query(
        self,
        sql: str,
        timeout_seconds: float | None = None,
        parallel: bool = False,
        request_id=None,
    ) -> dict:
        """Execute *sql*; returns the decoded response payload.

        Failures re-raise as their original exception types
        (``QueryRejectedError``, ``QueryTimeoutError``, ...).
        """
        payload = {"op": "query", "sql": sql, "parallel": parallel}
        if timeout_seconds is not None:
            payload["timeout"] = timeout_seconds
        if request_id is not None:
            payload["id"] = request_id
        return self.request(payload)

    def close(self) -> None:
        try:
            self.request({"op": "close"})
        except (OSError, ConnectionError):
            pass
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
