"""The bounded admission queue: backpressure with deterministic shedding.

Every query a session submits becomes an :class:`AdmittedQuery` and
enters the server's single :class:`AdmissionQueue`.  The queue holds at
most *capacity* entries; pushing one more forces a **shed decision**,
resolved deterministically rather than by arrival luck:

* the victim is the entry with the **lowest priority**;
* among equals, the one **closest to its deadline** (it is the most
  likely to miss it anyway — shedding it wastes the least work);
* among still-equals, the newest (latest sequence number).

The victim — possibly the entry just pushed — fails immediately with
:class:`~repro.errors.QueryRejectedError`; a shed client is never left
hanging.  Dispatchers drain the queue with the mirrored preference
(fewest in-flight queries per tenant first, then highest priority, then
earliest deadline, then FIFO), so one chatty tenant cannot starve the
others even when every entry shares a priority.

The ``serve.admit`` fault site fires on every admission attempt, so
chaos runs (``REPRO_FAULTS=serve.admit=prob:0.1,...``) exercise the
rejection path: an injected fault surfaces as the same immediate
``QueryRejectedError`` a deterministic shed produces.
"""

from __future__ import annotations

import math
import threading
import time

from repro.db import faults
from repro.db.resilience import CancellationToken
from repro.errors import InjectedFaultError, QueryRejectedError


class AdmittedQuery:
    """One query's journey through the serving layer.

    Doubles as the client-visible future: :meth:`wait` blocks until a
    dispatcher finishes, fails, or sheds the query, then returns the
    :class:`~repro.db.engine.Result` or raises the recorded error.
    """

    def __init__(
        self,
        sql: str,
        session,
        token: CancellationToken,
        parallel: bool = False,
    ):
        self.sql = sql
        self.session = session
        self.tenant = session.tenant
        self.priority = session.priority
        self.token = token
        self.parallel = parallel
        #: assigned by the queue under its lock (admission order)
        self.seq = -1
        self.enqueued_at = time.perf_counter()
        self.status = "queued"
        self.result = None
        self.error: BaseException | None = None
        self._done = threading.Event()

    def remaining_seconds(self) -> float:
        """Seconds to the deadline (``inf`` when there is none)."""
        remaining = self.token.remaining_seconds()
        return math.inf if remaining is None else remaining

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def finish(self, result) -> None:
        self.result = result
        self.status = "ok"
        self.session._query_done(self)
        self._done.set()

    def fail(self, error: BaseException, status: str) -> None:
        self.error = error
        self.status = status
        self.session._query_done(self)
        self._done.set()

    def wait(self, timeout: float | None = None):
        """Block for the outcome; returns the result or raises."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query outcome not available within {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return self.result


def _shed_key(entry: AdmittedQuery):
    # Lowest priority sheds first; then closest to deadline; then the
    # newest arrival (largest seq) — all total orders, so the decision
    # is deterministic for a given queue state.
    return (entry.priority, entry.remaining_seconds(), -entry.seq)


def _take_key(inflight: dict, entry: AdmittedQuery):
    # Tenant fairness dominates: a tenant with fewer queries currently
    # executing is served first, so one tenant cannot occupy every
    # dispatcher.  Then priority (higher first), urgency, FIFO.
    return (
        inflight.get(entry.tenant, 0),
        -entry.priority,
        entry.remaining_seconds(),
        entry.seq,
    )


class AdmissionQueue:
    """Bounded, priority- and deadline-aware admission queue."""

    def __init__(self, capacity: int, metrics=None):
        if capacity < 1:
            raise ValueError("admission queue capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._entries: list[AdmittedQuery] = []
        self._seq = 0
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _count(self, name: str, value: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).increment(value)

    def _set_depth_locked(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("server.queue_depth").set(
                len(self._entries)
            )

    def admit(self, entry: AdmittedQuery) -> list[AdmittedQuery]:
        """Enqueue *entry*; returns the entries shed to make room.

        Raises :class:`QueryRejectedError` when *entry* itself is the
        shed victim, the queue is closed, or the ``serve.admit`` fault
        fires.  Shed victims in the returned list have **not** been
        failed yet — the server fails and logs them, so every rejection
        lands a ``system.queries`` row.
        """
        if faults.ACTIVE is not None:
            try:
                faults.ACTIVE.fire("serve.admit")
            except InjectedFaultError as fault:
                self._count("server.queries_rejected")
                raise QueryRejectedError(
                    "admission rejected by injected fault"
                ) from fault
        with self._ready:
            if self._closed:
                self._count("server.queries_rejected")
                raise QueryRejectedError("server is closed")
            entry.seq = self._seq
            self._seq += 1
            entry.enqueued_at = time.perf_counter()
            self._entries.append(entry)
            shed: list[AdmittedQuery] = []
            while len(self._entries) > self.capacity:
                victim = min(self._entries, key=_shed_key)
                self._entries.remove(victim)
                shed.append(victim)
            self._ready.notify()
            self._set_depth_locked()
        self._count("server.queries_submitted")
        if self.metrics is not None:
            self.metrics.counter(
                f"server.tenant.{entry.tenant}.submitted"
            ).increment()
        if shed:
            self._count("server.queries_rejected", len(shed))
        if entry in shed:
            raise QueryRejectedError(
                "admission queue is full "
                f"(capacity {self.capacity}); query shed "
                f"(priority {entry.priority}, "
                f"deadline in {entry.remaining_seconds():.3f}s)"
            )
        return shed

    def take(self, inflight: dict) -> AdmittedQuery | None:
        """Pop the best entry for a dispatcher (blocking).

        *inflight* maps tenant → currently-executing query count; the
        pick minimizes it first (see :func:`_take_key`).  Returns
        ``None`` once the queue is closed and drained.
        """
        with self._ready:
            while True:
                if self._entries:
                    entry = min(
                        self._entries,
                        key=lambda e: _take_key(inflight, e),
                    )
                    self._entries.remove(entry)
                    self._set_depth_locked()
                    break
                if self._closed:
                    return None
                self._ready.wait(0.05)
        self._count("server.queries_admitted")
        if self.metrics is not None:
            self.metrics.histogram("server.queue_wait").observe(
                time.perf_counter() - entry.enqueued_at
            )
        return entry

    def close(self) -> list[AdmittedQuery]:
        """Stop admissions; returns the still-queued entries.

        The caller (the server) fails each returned entry with
        :class:`QueryRejectedError` and logs it — the queue never
        strands a waiting client.
        """
        with self._ready:
            self._closed = True
            pending = list(self._entries)
            self._entries.clear()
            self._set_depth_locked()
            self._ready.notify_all()
        if pending:
            self._count("server.queries_rejected", len(pending))
        return pending

    def snapshot(self) -> list[dict]:
        """Queued entries as plain rows (``system.admission_queue``)."""
        now = time.perf_counter()
        with self._lock:
            entries = list(self._entries)
        entries.sort(key=_shed_key, reverse=True)  # safest first
        return [
            {
                "session_id": entry.session.session_id,
                "tenant": entry.tenant,
                "priority": entry.priority,
                "sql": entry.sql,
                "queued_seconds": now - entry.enqueued_at,
                "deadline_seconds": entry.token.remaining_seconds(),
            }
            for entry in entries
        ]
