"""The serving front-end: dispatchers, snapshots, graceful shutdown.

A :class:`Server` wraps one shared :class:`~repro.db.engine.Database`
with a pool of dispatcher threads draining the admission queue:

* **Reads** (SELECT / EXPLAIN) execute against a pinned
  :class:`~repro.db.snapshot.DatabaseSnapshot`, released when the query
  finishes — concurrent writers and checkpoints cannot perturb an
  admitted reader, and there is zero cross-session result bleed.
* **Writes** (DDL/DML) execute under the engine's ``catalog_lock``
  (taken inside ``execute_statement``), so a write is atomic with
  respect to snapshot capture.  With ``checkpoint_on_write=True`` each
  write also publishes a fresh storage generation, the way a durable
  deployment would run.

Every admitted query carries its session's deadline on a PR3
:class:`~repro.db.resilience.CancellationToken`; queries that die
before reaching the engine — shed at admission, expired in the queue,
cancelled by a disconnecting client — still land a ``system.queries``
row with the matching status (``rejected`` / ``timeout`` /
``cancelled``), so the persistent query log tells shed load apart from
failures.

``Server.close`` is what ``Database.close`` calls first: it stops
admissions, sheds the queue, cancels in-flight queries cooperatively
and joins the dispatchers within a bounded drain timeout — closing a
database under load strands no client.
"""

from __future__ import annotations

import threading
import time

from repro.db.introspect import ResourceProfile
from repro.db.serve.admission import AdmissionQueue, AdmittedQuery
from repro.db.serve.session import Session
from repro.db.sql.ast import Explain, SelectStatement
from repro.db.sql.parser import parse_statement
from repro.errors import (
    QueryCancelledError,
    QueryRejectedError,
    QueryTimeoutError,
)


def _status_of(error: BaseException) -> str:
    if isinstance(error, QueryRejectedError):
        return "rejected"
    if isinstance(error, QueryCancelledError):
        return "cancelled"
    if isinstance(error, QueryTimeoutError):
        return "timeout"
    return "error"


class Server:
    """A concurrent serving layer over one shared database."""

    def __init__(
        self,
        database,
        queue_capacity: int = 32,
        dispatchers: int = 4,
        default_timeout_seconds: float | None = None,
        checkpoint_on_write: bool = False,
    ):
        if dispatchers < 1:
            raise ValueError("dispatchers must be >= 1")
        self.database = database
        self.metrics = database.metrics
        self.default_timeout_seconds = default_timeout_seconds
        self.checkpoint_on_write = checkpoint_on_write
        self.queue = AdmissionQueue(queue_capacity, metrics=self.metrics)
        self._lock = threading.Lock()
        self._sessions: dict[str, Session] = {}
        self._session_seq = 0
        self._inflight_by_tenant: dict[str, int] = {}
        self._closed = False
        database.attach_server(self)
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-serve-{index}",
                daemon=True,
            )
            for index in range(dispatchers)
        ]
        for thread in self._dispatchers:
            thread.start()

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def open_session(
        self,
        tenant: str = "default",
        priority: int = 0,
        timeout_seconds: float | None = None,
    ) -> Session:
        """Open a client session (raises once the server is closed)."""
        with self._lock:
            if self._closed:
                raise QueryRejectedError("server is closed")
            self._session_seq += 1
            session_id = f"s{self._session_seq:04d}"
            session = Session(
                self,
                session_id,
                tenant=tenant,
                priority=priority,
                default_timeout_seconds=(
                    timeout_seconds
                    if timeout_seconds is not None
                    else self.default_timeout_seconds
                ),
            )
            self._sessions[session_id] = session
        if self.metrics is not None:
            self.metrics.counter("server.sessions_opened").increment()
        return session

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _submit(self, entry: AdmittedQuery) -> None:
        if self._closed:
            error = QueryRejectedError("server is closed")
            entry.fail(error, "rejected")
            self._log_unexecuted(entry)
            raise error
        try:
            shed = self.queue.admit(entry)
        except QueryRejectedError as error:
            entry.fail(error, "rejected")
            self._log_unexecuted(entry)
            raise
        for victim in shed:
            victim.fail(
                QueryRejectedError(
                    "shed at admission to make room "
                    f"(priority {victim.priority}, queue capacity "
                    f"{self.queue.capacity})"
                ),
                "rejected",
            )
            self._log_unexecuted(victim)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            entry = self.queue.take(self._inflight_by_tenant)
            if entry is None:
                return
            self._run(entry)

    def _run(self, entry: AdmittedQuery) -> None:
        tenant = entry.tenant
        with self._lock:
            self._inflight_by_tenant[tenant] = (
                self._inflight_by_tenant.get(tenant, 0) + 1
            )
        if self.metrics is not None:
            self.metrics.gauge("server.queries_active").set(
                self._inflight_total()
            )
        try:
            self._run_admitted(entry)
        finally:
            with self._lock:
                remaining = self._inflight_by_tenant.get(tenant, 1) - 1
                if remaining:
                    self._inflight_by_tenant[tenant] = remaining
                else:
                    self._inflight_by_tenant.pop(tenant, None)
            if self.metrics is not None:
                self.metrics.gauge("server.queries_active").set(
                    self._inflight_total()
                )

    def _run_admitted(self, entry: AdmittedQuery) -> None:
        session = entry.session
        # Pre-engine guards: a query whose session closed or whose
        # deadline passed while it waited in the queue must fail here,
        # explicitly, with a log row — never reach a worker, never
        # leave the client hanging.
        try:
            if session.closed:
                raise QueryCancelledError(
                    f"session {session.session_id!r} closed while "
                    "the query was queued"
                )
            entry.token.check()
            statement = parse_statement(entry.sql)
        except Exception as error:
            entry.fail(error, _status_of(error))
            self._log_unexecuted(entry)
            return
        database = self.database
        try:
            if isinstance(statement, (SelectStatement, Explain)):
                snapshot = database.snapshot()
                try:
                    result = database.execute_statement(
                        statement,
                        parallel=entry.parallel,
                        sql_text=entry.sql.strip(),
                        catalog=snapshot.catalog,
                        cancellation=entry.token,
                        session_id=session.session_id,
                        tenant=entry.tenant,
                    )
                finally:
                    snapshot.release()
            else:
                result = database.execute_statement(
                    statement,
                    sql_text=entry.sql.strip(),
                    session_id=session.session_id,
                    tenant=entry.tenant,
                )
                if (
                    self.checkpoint_on_write
                    and database.storage is not None
                ):
                    database.checkpoint()
        except Exception as error:
            entry.fail(error, _status_of(error))
            return
        entry.finish(result)

    def _inflight_total(self) -> int:
        with self._lock:
            return sum(self._inflight_by_tenant.values())

    def _log_unexecuted(self, entry: AdmittedQuery) -> None:
        """Log a query that never reached the engine.

        The engine logs every SELECT it executes; rejected, expired and
        cancelled-in-queue entries bypass it, so the server writes
        their ``system.queries`` rows itself (same schema, status
        ``rejected`` / ``timeout`` / ``cancelled``).
        """
        database = self.database
        if not database.collect_query_log:
            return
        profile = ResourceProfile(
            query_id=database.query_log.allocate_query_id(),
            sql=entry.sql.strip(),
            started_at=time.time(),
            parallel=entry.parallel,
            session_id=entry.session.session_id,
            tenant=entry.tenant,
        )
        profile.finish(entry.status, error=entry.error)
        database.query_log.record(profile.to_entry())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def sessions_snapshot(self) -> list[dict]:
        """``system.sessions`` rows, in session-open order."""
        with self._lock:
            sessions = list(self._sessions.values())
        return [session.stats() for session in sessions]

    def queue_snapshot(self) -> list[dict]:
        """``system.admission_queue`` rows, safest-from-shedding first."""
        return self.queue.snapshot()

    def stats(self) -> dict:
        with self._lock:
            sessions = len(self._sessions)
        return {
            "sessions": sessions,
            "queue_depth": len(self.queue),
            "queries_active": self._inflight_total(),
            "closed": self._closed,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, drain_seconds: float = 5.0) -> None:
        """Graceful shutdown: shed the queue, cancel, drain (bounded).

        New admissions are rejected immediately; queued entries fail
        with :class:`QueryRejectedError`; queries already executing are
        cancelled cooperatively and the dispatchers are joined for up
        to *drain_seconds*.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
        for entry in self.queue.close():
            entry.fail(
                QueryRejectedError("server closing"), "rejected"
            )
            self._log_unexecuted(entry)
        for session in sessions:
            session.close(reason="server closing")
        deadline = time.perf_counter() + max(drain_seconds, 0.0)
        for thread in self._dispatchers:
            thread.join(max(deadline - time.perf_counter(), 0.0))

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
