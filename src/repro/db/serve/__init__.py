"""The concurrent serving front-end (see docs/SERVING.md).

Many clients — in-process threads or socket clients speaking the
line-framed JSON wire protocol — open :class:`Session` objects against
one shared :class:`~repro.db.engine.Database`.  Every query passes
through a bounded :class:`AdmissionQueue` (per-tenant priorities,
deadline-aware deterministic shedding) and executes against a pinned
:class:`~repro.db.snapshot.DatabaseSnapshot`, so concurrent readers and
writers never observe each other's half-applied state.
"""

from repro.db.serve.admission import AdmissionQueue, AdmittedQuery
from repro.db.serve.server import Server
from repro.db.serve.session import Session
from repro.db.serve.wire import WireClient, WireServer

__all__ = [
    "AdmissionQueue",
    "AdmittedQuery",
    "Server",
    "Session",
    "WireClient",
    "WireServer",
]
