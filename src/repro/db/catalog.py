"""System catalog: tables, registered models, UDFs.

Besides plain tables, the catalog implements the paper's Section 5.5
vision: a model table can be *registered* with its semantic metadata
(layer dimensions, layer types, activation functions), making the DBMS
aware that a table is a model.  The ``MODEL JOIN`` SQL syntax resolves
model names against this registry, and the planner uses the metadata to
instantiate the native operator without the caller passing shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import CatalogError

#: reserved prefix of the read-only virtual schema (see
#: :mod:`repro.db.introspect`)
SYSTEM_SCHEMA_PREFIX = "system."


def is_system_table_name(name: str) -> bool:
    """True for names inside the reserved ``system`` schema."""
    return name.lower().startswith(SYSTEM_SCHEMA_PREFIX)


@dataclass(frozen=True)
class LayerMetadata:
    """Catalog entry describing one layer of a registered model."""

    layer_type: str  # "dense" | "lstm"
    units: int
    activation: str
    time_steps: int = 1

    def __post_init__(self) -> None:
        if self.layer_type not in ("dense", "lstm"):
            raise CatalogError(f"unknown layer type {self.layer_type!r}")
        if self.units < 1:
            raise CatalogError("layer must have at least one unit")


@dataclass(frozen=True)
class ModelMetadata:
    """Semantic description of a model stored in a model table (§5.5)."""

    model_name: str
    table_name: str
    input_width: int
    layers: tuple[LayerMetadata, ...]

    @property
    def output_width(self) -> int:
        return self.layers[-1].units


@dataclass(frozen=True)
class ModelVersionRecord:
    """One trained version of a model in the lifecycle catalog.

    Produced by ``CREATE MODEL ... AS TRAIN|RETRAIN``; surfaced through
    ``system.models`` and persisted in the storage manifest.  The
    metadata's ``table_name`` points at the version's own one-row-per-
    edge table (``<name>__v<k>``), so the ModelJoin build cache keys
    per version for free (distinct table → distinct uid).
    """

    model_name: str
    version: int
    metadata: ModelMetadata
    created_at: float
    epochs: int
    batch_size: int
    learning_rate: float
    seed: int
    loss_name: str
    final_loss: float
    weight_checksum: int
    source_fingerprint: str
    arch: str


@dataclass
class Catalog:
    """Name -> object registry of the database."""

    tables: dict[str, Table] = field(default_factory=dict)
    models: dict[str, ModelMetadata] = field(default_factory=dict)
    #: model name -> version -> lifecycle record (CREATE MODEL output);
    #: ``models`` always points at the *current* version's metadata
    model_versions: dict[str, dict[int, ModelVersionRecord]] = field(
        default_factory=dict
    )
    #: model name -> currently published version number
    current_versions: dict[str, int] = field(default_factory=dict)
    #: callables invoked with a table name whenever that table's
    #: catalog entry is dropped or replaced — derived caches (the
    #: ModelJoin build cache) subscribe here to invalidate eagerly
    invalidation_listeners: list = field(default_factory=list)
    #: virtual-table provider resolving the read-only ``system.*``
    #: names (duck-typed: see repro.db.introspect.SystemSchema);
    #: attached by the engine, None for a bare catalog
    system_schema: object | None = field(default=None, repr=False)

    def attach_system_schema(self, provider) -> None:
        """Install the ``system.*`` virtual-table provider."""
        self.system_schema = provider

    def add_invalidation_listener(self, listener) -> None:
        """Subscribe *listener(table_name)* to DROP/replace events."""
        self.invalidation_listeners.append(listener)

    def _notify_invalidation(self, table_name: str) -> None:
        for listener in self.invalidation_listeners:
            listener(table_name)

    def create_table(self, table: Table, replace: bool = False) -> None:
        if is_system_table_name(table.name):
            raise CatalogError(
                f"cannot create {table.name!r}: "
                "the system schema is read-only"
            )
        key = table.name.lower()
        if key in self.tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        if key in self.tables:
            self._notify_invalidation(key)
        self.tables[key] = table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        if is_system_table_name(name):
            raise CatalogError(
                f"cannot drop {name!r}: the system schema is read-only"
            )
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self.tables[key]
        self._notify_invalidation(key)
        # Cascade: forget models whose backing table is gone.
        orphaned = [
            model_name
            for model_name, metadata in self.models.items()
            if metadata.table_name.lower() == key
        ]
        for model_name in orphaned:
            del self.models[model_name]
            self.current_versions.pop(model_name, None)
        # Version records whose weight table is gone are unusable too.
        for model_name, versions in list(self.model_versions.items()):
            stale = [
                version
                for version, record in versions.items()
                if record.metadata.table_name.lower() == key
            ]
            for version in stale:
                del versions[version]
            if not versions:
                del self.model_versions[model_name]

    def has_table(self, name: str) -> bool:
        if is_system_table_name(name):
            return (
                self.system_schema is not None
                and self.system_schema.has_table(name)
            )
        return name.lower() in self.tables

    def table(self, name: str) -> Table:
        if is_system_table_name(name):
            if self.system_schema is None:
                raise CatalogError(
                    f"table {name!r} does not exist "
                    "(no system schema attached)"
                )
            return self.system_schema.table(name)
        table = self.tables.get(name.lower())
        if table is None:
            raise CatalogError(f"table {name!r} does not exist")
        return table

    def table_schema(self, name: str) -> Schema:
        return self.table(name).schema

    def register_model(
        self, metadata: ModelMetadata, replace: bool = False
    ) -> None:
        if not self.has_table(metadata.table_name):
            raise CatalogError(
                f"model table {metadata.table_name!r} does not exist"
            )
        key = metadata.model_name.lower()
        if key in self.models and not replace:
            raise CatalogError(
                f"model {metadata.model_name!r} is already registered"
            )
        if key in self.models:
            # Re-registration changes what the model name means; any
            # build cached from the previous binding is stale.
            self._notify_invalidation(self.models[key].table_name.lower())
        self.models[key] = metadata

    def model(self, name: str, version: int | None = None) -> ModelMetadata:
        key = name.lower()
        if version is not None:
            return self.model_version(name, version).metadata
        metadata = self.models.get(key)
        if metadata is None:
            raise CatalogError(f"model {name!r} is not registered")
        return metadata

    def has_model(self, name: str) -> bool:
        return name.lower() in self.models

    # ------------------------------------------------------------------
    # model lifecycle (CREATE MODEL / ALTER MODEL)
    # ------------------------------------------------------------------
    def register_model_version(
        self, record: ModelVersionRecord, make_current: bool = False
    ) -> None:
        """Record a trained model version; optionally publish it.

        Publication (``make_current``) re-points the bare model name at
        the version's weight table and invalidates builds cached from
        the previously current binding — exactly what ``ALTER MODEL
        ... SET VERSION`` does, and what ``AS TRAIN`` does implicitly
        for a brand-new model.
        """
        if not self.has_table(record.metadata.table_name):
            raise CatalogError(
                f"model table {record.metadata.table_name!r} does not exist"
            )
        key = record.model_name.lower()
        versions = self.model_versions.setdefault(key, {})
        if record.version in versions:
            raise CatalogError(
                f"model {record.model_name!r} already has a "
                f"version {record.version}"
            )
        versions[record.version] = record
        if make_current:
            self.set_current_version(record.model_name, record.version)

    def set_current_version(self, name: str, version: int) -> None:
        """Atomically re-point *name* at *version* (caller holds the
        catalog lock); snapshots taken earlier keep the old binding."""
        record = self.model_version(name, version)
        key = name.lower()
        previous = self.models.get(key)
        if previous is not None and previous.table_name.lower() != (
            record.metadata.table_name.lower()
        ):
            # The name now means different weights: any ModelJoin build
            # cached from the old current version's table is stale for
            # bare `MODEL JOIN name` plans resolved after this point.
            self._notify_invalidation(previous.table_name.lower())
        self.models[key] = record.metadata
        self.current_versions[key] = version

    def model_version(self, name: str, version: int) -> ModelVersionRecord:
        versions = self.model_versions.get(name.lower(), {})
        record = versions.get(version)
        if record is None:
            raise CatalogError(
                f"model {name!r} has no version {version} "
                f"(known: {sorted(versions) or 'none'})"
            )
        return record

    def current_version(self, name: str) -> int | None:
        return self.current_versions.get(name.lower())

    def latest_version(self, name: str) -> int:
        versions = self.model_versions.get(name.lower())
        if not versions:
            raise CatalogError(f"model {name!r} has no trained versions")
        return max(versions)
