"""Registry of built-in scalar SQL functions.

Each function has a vectorized NumPy implementation and a result-type
rule.  Besides the usual math functions, the engine ships the activation
functions the paper's ML-To-SQL generator can emit natively
(``SIGMOID``, ``TANH``, ``RELU``) — the generator can alternatively
expand them to portable arithmetic/CASE SQL (see
:mod:`repro.core.ml_to_sql.templates`).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.db.types import SqlType, common_numeric_type
from repro.errors import BindError, TypeMismatchError


@dataclass(frozen=True)
class ScalarFunction:
    """A built-in scalar function."""

    name: str
    arity: int
    implementation: Callable[..., np.ndarray]
    result_type: Callable[[list[SqlType]], SqlType]

    def type_check(self, argument_types: list[SqlType]) -> SqlType:
        if len(argument_types) != self.arity:
            raise TypeMismatchError(
                f"{self.name} expects {self.arity} arguments, "
                f"got {len(argument_types)}"
            )
        return self.result_type(argument_types)


def _numeric_unary(argument_types: list[SqlType]) -> SqlType:
    (argument,) = argument_types
    if not argument.is_numeric:
        raise TypeMismatchError(f"expected a numeric argument, got {argument}")
    # Math on integers promotes to DOUBLE, floats keep their width.
    if argument is SqlType.INTEGER:
        return SqlType.DOUBLE
    return argument


def _numeric_binary(argument_types: list[SqlType]) -> SqlType:
    return common_numeric_type(*argument_types)


def _float_of(values: np.ndarray) -> np.ndarray:
    """Integers become float64; float32/float64 pass through unchanged."""
    if values.dtype.kind in "iu" or values.dtype == np.bool_:
        return values.astype(np.float64)
    return values


def _sigmoid(values: np.ndarray) -> np.ndarray:
    values = _float_of(values)
    # Clip to keep exp() finite in float32 without changing the result.
    clipped = np.clip(values, -80.0, 80.0)
    return 1.0 / (1.0 + np.exp(-clipped))


def _relu(values: np.ndarray) -> np.ndarray:
    values = _float_of(values)
    return np.maximum(values, np.zeros(1, dtype=values.dtype))


def _power(base: np.ndarray, exponent: np.ndarray) -> np.ndarray:
    return np.power(_float_of(base), _float_of(exponent))


_REGISTRY: dict[str, ScalarFunction] = {}


def register_function(function: ScalarFunction) -> None:
    _REGISTRY[function.name.upper()] = function


def lookup_function(name: str) -> ScalarFunction:
    function = _REGISTRY.get(name.upper())
    if function is None:
        raise BindError(f"unknown function {name!r}")
    return function


def has_function(name: str) -> bool:
    return name.upper() in _REGISTRY


def _register_builtins() -> None:
    unary = [
        ("EXP", lambda x: np.exp(_float_of(x))),
        ("LN", lambda x: np.log(_float_of(x))),
        ("SQRT", lambda x: np.sqrt(_float_of(x))),
        ("SIN", lambda x: np.sin(_float_of(x))),
        ("COS", lambda x: np.cos(_float_of(x))),
        ("TANH", lambda x: np.tanh(_float_of(x))),
        ("SIGMOID", _sigmoid),
        ("RELU", _relu),
        ("ABS", lambda x: np.abs(x)),
        ("FLOOR", lambda x: np.floor(_float_of(x))),
        ("CEIL", lambda x: np.ceil(_float_of(x))),
    ]
    for name, implementation in unary:
        register_function(
            ScalarFunction(name, 1, implementation, _numeric_unary)
        )
    register_function(
        ScalarFunction("POWER", 2, _power, _numeric_binary)
    )
    register_function(
        ScalarFunction(
            "GREATEST", 2, lambda a, b: np.maximum(a, b), _numeric_binary
        )
    )
    register_function(
        ScalarFunction(
            "LEAST", 2, lambda a, b: np.minimum(a, b), _numeric_binary
        )
    )
    register_function(
        ScalarFunction("MOD", 2, lambda a, b: np.mod(a, b), _numeric_binary)
    )


_register_builtins()
