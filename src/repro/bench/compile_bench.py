"""Compile benchmark: fused kernels vs interpreted execution.

Three gates over the pipeline-fusing query compiler
(``repro.db.compile``, see docs/COMPILE.md):

* **expression-heavy** — a polynomial feature-expansion query (degree-10
  Horner chains over three columns, the classic in-database ML
  preprocessing shape) must run at least 2x faster compiled than
  interpreted (``use_compiled_kernels=False``), bit-exact.
* **ModelJoin epilogue** — a MODEL JOIN whose prediction consumer is a
  fused filter→project kernel reading arena views of the BLAS output
  (EXPLAIN shows ``[epilogue: fused]``) must beat the interpreted
  epilogue, bit-exact.
* **compile overhead** — cold-compiling a batch of distinct queries
  must cost less than 1 ms of ``compile.time`` per query, and warm
  repeats must be pure ``compile.cache_hit`` traffic (no recompiles).

``python -m repro.bench compile`` prints the report and writes the
JSON evidence (default ``BENCH_pr6.json``); ``--check`` turns the
verdict into the exit code — the CI smoke gate.
"""

from __future__ import annotations

import gc
import json
import time

import numpy as np

from repro.bench.harness import BenchConfig
from repro.core.attach import connect
from repro.core.registry import publish_model
from repro.db.planner import PlannerOptions
from repro.workloads.models import make_dense_model

#: compiled must beat interpreted by this factor on expression-heavy SQL
EXPRESSION_FACTOR = 2.0
#: fused ModelJoin epilogue must beat the interpreted epilogue
EPILOGUE_FACTOR = 1.0
#: cold compile budget per distinct query
OVERHEAD_SECONDS = 0.001
#: timed repeats; the fastest run counts (the expression cell sits
#: ~10% above its 2x gate, so enough samples to catch a quiet slice
#: of a noisy shared runner matter more than any single number)
REPEATS = 9

#: degree-10 Horner coefficients, one chain per input column
_COEFFICIENTS = (
    (0.31, -1.7, 2.2, 0.9, -0.4, 1.1, -0.8, 0.6, 1.4, -1.2, 0.35),
    (1.05, 0.3, -2.1, 1.4, 0.8, -0.6, 1.9, -1.3, 0.45, 0.7, -0.25),
    (-0.8, 2.4, 1.1, -1.9, 0.5, 2.2, -0.65, 1.05, -1.45, 0.85, 0.15),
)


def _horner(column: str, coefficients) -> str:
    text = repr(coefficients[0])
    for coefficient in coefficients[1:]:
        text = f"({text} * {column} + {coefficient!r})"
    return text


def expression_sql() -> str:
    """The expression-heavy cell: polynomial feature expansion."""
    chains = ", ".join(
        f"{_horner(column, coefficients)} AS p_{column}"
        for column, coefficients in zip(("a", "b", "c"), _COEFFICIENTS)
    )
    return f"SELECT {chains} FROM t WHERE a > 0.02"


MODELJOIN_SQL = (
    "SELECT id, prediction_0 * 2.0 - 1.0 AS score FROM f "
    "MODEL JOIN clf USING (c0, c1, c2, c3) WHERE prediction_0 > 0.5"
)


def _expression_rows(config: BenchConfig) -> int:
    # The smoke cell stays at the default 200k tuples: the gate is a
    # *ratio*, and below ~150k the shared per-query costs (parse, plan,
    # result assembly) dilute it below the 2x target.  The whole
    # experiment still runs in a few seconds.
    return 500_000 if config.preset == "paper" else 200_000


def _modeljoin_rows(config: BenchConfig) -> int:
    return 20_000 if config.preset == "smoke" else 50_000


def _connect(compiled: bool):
    return connect(
        planner_options=PlannerOptions(use_compiled_kernels=compiled)
    )


class _quiet_gc:
    """Collect up front and pause the cyclic GC while timing."""

    def __enter__(self):
        gc.collect()
        self._was_enabled = gc.isenabled()
        gc.disable()

    def __exit__(self, *exc):
        if self._was_enabled:
            gc.enable()
        return False


def _timed(database, sql: str, repeats: int = REPEATS):
    """(best seconds of *repeats*, last result)."""
    best = float("inf")
    result = None
    with _quiet_gc():
        for _ in range(repeats):
            started = time.perf_counter()
            result = database.execute(sql)
            best = min(best, time.perf_counter() - started)
    return best, result


def _bit_exact(compiled, interpreted) -> bool:
    if compiled.schema.names != interpreted.schema.names:
        return False
    if compiled.row_count != interpreted.row_count:
        return False
    return all(
        np.asarray(compiled.column(name)).tobytes()
        == np.asarray(interpreted.column(name)).tobytes()
        for name in compiled.schema.names
    )


def _fill_expression_table(database, rows: int) -> None:
    database.execute(
        "CREATE TABLE t (id BIGINT, a DOUBLE, b DOUBLE, c DOUBLE)"
    )
    rng = np.random.default_rng(42)
    database.table("t").append_columns(
        id=np.arange(rows, dtype=np.int64),
        a=rng.random(rows),
        b=rng.random(rows),
        c=rng.random(rows),
    )


# ----------------------------------------------------------------------
# gate 1: expression-heavy query, compiled vs interpreted
# ----------------------------------------------------------------------
def measure_expression(config: BenchConfig) -> dict:
    rows = _expression_rows(config)
    sql = expression_sql()
    databases = {}
    for compiled in (True, False):
        database = _connect(compiled)
        _fill_expression_table(database, rows)
        databases[compiled] = database

    compiled_seconds, compiled_result = _timed(databases[True], sql)
    interpreted_seconds, interpreted_result = _timed(databases[False], sql)
    plan = databases[True].explain(sql)
    fused = "FusedPipeline" in plan and "== Compiled Code ==" in plan
    for database in databases.values():
        database.close()

    report = {
        "rows": rows,
        "sql": sql,
        "compiled_seconds": compiled_seconds,
        "interpreted_seconds": interpreted_seconds,
        "speedup": (
            interpreted_seconds / compiled_seconds
            if compiled_seconds > 0
            else float("inf")
        ),
        "factor": EXPRESSION_FACTOR,
        "fused_plan": fused,
        "bit_exact": _bit_exact(compiled_result, interpreted_result),
    }
    report["ok"] = (
        report["bit_exact"]
        and report["fused_plan"]
        and report["speedup"] >= EXPRESSION_FACTOR
    )
    return report


# ----------------------------------------------------------------------
# gate 2: ModelJoin epilogue fusion, compiled vs interpreted
# ----------------------------------------------------------------------
def measure_modeljoin_epilogue(config: BenchConfig) -> dict:
    rows = _modeljoin_rows(config)
    databases = {}
    for compiled in (True, False):
        database = _connect(compiled)
        database.execute(
            "CREATE TABLE f (id BIGINT, c0 FLOAT, c1 FLOAT, "
            "c2 FLOAT, c3 FLOAT)"
        )
        rng = np.random.default_rng(11)
        features = rng.normal(size=(rows, 4)).astype(np.float32)
        database.table("f").append_columns(
            id=np.arange(rows, dtype=np.int64),
            c0=features[:, 0],
            c1=features[:, 1],
            c2=features[:, 2],
            c3=features[:, 3],
        )
        model = make_dense_model(16, 2, input_width=4, seed=5)
        publish_model(database, "clf", model)
        databases[compiled] = database

    compiled_seconds, compiled_result = _timed(
        databases[True], MODELJOIN_SQL
    )
    interpreted_seconds, interpreted_result = _timed(
        databases[False], MODELJOIN_SQL
    )
    fused = "[epilogue: fused]" in databases[True].explain(MODELJOIN_SQL)
    for database in databases.values():
        database.close()

    report = {
        "rows": rows,
        "sql": MODELJOIN_SQL,
        "model": "dense width=16 depth=2",
        "compiled_seconds": compiled_seconds,
        "interpreted_seconds": interpreted_seconds,
        "speedup": (
            interpreted_seconds / compiled_seconds
            if compiled_seconds > 0
            else float("inf")
        ),
        "factor": EPILOGUE_FACTOR,
        "epilogue_fused": fused,
        "bit_exact": _bit_exact(compiled_result, interpreted_result),
    }
    report["ok"] = (
        report["bit_exact"]
        and report["epilogue_fused"]
        and report["speedup"] > EPILOGUE_FACTOR
    )
    return report


# ----------------------------------------------------------------------
# gate 3: compile overhead per query + warm cache hits
# ----------------------------------------------------------------------
def measure_compile_overhead(config: BenchConfig) -> dict:
    database = _connect(True)
    _fill_expression_table(database, 10_000)
    queries = [
        "SELECT id, a + b AS s FROM t WHERE a > 0.1",
        "SELECT id, a * b - c AS s FROM t WHERE b < 0.9",
        "SELECT id, (a - 0.5) / 0.29 AS s FROM t WHERE c > 0.2 AND a < 0.8",
        "SELECT id, a * a + b * b + c * c AS s FROM t",
        "SELECT id, ABS(a - b) AS s FROM t WHERE a + b > 0.3",
        "SELECT id, CASE WHEN a > 0.5 THEN b ELSE c END AS s FROM t",
        expression_sql(),
        "SELECT id, a * 2.0 - 1.0 AS score FROM t WHERE c > 0.5",
    ]

    timings = database.metrics.histogram("compile.time")
    requests = database.metrics.counter("compile.requests")
    hits = database.metrics.counter("compile.cache_hit")
    for sql in queries:
        database.execute(sql)
    cold_seconds = timings.total
    cold_compiles = timings.count
    cold_requests = requests.value

    for sql in queries:
        database.execute(sql)
    warm_seconds = timings.total - cold_seconds
    warm_requests = requests.value - cold_requests
    warm_hits = hits.value
    fallbacks = database.metrics.counter("compile.fallback").value
    cache = database.kernel_cache.snapshot()
    database.close()

    report = {
        "queries": len(queries),
        "cold_compiles": cold_compiles,
        "cold_compile_seconds": cold_seconds,
        "seconds_per_query": cold_seconds / len(queries),
        "budget_seconds": OVERHEAD_SECONDS,
        "warm_requests": warm_requests,
        "warm_hits": warm_hits,
        "warm_compile_seconds": warm_seconds,
        "fallbacks": fallbacks,
        "cache": cache,
    }
    report["ok"] = (
        report["seconds_per_query"] < OVERHEAD_SECONDS
        and report["warm_requests"] > 0
        and report["warm_hits"] >= report["warm_requests"]
        and report["warm_compile_seconds"] == 0.0
        and report["fallbacks"] == 0
    )
    return report


def run_compile_bench(config: BenchConfig) -> dict:
    expression = measure_expression(config)
    modeljoin = measure_modeljoin_epilogue(config)
    overhead = measure_compile_overhead(config)
    return {
        "experiment": "compile",
        "preset": config.preset,
        "expression": expression,
        "modeljoin_epilogue": modeljoin,
        "overhead": overhead,
        "ok": expression["ok"] and modeljoin["ok"] and overhead["ok"],
    }


def format_compile_report(report: dict) -> str:
    title = (
        "Compile — fused kernels vs interpreted execution "
        f"(preset {report['preset']})"
    )
    lines = [title, "=" * len(title), ""]

    expr = report["expression"]
    lines.append(
        f"Expression-heavy query ({expr['rows']} tuples, target >= "
        f"{expr['factor']:.0f}x, {'PASS' if expr['ok'] else 'FAIL'})"
    )
    lines.append(
        f"  compiled {expr['compiled_seconds'] * 1e3:.1f} ms vs "
        f"interpreted {expr['interpreted_seconds'] * 1e3:.1f} ms — "
        f"{expr['speedup']:.2f}x, bit_exact={expr['bit_exact']}, "
        f"fused_plan={expr['fused_plan']}"
    )

    epilogue = report["modeljoin_epilogue"]
    lines.append("")
    lines.append(
        f"ModelJoin epilogue fusion ({epilogue['rows']} tuples, "
        f"{epilogue['model']}, target > {epilogue['factor']:.0f}x, "
        f"{'PASS' if epilogue['ok'] else 'FAIL'})"
    )
    lines.append(
        f"  compiled {epilogue['compiled_seconds'] * 1e3:.1f} ms vs "
        f"interpreted {epilogue['interpreted_seconds'] * 1e3:.1f} ms — "
        f"{epilogue['speedup']:.2f}x, bit_exact={epilogue['bit_exact']}, "
        f"epilogue_fused={epilogue['epilogue_fused']}"
    )

    overhead = report["overhead"]
    lines.append("")
    lines.append(
        "Compile overhead (budget < "
        f"{overhead['budget_seconds'] * 1e3:.0f} ms/query, "
        f"{'PASS' if overhead['ok'] else 'FAIL'})"
    )
    lines.append(
        f"  {overhead['cold_compiles']} kernels for "
        f"{overhead['queries']} cold queries in "
        f"{overhead['cold_compile_seconds'] * 1e3:.2f} ms "
        f"({overhead['seconds_per_query'] * 1e3:.3f} ms/query); warm "
        f"repeat: {overhead['warm_hits']}/{overhead['warm_requests']} "
        f"cache hits, {overhead['warm_compile_seconds'] * 1e3:.2f} ms "
        f"recompiling, fallbacks={overhead['fallbacks']}"
    )

    lines.append(f"\nOverall: {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
