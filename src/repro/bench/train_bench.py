"""In-database training benchmark and gates (``python -m repro.bench train``).

Measures the ``CREATE MODEL`` training subsystem (docs/TRAINING.md) on
a synthetic linearly separable dataset and turns the training
contract into exit-code gates:

- *convergence*: ``CREATE MODEL ... AS TRAIN`` on the separable
  dataset must reach a final loss below the preset's bound and >=95%
  training accuracy; time per epoch is recorded.
- *reproducibility*: two runs with the same seed, data and
  hyperparameters must produce bit-identical weights (equal CRC32
  weight checksums in ``system.models``).
- *parity*: scoring the trained model through ``MODEL JOIN`` must
  reproduce the NumPy ``Sequential.predict`` reference bit-exactly
  (max abs diff exactly 0).
- *retrain-and-swap*: reader sessions score through
  :class:`repro.db.serve.Server` while a writer session retrains and
  publishes a new version with ``ALTER MODEL``.  Zero queries may
  fail, every result must match exactly one published version (no
  torn reads), the during-swap p99 latency must stay under 2x the
  steady-state baseline (plus a small absolute slack for scheduler
  noise on short smoke windows), and ``system.models`` must reflect
  the swap.

``--check`` turns the verdict into the exit code.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np

from repro.bench.harness import BenchConfig

ACCURACY_THRESHOLD = 0.95
SWAP_P99_FACTOR = 2.0
# Absolute slack on the swap p99 gate: smoke windows hold only a few
# dozen queries, so the p99 on a ms-scale workload sits in scheduler
# noise (same reasoning as the chaos bench's "10x p95 + 1s" bound).
SWAP_P99_SLACK_SECONDS = 0.010


def _train_params(config: BenchConfig) -> tuple[int, int]:
    """(rows, epochs) for the preset."""
    if config.preset == "smoke":
        return 1_000, 10
    if config.preset == "paper":
        return 32_000, 40
    return 8_000, 25


def _loss_bound(config: BenchConfig) -> float:
    # fewer smoke epochs -> looser (still-converging) bound
    return 0.30 if config.preset == "smoke" else 0.15


def _make_database(rows: int, seed: int = 7, **kwargs):
    from repro import connect

    database = connect(**kwargs)
    database.execute(
        "CREATE TABLE pts (x1 DOUBLE, x2 DOUBLE, label DOUBLE)"
    )
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, 2)).astype(np.float32)
    y = (x[:, 0] + x[:, 1] > 0).astype(np.float32)
    database.catalog.table("pts").append_rows(
        [(float(a), float(b), float(l)) for (a, b), l in zip(x, y)]
    )
    return database, x, y


def _train_sql(
    name: str, epochs: int, seed: int, retrain: bool = False
) -> str:
    mode = "RETRAIN" if retrain else "TRAIN"
    return (
        f"CREATE MODEL {name} AS {mode} DENSE(8 relu, 1 sigmoid) "
        "ON (SELECT x1, x2, label FROM pts) "
        f"WITH (epochs={epochs}, batch_size=32, lr=0.05, seed={seed}, "
        "loss='bce')"
    )


def _scores(database, join: str = "clf") -> np.ndarray:
    result = database.execute(
        f"SELECT prediction_0 FROM pts MODEL JOIN {join} USING (x1, x2)"
    )
    return np.concatenate([batch.arrays[0] for batch in result.batches])


def _run_convergence(config: BenchConfig, seed: int) -> dict:
    rows, epochs = _train_params(config)
    database, _, labels = _make_database(rows)
    started = time.perf_counter()
    result = database.execute(_train_sql("clf", epochs, seed))
    train_seconds = time.perf_counter() - started
    (summary,) = result.rows
    final_loss = float(summary[5])
    predicted = (_scores(database) > 0.5).astype(np.float32)
    accuracy = float((predicted == labels).mean())
    database.close()
    bound = _loss_bound(config)
    return {
        "rows": rows,
        "epochs": epochs,
        "train_seconds": train_seconds,
        "seconds_per_epoch": train_seconds / epochs,
        "final_loss": final_loss,
        "loss_bound": bound,
        "accuracy": accuracy,
        "accuracy_threshold": ACCURACY_THRESHOLD,
        "ok": final_loss < bound and accuracy >= ACCURACY_THRESHOLD,
    }


def _run_reproducibility(config: BenchConfig, seed: int) -> dict:
    rows, epochs = _train_params(config)
    checksums = []
    for _ in range(2):
        database, _, _ = _make_database(rows)
        database.execute(_train_sql("clf", epochs, seed))
        checksums.append(
            database.catalog.model_version("clf", 1).weight_checksum
        )
        database.close()
    return {
        "checksums": [f"{value:08x}" for value in checksums],
        "ok": checksums[0] == checksums[1],
    }


def _run_parity(config: BenchConfig, seed: int) -> dict:
    from repro.db.sql.parser import parse_statement
    from repro.db.train.executor import _build_model
    from repro.db.train.operator import TrainOperator
    from repro.db.train.spec import TrainingSpec

    rows, epochs = _train_params(config)
    database, features, labels = _make_database(rows)
    database.execute(_train_sql("clf", epochs, seed))
    joined = _scores(database)
    statement = parse_statement(_train_sql("clf", epochs, seed))
    model = _build_model(statement, 2, seed)
    spec = TrainingSpec(
        epochs=epochs, batch_size=32, learning_rate=0.05, seed=seed,
        loss="bce",
    )
    TrainOperator(model, spec).run(features, labels.reshape(-1, 1))
    reference = model.predict(features).reshape(-1).astype(np.float64)
    max_diff = float(np.max(np.abs(joined - reference)))
    database.close()
    return {"max_abs_diff": max_diff, "ok": max_diff == 0.0}


def _run_swap(config: BenchConfig, seed: int) -> dict:
    from repro.db.serve import Server

    rows, epochs = _train_params(config)
    readers = 3
    steady_queries = 8  # per reader, before the retrain starts
    database, _, _ = _make_database(rows)
    database.execute(_train_sql("clf", epochs, seed))
    v1 = _scores(database)
    join_sql = (
        "SELECT prediction_0 FROM pts MODEL JOIN clf USING (x1, x2)"
    )
    steady: list[float] = []
    during: list[float] = []
    failures: list[str] = []
    torn = 0
    lock = threading.Lock()
    retraining = threading.Event()
    stop = threading.Event()
    v2_holder: dict[str, np.ndarray] = {}

    with Server(
        database, queue_capacity=64, dispatchers=readers + 1
    ) as server:

        def reader(index: int) -> None:
            nonlocal torn
            with server.open_session(tenant=f"r{index}") as session:
                while True:
                    in_swap_window = retraining.is_set()
                    if stop.is_set():
                        return
                    if not in_swap_window and len(steady) >= (
                        readers * steady_queries
                    ):
                        # baseline collected; idle until the swap starts
                        retraining.wait(timeout=0.01)
                        continue
                    started = time.perf_counter()
                    try:
                        result = session.execute(join_sql)
                    except Exception as error:
                        with lock:
                            failures.append(repr(error))
                        return
                    elapsed = time.perf_counter() - started
                    got = np.concatenate(
                        [b.arrays[0] for b in result.batches]
                    )
                    v2 = v2_holder.get("v2")
                    matches = np.array_equal(got, v1) or (
                        v2 is not None and np.array_equal(got, v2)
                    )
                    with lock:
                        (during if in_swap_window else steady).append(
                            elapsed
                        )
                        if not matches:
                            torn += 1

        threads = [
            threading.Thread(target=reader, args=(index,))
            for index in range(readers)
        ]
        for thread in threads:
            thread.start()
        while len(steady) < readers * steady_queries:
            time.sleep(0.01)
        with server.open_session(tenant="trainer") as trainer:
            retraining.set()
            trainer.execute(
                _train_sql("clf", epochs, seed + 1, retrain=True)
            )
            v2_holder["v2"] = _scores(database, "clf VERSION 2")
            trainer.execute("ALTER MODEL clf SET VERSION 2")
        time.sleep(0.1)  # post-swap tail: new admissions score v2
        stop.set()
        for thread in threads:
            thread.join()
        current_rows = database.execute(
            "SELECT name, version FROM system.models WHERE current"
        ).rows
    database.close()

    steady_p99 = float(np.percentile(steady, 99)) if steady else 0.0
    during_p99 = float(np.percentile(during, 99)) if during else 0.0
    p99_ok = during_p99 < SWAP_P99_FACTOR * steady_p99 + SWAP_P99_SLACK_SECONDS
    catalog_ok = current_rows == [("clf", 2)]
    return {
        "readers": readers,
        "steady_queries": len(steady),
        "during_swap_queries": len(during),
        "steady_p99_seconds": steady_p99,
        "during_swap_p99_seconds": during_p99,
        "p99_factor_bound": SWAP_P99_FACTOR,
        "p99_slack_seconds": SWAP_P99_SLACK_SECONDS,
        "failed_queries": len(failures),
        "failures": failures[:5],
        "torn_reads": torn,
        "catalog_reflects_swap": catalog_ok,
        "ok": (
            not failures
            and torn == 0
            and p99_ok
            and catalog_ok
            and len(during) > 0
        ),
    }


def run_train_bench(config: BenchConfig, seed: int = 1) -> dict:
    convergence = _run_convergence(config, seed)
    reproducibility = _run_reproducibility(config, seed)
    parity = _run_parity(config, seed)
    swap = _run_swap(config, seed)
    return {
        "bench": "train",
        "preset": config.preset,
        "seed": seed,
        "convergence": convergence,
        "reproducibility": reproducibility,
        "parity": parity,
        "swap": swap,
        "gates": {
            "convergence": convergence["ok"],
            "reproducibility": reproducibility["ok"],
            "parity": parity["ok"],
            "swap": swap["ok"],
        },
        "ok": (
            convergence["ok"]
            and reproducibility["ok"]
            and parity["ok"]
            and swap["ok"]
        ),
    }


def format_train_report(report: dict) -> str:
    convergence = report["convergence"]
    reproducibility = report["reproducibility"]
    parity = report["parity"]
    swap = report["swap"]
    lines = [
        f"In-database training — preset {report['preset']}, "
        f"{convergence['rows']:,} rows, {convergence['epochs']} epochs",
        "",
        f"  convergence: loss {convergence['final_loss']:.4f} "
        f"< {convergence['loss_bound']} and accuracy "
        f"{convergence['accuracy']:.3f} >= "
        f"{convergence['accuracy_threshold']} -> "
        f"{'ok' if convergence['ok'] else 'FAILED'} "
        f"({convergence['seconds_per_epoch'] * 1000:.1f} ms/epoch)",
        f"  reproducibility: checksums "
        f"{' vs '.join(reproducibility['checksums'])} -> "
        f"{'ok' if reproducibility['ok'] else 'FAILED'}",
        f"  parity: MODEL JOIN vs NumPy max abs diff "
        f"{parity['max_abs_diff']:.3g} -> "
        f"{'ok' if parity['ok'] else 'FAILED'}",
        f"  retrain-and-swap: {swap['failed_queries']} failed / "
        f"{swap['torn_reads']} torn of "
        f"{swap['steady_queries'] + swap['during_swap_queries']} "
        f"queries, p99 {swap['during_swap_p99_seconds'] * 1000:.1f} ms "
        f"(steady {swap['steady_p99_seconds'] * 1000:.1f} ms, bound "
        f"{swap['p99_factor_bound']}x + "
        f"{SWAP_P99_SLACK_SECONDS * 1000:.0f} ms), catalog swap "
        f"{'visible' if swap['catalog_reflects_swap'] else 'MISSING'} "
        f"-> {'ok' if swap['ok'] else 'FAILED'}",
        "",
        "verdict: " + ("PASS" if report["ok"] else "FAIL"),
    ]
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
