"""Benchmark harness reproducing the paper's evaluation (Section 6).

- :mod:`repro.bench.variants` — a uniform interface over the eight
  evaluated approaches (the legend of Figures 8/9),
- :mod:`repro.bench.harness` — sweep runners for Figures 8/9 and the
  memory measurement of Table 3,
- :mod:`repro.bench.reporting` — paper-style series/table printers,
  including the qualitative Table 2.

CLI: ``python -m repro.bench fig8|fig9|table2|table3 [--preset smoke|default|paper]``.
"""

from repro.bench.variants import (
    ALL_VARIANT_NAMES,
    RunMeasurement,
    make_variant,
)
from repro.bench.harness import (
    BenchConfig,
    SweepPoint,
    measure_memory_table,
    run_dense_sweep,
    run_lstm_sweep,
)

__all__ = [
    "ALL_VARIANT_NAMES",
    "RunMeasurement",
    "make_variant",
    "BenchConfig",
    "SweepPoint",
    "run_dense_sweep",
    "run_lstm_sweep",
    "measure_memory_table",
]
